#!/usr/bin/env python3
"""Docstring lint: a dependency-free pydocstyle select-list.

Enforces the documentation floor of the library (checked in CI and by
``tests/test_docstrings.py``):

* **D100/D104** — every module and package ``__init__`` under the linted
  roots carries a module-level docstring;
* **D101** — every public class (name not starting with ``_``) carries a
  class docstring.

This is intentionally the same shape as running ``pydocstyle
--select=D100,D101,D104``, but implemented on :mod:`ast` so CI needs no
extra dependency and the tier-1 suite can run the identical check.

Usage::

    python tools/lint_docstrings.py [root ...]    # default: src/repro
"""

from __future__ import annotations

import ast
import pathlib
import sys
from typing import Iterable, List

#: Default lint roots relative to the repository root.
DEFAULT_ROOTS = ("src/repro",)


def iter_python_files(root: pathlib.Path) -> Iterable[pathlib.Path]:
    """Every ``*.py`` file under ``root`` (a file path is yielded as-is)."""
    if root.is_file():
        yield root
        return
    yield from sorted(root.rglob("*.py"))


def check_file(path: pathlib.Path) -> List[str]:
    """Violation lines for one file (empty when the file is clean)."""
    violations: List[str] = []
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    if not ast.get_docstring(tree):
        code = "D104" if path.name == "__init__.py" else "D100"
        violations.append(f"{path}:1: {code} missing module docstring")
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
            if not ast.get_docstring(node):
                violations.append(
                    f"{path}:{node.lineno}: D101 missing docstring "
                    f"in public class {node.name!r}")
    return violations


def lint(roots: Iterable[str]) -> List[str]:
    """All violations under ``roots``, sorted by file."""
    violations: List[str] = []
    for root in roots:
        root_path = pathlib.Path(root)
        if not root_path.exists():
            violations.append(f"{root}: lint root does not exist")
            continue
        for path in iter_python_files(root_path):
            violations.extend(check_file(path))
    return violations


def main(argv: List[str]) -> int:
    """CLI entry point: print violations, exit 1 when any exist."""
    roots = argv or list(DEFAULT_ROOTS)
    violations = lint(roots)
    for violation in violations:
        print(violation)
    if violations:
        print(f"{len(violations)} docstring violation(s)", file=sys.stderr)
        return 1
    print(f"docstring lint clean ({', '.join(roots)})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
