"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one of the paper's figures/tables (or an
analysis the paper states in prose) and prints the rows it measured.  Run
with ``pytest benchmarks/ --benchmark-only -s`` to see both the tables and
the timing statistics.
"""

from __future__ import annotations

import pytest


def emit(text: str) -> None:
    """Print a result table (kept visible in captured output sections)."""
    print("\n" + text + "\n")


@pytest.fixture(scope="session")
def catalog_setup():
    """A moderately sized catalog document outsourced once per session."""
    from repro.core import outsource_document
    from repro.workloads import CatalogConfig, generate_catalog_document

    document = generate_catalog_document(CatalogConfig(customers=12, products=8))
    client, server_tree, tree = outsource_document(document, seed=b"bench-catalog")
    return document, client, server_tree, tree
