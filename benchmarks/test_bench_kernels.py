"""Experiment K1: the fast-kernel algebra layer vs the generic reference path.

This benchmark starts the repo's perf trajectory: it measures the kernel
speedups on polynomial multiplication, quotient reduction and the
end-to-end outsource+lookup path, prints the comparison table, and writes
the ``BENCH_1.json`` snapshot at the repository root so future perf PRs
have a baseline to diff against.

Assertion thresholds are deliberately below the typical measured values
(~10x mul at degree 64, ~3.5x end-to-end at n>=200) so the suite stays
robust on loaded machines while still catching a disabled or regressed
fast path.
"""

import os

from repro.analysis import format_table
from repro.bench import format_summary, run_benchmarks, write_snapshot

from conftest import emit

_SNAPSHOT_PATH = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                              "BENCH_1.json")


def test_kernel_speedups_and_snapshot(benchmark):
    results = benchmark.pedantic(run_benchmarks, args=(), kwargs={"repeat": 3},
                                 rounds=1, iterations=1)
    write_snapshot(results, _SNAPSHOT_PATH)

    rows = []
    for degree, row in sorted(results["poly_mul_fp"]["degrees"].items(),
                              key=lambda item: int(item[0])):
        rows.append(["poly mul F_p", f"deg {degree}",
                     f"{row['kernel_ops_per_sec']:.0f}",
                     f"{row['generic_ops_per_sec']:.0f}",
                     f"x{row['speedup']}"])
    for name, row in sorted(results["quotient_reduce"].items()):
        rows.append([f"reduce {name}", row["ring"],
                     f"{row['kernel_ops_per_sec']:.0f}",
                     f"{row['generic_ops_per_sec']:.0f}",
                     f"x{row['speedup']}"])
    for n, row in sorted(results["end_to_end"]["sizes"].items(),
                         key=lambda item: int(item[0])):
        rows.append(["outsource+lookup", f"n={n}",
                     f"{1000.0 / row['kernel_ms']:.1f}",
                     f"{1000.0 / row['generic_ms']:.1f}",
                     f"x{row['speedup']}"])
    emit(format_table(
        ["operation", "size", "kernel ops/s", "generic ops/s", "speedup"],
        rows, title="K1 — fast kernels vs generic reference path"))
    emit(format_summary(results))

    # Acceptance: >=5x poly mul at degree >= 64 over F_p.
    for degree, row in results["poly_mul_fp"]["degrees"].items():
        if int(degree) >= 64:
            assert row["speedup"] >= 5.0, (degree, row)
    # Both quotient reductions must beat the generic path.
    for name, row in results["quotient_reduce"].items():
        assert row["speedup"] >= 1.2, (name, row)
    # Acceptance: >=3x end-to-end outsource+lookup; assert a noise-tolerant
    # 2.5 on the largest document (the snapshot records the actual value).
    sizes = results["end_to_end"]["sizes"]
    largest = str(max(int(n) for n in sizes))
    assert sizes[largest]["speedup"] >= 2.5, sizes
    assert results["end_to_end"]["speedup"] >= 2.0, results["end_to_end"]
    assert os.path.exists(_SNAPSHOT_PATH)
