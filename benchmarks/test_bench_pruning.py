"""Experiment E9: dead-branch pruning — "only a small portion of the tree
has to be examined" (§5).

Measures, per query tag, how many nodes each system touches:

* the scheme (polynomial tree with pruning),
* the SWP-style linear scan (always touches every node),
* the Bloom-filter tree index (pruning with false positives),
* the plaintext full traversal (the denominator).

The shape to reproduce: for selective tags the scheme touches a small
fraction of the tree; the linear scan always touches 100 %.
"""

from repro.analysis import format_table
from repro.baselines import PlaintextSearchIndex, build_bloom_index, build_linear_scan
from repro.core import outsource_document
from repro.workloads import CatalogConfig, generate_catalog_document

from conftest import emit

#: Tags ordered from very selective (few matches, localised) to unselective.
_QUERY_TAGS = ["location", "city", "balance", "order", "product"]


def _run_pruning_comparison():
    document = generate_catalog_document(CatalogConfig(customers=15, products=10))
    n = document.size()
    plaintext = PlaintextSearchIndex(document)
    scheme_client, server_tree, _ = outsource_document(document, seed=b"pruning")
    linear_client, linear_index = build_linear_scan(document)
    bloom_client, bloom_index = build_bloom_index(document)

    rows = []
    fractions = {}
    for tag in _QUERY_TAGS:
        truth = plaintext.lookup(tag)
        scheme = scheme_client.lookup(server_tree, tag)
        linear = linear_client.lookup(linear_index, tag)
        bloom = bloom_client.lookup(bloom_index, tag)
        assert scheme.matches == linear.matches == bloom.matches == truth.matches
        fractions[tag] = scheme.stats.nodes_evaluated / n
        rows.append([
            tag, len(truth.matches), n,
            scheme.stats.nodes_evaluated,
            f"{scheme.stats.nodes_evaluated / n:.0%}",
            bloom.stats.nodes_visited,
            linear.stats.nodes_visited,
        ])
    return document, rows, fractions


def test_pruning_fractions(benchmark):
    document, rows, fractions = benchmark(_run_pruning_comparison)
    emit(format_table(
        ["query tag", "matches", "tree size",
         "scheme nodes evaluated", "scheme fraction",
         "bloom nodes visited", "linear-scan nodes visited"],
        rows,
        title="E9 — nodes touched per //tag lookup (pruning effectiveness)"))

    n = document.size()
    # Selective queries touch a small portion of the tree (well under half).
    assert fractions["location"] < 0.5
    assert fractions["city"] < 0.8
    # The linear scan has no pruning: it always touches every node (by
    # construction); the scheme never touches more than the whole tree.
    assert all(fraction <= 1.0 for fraction in fractions.values())
    # Selectivity ordering: rare tags cost less than ubiquitous ones.
    assert fractions["location"] < fractions["product"]


def test_pruning_on_skewed_random_documents(benchmark):
    """Rare tags in a skewed vocabulary are found while pruning most branches."""
    from repro.workloads import RandomXmlConfig, generate_random_document

    def _run():
        document = generate_random_document(
            RandomXmlConfig(element_count=300, tag_vocabulary_size=12, tag_skew=1.4,
                            seed=99))
        client, server_tree, _ = outsource_document(document, seed=b"skew")
        plaintext = PlaintextSearchIndex(document)
        counts = document.tag_counts()
        rare_tag = min((t for t in counts if t != document.root.tag), key=counts.get)
        outcome = client.lookup(server_tree, rare_tag)
        assert outcome.matches == plaintext.lookup(rare_tag).matches
        return document.size(), outcome

    size, outcome = benchmark(_run)
    emit(f"E9b — rare-tag lookup on a skewed document: evaluated "
         f"{outcome.stats.nodes_evaluated}/{size} nodes, pruned "
         f"{outcome.stats.nodes_pruned} subtree roots")
    assert outcome.stats.nodes_evaluated < size
