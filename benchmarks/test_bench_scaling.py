"""Experiment E13: end-to-end scaling — query cost vs document size.

The paper's efficiency argument is asymptotic (§5): the smart index lets a
query touch a small portion of the tree, whereas the obvious alternatives
(download everything, or scan every node) pay for the whole document on
every query.  This benchmark sweeps the document size and reports, for
every system, the wall-clock query latency and the work/bytes per query,
for a selective lookup.

Absolute times are those of this pure-Python simulator; the shape to check
is the relative growth: the scheme's per-query work grows with the result
and live region, the linear scan and download-all grow with the document.
"""

import time

from repro.analysis import format_table
from repro.baselines import (
    DownloadAllClient,
    PlaintextSearchIndex,
    build_bloom_index,
    build_linear_scan,
)
from repro.core import choose_int_ring, outsource_document
from repro.prg import DeterministicPRG
from repro.workloads import RandomXmlConfig, generate_random_document

from conftest import emit

_SIZES = [50, 100, 200, 400]
_VOCABULARY = 10
_QUERY_TAG = "tag0"       # one of the rarer tags with skewed generation


def _build_document(n):
    return generate_random_document(
        RandomXmlConfig(element_count=n, tag_vocabulary_size=_VOCABULARY,
                        tag_skew=1.2, seed=n + 1))


def _time(callable_):
    start = time.perf_counter()
    result = callable_()
    return result, (time.perf_counter() - start) * 1000.0


def _run_sweep():
    rows = []
    work = {}
    for n in _SIZES:
        document = _build_document(n)
        plaintext = PlaintextSearchIndex(document)
        truth = plaintext.lookup(_QUERY_TAG).matches

        fp_client, fp_tree, _ = outsource_document(document, seed=b"scale-fp")
        int_client, int_tree, _ = outsource_document(
            document, ring=choose_int_ring(2), seed=b"scale-int")
        linear_client, linear_index = build_linear_scan(document)
        bloom_client, bloom_index = build_bloom_index(document)
        download_client = DownloadAllClient(DeterministicPRG(b"scale-dl"))
        download_server = download_client.outsource(document)

        fp_result, fp_ms = _time(lambda: fp_client.lookup(fp_tree, _QUERY_TAG))
        int_result, int_ms = _time(lambda: int_client.lookup(int_tree, _QUERY_TAG))
        linear_result, linear_ms = _time(
            lambda: linear_client.lookup(linear_index, _QUERY_TAG))
        bloom_result, bloom_ms = _time(
            lambda: bloom_client.lookup(bloom_index, _QUERY_TAG))
        download_result, download_ms = _time(
            lambda: download_client.lookup(download_server, _QUERY_TAG))

        for result in (fp_result, int_result):
            assert result.matches == truth
        for result in (linear_result, bloom_result, download_result):
            assert result.matches == truth

        document_size = document.size()
        work[n] = {
            "scheme_nodes": fp_result.stats.nodes_evaluated,
            "linear_nodes": linear_result.stats.nodes_visited,
            "download_bytes": download_result.stats.bytes_to_client,
        }
        rows.append([n, len(truth),
                     f"{fp_ms:.2f}", fp_result.stats.nodes_evaluated,
                     f"{int_ms:.2f}",
                     f"{linear_ms:.2f}", linear_result.stats.nodes_visited,
                     f"{bloom_ms:.2f}", bloom_result.stats.nodes_visited,
                     f"{download_ms:.2f}", download_result.stats.bytes_to_client])
    return rows, work


def test_query_scaling_across_systems(benchmark):
    rows, work = benchmark(_run_sweep)
    emit(format_table(
        ["n", "matches",
         "scheme F_p ms", "scheme nodes",
         "scheme Z[x] ms",
         "linear ms", "linear nodes",
         "bloom ms", "bloom nodes",
         "download ms", "download bytes"],
        rows,
        title=f"E13 — //{_QUERY_TAG} lookup vs document size"))

    smallest, largest = _SIZES[0], _SIZES[-1]
    growth = largest / smallest
    # The linear scan and download-all pay proportionally to the document.
    assert work[largest]["linear_nodes"] / work[smallest]["linear_nodes"] >= growth * 0.9
    assert work[largest]["download_bytes"] > work[smallest]["download_bytes"] * 2
    # The scheme touches at most the whole tree and usually much less.
    for n in _SIZES:
        assert work[n]["scheme_nodes"] <= n


def test_outsourcing_latency(benchmark, catalog_setup):
    """Time the one-off encode+share step for the catalog document."""
    document, _, _, _ = catalog_setup

    def _outsource():
        return outsource_document(document, seed=b"latency")

    client, server_tree, _ = benchmark(_outsource)
    assert server_tree.node_count() == document.size()
