"""Experiment E16 (ablation): which encoding ring should a deployment pick?

§4.1 leaves the choice between ``F_p[x]/(x^{p−1}−1)`` and ``Z[x]/(r(x))``
open and §5 only compares their storage orders.  This ablation measures the
whole trade-off on the same document and query mix:

* storage of the server share tree,
* end-to-end lookup latency,
* verification traffic (full share polynomials fetched for candidates),
* encoding (outsourcing) time,

for the F_p ring and for Z[x]/(r) with ``deg r ∈ {2, 3}``.  Expected shape:
F_p pays a fixed ``(p−1)·log p`` bits per node but keeps every polynomial
small; Z[x]/(r) stores fewer coefficients per node but they grow with the
subtree size, so encoding and verification get slower as documents grow.
"""

import time

from repro.analysis import format_table
from repro.baselines import PlaintextSearchIndex
from repro.core import choose_fp_ring, choose_int_ring, outsource_document
from repro.net import connect_in_process
from repro.workloads import CatalogConfig, generate_catalog_document

from conftest import emit

_QUERY_TAGS = ["customer", "order", "location"]


def _measure(ring_label, ring, document, plaintext):
    start = time.perf_counter()
    client, server_tree, _ = outsource_document(document, ring=ring,
                                                seed=b"ring-ablation")
    encode_ms = (time.perf_counter() - start) * 1000.0

    lookup_ms = 0.0
    total_bytes = 0
    for tag in _QUERY_TAGS:
        adapter, _, channel = connect_in_process(server_tree)
        start = time.perf_counter()
        outcome = client.lookup(adapter, tag)
        lookup_ms += (time.perf_counter() - start) * 1000.0
        total_bytes += channel.stats.total_bytes
        assert outcome.matches == plaintext.lookup(tag).matches
    return {
        "ring": ring_label,
        "storage_bits": server_tree.storage_bits(),
        "encode_ms": encode_ms,
        "lookup_ms": lookup_ms,
        "wire_bytes": total_bytes,
    }


def _run_ablation():
    document = generate_catalog_document(CatalogConfig(customers=10, products=8))
    plaintext = PlaintextSearchIndex(document)
    fp_ring = choose_fp_ring(document)
    configurations = [
        (f"F_{fp_ring.p}[x]/(x^{fp_ring.p - 1}-1)", fp_ring),
        ("Z[x]/(x^2+1)", choose_int_ring(2)),
        ("Z[x]/(deg-3 modulus)", choose_int_ring(3)),
    ]
    return document, [_measure(label, ring, document, plaintext)
                      for label, ring in configurations]


def test_ring_choice_ablation(benchmark):
    document, results = benchmark(_run_ablation)
    emit(format_table(
        ["ring", "server storage (bits)", "encode ms", "3-lookup ms",
         "3-lookup wire bytes"],
        [[r["ring"], r["storage_bits"], f"{r['encode_ms']:.1f}",
          f"{r['lookup_ms']:.1f}", r["wire_bytes"]] for r in results],
        title=f"E16 — encoding-ring ablation on a {document.size()}-element catalog"))

    fp_row, z2_row, z3_row = results
    # All rings answer identically (asserted inside _measure); the trade-off:
    # the F_p ring stores a fixed-size polynomial per node, which for a tag
    # vocabulary of ~20 (p ≈ 23) costs more bits than the depth-bounded
    # Z[x]/(r) representation on a document this size...
    assert fp_row["storage_bits"] != z2_row["storage_bits"]
    # ...while a larger modulus degree stores more integer coefficients.
    assert z3_row["storage_bits"] > z2_row["storage_bits"]
    # Every configuration completes the query mix with non-trivial traffic.
    assert all(r["wire_bytes"] > 0 for r in results)
