"""Experiment E10: bandwidth — thin clients and the trusted-server optimisation.

§4.3 ends with: transmitting only the constant coefficients "reduces
bandwidth and increases efficiency but decreases security".  The paper's
introduction motivates everything with thin clients on low-bandwidth
links, for which the alternative is downloading the whole database.

Measured here, in actual wire bytes of the protocol encoding:

* the scheme with FULL / CONSTANT_ONLY / NONE verification,
* the download-everything baseline,
for a selective and an unselective lookup.
"""

from repro.analysis import (
    format_table,
    measure_download_all_bandwidth,
    measure_lookup_bandwidth,
)
from repro.core import VerificationMode

from conftest import emit

_TAGS = ["location", "customer", "product"]


def _collect_rows(document, client, server_tree):
    rows = []
    by_key = {}
    for tag in _TAGS:
        for row in measure_lookup_bandwidth(client, server_tree, tag):
            rows.append([tag, row.mode, row.bytes_to_server, row.bytes_to_client,
                         row.total_bytes, row.round_trips])
            by_key[(tag, row.mode)] = row
        download = measure_download_all_bandwidth(document, tag)
        rows.append([tag, download.mode, download.bytes_to_server,
                     download.bytes_to_client, download.total_bytes,
                     download.round_trips])
        by_key[(tag, download.mode)] = download
    return rows, by_key


def test_lookup_bandwidth_modes(benchmark, catalog_setup):
    document, client, server_tree, _ = catalog_setup
    rows, by_key = benchmark(_collect_rows, document, client, server_tree)
    emit(format_table(
        ["query tag", "mode", "bytes→server", "bytes→client", "total bytes",
         "round trips"], rows,
        title="E10 — per-query bandwidth by verification mode vs download-all"))

    for tag in _TAGS:
        full = by_key[(tag, "scheme/full")]
        constant = by_key[(tag, "scheme/constant-only")]
        none = by_key[(tag, "scheme/none")]
        download = by_key[(tag, "baseline/download-all")]
        # The §4.3 trade-off: less verification, less traffic.
        assert full.total_bytes > constant.total_bytes > none.total_bytes
        # The thin-client motivation: for selective queries the scheme moves far
        # fewer bytes than downloading the whole database.
        if tag == "location":
            assert none.total_bytes < download.total_bytes
            assert constant.total_bytes < download.total_bytes


def test_verification_traffic_scales_with_candidates(benchmark, catalog_setup):
    """FULL-verification overhead is proportional to candidate answers, not to
    the document size — querying a rare tag verifies almost nothing."""
    document, client, server_tree, _ = catalog_setup

    def _run():
        rare = measure_lookup_bandwidth(client, server_tree, "location",
                                        modes=[VerificationMode.FULL])[0]
        common = measure_lookup_bandwidth(client, server_tree, "product",
                                          modes=[VerificationMode.FULL])[0]
        return rare, common

    rare, common = benchmark(_run)
    emit(f"E10b — FULL verification bytes: rare tag {rare.total_bytes}B "
         f"({rare.matches} matches) vs common tag {common.total_bytes}B "
         f"({common.matches} matches)")
    assert rare.total_bytes < common.total_bytes
