"""Experiment E8: the §5 storage analysis.

The paper states that storing a tree of ``n`` elements over ``p`` tag names
costs on the order of ``n·log p`` bits unencrypted, ``n(p−1)·log p`` in
``F_p[x]/(x^{p−1}−1)`` and ``n²(d+1)·log p`` in ``Z[x]/(r(x))``.  This
benchmark measures the concrete encodings over growing documents and
reports measured-vs-formula ratios; the shape to check is the *ordering*
(plaintext ≪ F_p ≪ Z for growing n) and the growth exponents.
"""

import math

from repro.analysis import format_table, storage_report
from repro.core import TagMapping, choose_fp_ring, choose_int_ring, encode_document
from repro.workloads import RandomXmlConfig, generate_random_document

from conftest import emit

_SIZES = [10, 20, 40, 80, 160]
_TAG_COUNT = 8


def _document(n):
    return generate_random_document(
        RandomXmlConfig(element_count=n, tag_vocabulary_size=_TAG_COUNT, seed=n))


def _report_rows():
    fp_ring = choose_fp_ring(_TAG_COUNT + 1)      # +1 for the generator's root tag
    int_ring = choose_int_ring(2)
    rows = []
    per_size = {}
    for n in _SIZES:
        document = _document(n)
        mapping = TagMapping.for_tags(document.distinct_tags(), max_value=fp_ring.p - 2)
        report = storage_report(document, mapping, fp_ring=fp_ring, int_ring=int_ring)
        per_size[n] = {row.representation: row for row in report}
        for row in report:
            rows.append([n, row.representation, int(row.measured_bits),
                         int(row.formula_bits), f"{row.overhead_vs_formula:.2f}"])
    return rows, per_size, fp_ring


def test_storage_growth(benchmark):
    rows, per_size, fp_ring = benchmark(_report_rows)
    emit(format_table(["n", "representation", "measured bits", "formula bits",
                       "measured/formula"], rows,
                      title="E8 — storage vs document size (paper §5)"))

    smallest, largest = _SIZES[0], _SIZES[-1]
    small, large = per_size[smallest], per_size[largest]

    def measured(rows_by_repr, key_fragment):
        for name, row in rows_by_repr.items():
            if key_fragment in name:
                return row.measured_bits
        raise KeyError(key_fragment)

    # Shape 1: the encrypted representations always cost more than plaintext.
    for size in _SIZES:
        plaintext_bits = measured(per_size[size], "plaintext")
        assert measured(per_size[size], "F_") > plaintext_bits
        assert measured(per_size[size], "Z[x]") > plaintext_bits

    # Shape 2: the F_p representation grows linearly in n — the per-node cost
    # is constant, so the ratio to plaintext stays roughly (p-1) log p / log p.
    fp_ratio_small = measured(small, "F_") / measured(small, "plaintext")
    fp_ratio_large = measured(large, "F_") / measured(large, "plaintext")
    assert 0.5 < fp_ratio_small / fp_ratio_large < 2.0

    # Shape 3: the Z[x]/(r) representation grows super-linearly (coefficients
    # carry ~n log p bits each), so its cost relative to F_p increases with n.
    z_over_fp_small = measured(small, "Z[x]") / measured(small, "F_")
    z_over_fp_large = measured(large, "Z[x]") / measured(large, "F_")
    assert z_over_fp_large > z_over_fp_small

    # Shape 4: the F_p formula predicts the measured value well (same order).
    fp_row = large["F_{0}[x]/(x^{1}-1)".format(fp_ring.p, fp_ring.p - 1)]
    assert 0.2 < fp_row.overhead_vs_formula < 5.0


def test_fp_storage_is_independent_of_content(benchmark):
    """Every F_p element occupies the same space — storage depends only on n."""
    ring = choose_fp_ring(_TAG_COUNT + 1)
    document = _document(60)
    mapping = TagMapping.for_tags(document.distinct_tags(), max_value=ring.p - 2)
    tree = benchmark(encode_document, document, mapping, ring)
    per_node = ring.element_storage_bits(ring.one)
    assert tree.storage_bits() == document.size() * per_node
    expected_formula = document.size() * (ring.p - 1) * math.ceil(math.log2(ring.p))
    assert tree.storage_bits() == expected_formula
