"""Experiment E12: the §3 secure multi-party voting protocols.

The paper uses anonymous voting (sum for majority, product for veto) to
introduce Shamir-based secure multi-party computation.  This benchmark
checks correctness over a sweep of party counts and reports the message
complexity, which grows quadratically in the number of parties for the
input-sharing phase.
"""

import random

from repro.algebra import PrimeField
from repro.analysis import format_table
from repro.smc import SecureSummation, SecureVeto

from conftest import emit

_PARTY_COUNTS = [3, 5, 7, 9, 13, 17]


def _run_sweep():
    field = PrimeField(257)
    rows = []
    message_counts = {}
    for parties in _PARTY_COUNTS:
        rng = random.Random(parties)
        votes = [rng.randint(0, 1) for _ in range(parties)]
        summation = SecureSummation(field, threshold=3, inputs=votes, rng=rng)
        assert summation.run() == sum(votes) % field.p

        veto_votes = [1] * parties
        veto = SecureVeto(field, threshold=2, inputs=veto_votes,
                          rng=random.Random(parties + 1))
        assert veto.run() == 1

        blocked = SecureVeto(field, threshold=2,
                             inputs=[1] * (parties - 1) + [0],
                             rng=random.Random(parties + 2))
        assert blocked.run() == 0

        transcript = summation.transcript.as_dict()
        veto_transcript = veto.transcript.as_dict()
        message_counts[parties] = transcript["messages_sent"]
        rows.append([parties, sum(votes), transcript["messages_sent"],
                     transcript["rounds"], veto_transcript["messages_sent"],
                     veto_transcript["rounds"]])
    return rows, message_counts


def test_voting_protocols_scaling(benchmark):
    rows, message_counts = benchmark(_run_sweep)
    emit(format_table(
        ["parties", "yes votes", "sum-protocol messages", "sum rounds",
         "veto-protocol messages", "veto rounds"], rows,
        title="E12 — secure sum (majority) and secure product (veto) vs party count"))

    # The sharing phase sends one share from every party to every other party,
    # so message counts grow quadratically: doubling parties ~quadruples traffic.
    small, large = message_counts[_PARTY_COUNTS[0]], message_counts[_PARTY_COUNTS[-1]]
    expected_ratio = (_PARTY_COUNTS[-1] / _PARTY_COUNTS[0]) ** 2
    assert large / small > expected_ratio / 2


def test_secure_sum_latency(benchmark):
    field = PrimeField(10007)
    votes = [i % 2 for i in range(25)]
    rng = random.Random(0)

    def _run():
        protocol = SecureSummation(field, threshold=5, inputs=votes,
                                   rng=random.Random(rng.random()))
        return protocol.run()

    result = benchmark(_run)
    assert result == sum(votes)
