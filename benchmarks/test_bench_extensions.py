"""Experiments E14–E15 (extensions beyond the paper's evaluation).

E14 — dynamic update cost: the paper only describes static outsourcing;
this ablation measures how many shares an insert/delete/rename rewrites as
the document grows, confirming that updates touch the affected path (and
the new subtree), not the whole document.

E15 — keyword search over content (the §5 future-work sketch): candidate
quality and pruning of the hashed content index as the hash range (ring
size) varies — the trade-off the paper alludes to when it notes the
mapping "is no longer invertible".
"""

from repro.algebra import FpQuotientRing
from repro.analysis import format_table
from repro.core import (
    ContentIndexBuilder,
    ContentSearchClient,
    UpdatableTree,
    choose_fp_ring,
    outsource_document,
)
from repro.prg import DeterministicPRG
from repro.core import tokenize
from repro.workloads import CatalogConfig, generate_catalog_document
from repro.xmltree import parse_element

from conftest import emit

_CUSTOMER_COUNTS = [5, 10, 20, 40]


def _update_cost_rows():
    rows = []
    per_size = {}
    for customers in _CUSTOMER_COUNTS:
        document = generate_catalog_document(CatalogConfig(customers=customers,
                                                           products=6))
        ring = choose_fp_ring(len(document.distinct_tags()) + 4)
        client, server_tree, _ = outsource_document(document, ring=ring,
                                                    seed=b"bench-updates")
        editor = UpdatableTree(client.ring, client.mapping, client.share_generator,
                               server_tree)
        n = server_tree.node_count()

        target_customer = client.lookup(server_tree, "customer").matches[0]
        insert = editor.insert_subtree(target_customer, parse_element(
            "<order><date>x</date><item><product>p</product></item></order>"))
        rename = editor.rename_node(client.lookup(server_tree, "order").matches[0],
                                    "archived_order")
        delete = editor.delete_subtree(
            client.lookup(server_tree, "customer").matches[-1])

        per_size[customers] = (n, insert.shares_rewritten, delete.shares_rewritten)
        rows.append([customers, n,
                     insert.shares_rewritten, rename.shares_rewritten,
                     delete.shares_rewritten])
    return rows, per_size


def test_update_costs_stay_local(benchmark):
    rows, per_size = benchmark(_update_cost_rows)
    emit(format_table(
        ["customers", "document nodes", "insert: shares rewritten",
         "rename: shares rewritten", "delete: shares rewritten"], rows,
        title="E14 — update cost vs document size (path-local, not document-wide)"))
    # The rewritten-share count is governed by depth/fanout, not by n: growing
    # the document 8x must not grow the insert cost proportionally.
    small_n, small_insert, small_delete = per_size[_CUSTOMER_COUNTS[0]]
    large_n, large_insert, large_delete = per_size[_CUSTOMER_COUNTS[-1]]
    assert large_n > 4 * small_n
    assert large_insert <= small_insert + 2
    assert large_delete <= small_delete + 2


def _keyword_rows():
    document = generate_catalog_document(CatalogConfig(customers=10, products=8))
    words = ["enschede", "main", "sku", "street", "absentword"]
    truth = {}
    for index, element in enumerate(document.elements()):
        for word in tokenize(element.text):
            truth.setdefault(word, set()).add(index)

    rows = []
    for prime in (11, 53, 257):
        builder = ContentIndexBuilder(FpQuotientRing(prime),
                                      DeterministicPRG(b"bench-keywords"))
        generator, content_tree, store = builder.build(document)
        search = ContentSearchClient(builder, generator, content_tree, store)
        for word in words:
            result = search.search(word)
            expected = truth.get(word, set())
            assert set(result.confirmed_nodes) == expected
            rows.append([prime, word, len(result.candidate_nodes),
                         len(result.confirmed_nodes), result.false_positives,
                         result.stats.nodes_evaluated])
    return rows


def test_keyword_index_ring_size_ablation(benchmark):
    rows = benchmark(_keyword_rows)
    emit(format_table(
        ["hash range (p)", "keyword", "candidates", "confirmed",
         "collisions filtered", "nodes evaluated"], rows,
        title="E15 — keyword search: hash-range ablation "
              "(collisions shrink as p grows; answers always exact)"))
    by_prime = {}
    for prime, _, candidates, confirmed, collisions, _ in rows:
        totals = by_prime.setdefault(prime, [0, 0])
        totals[0] += candidates
        totals[1] += confirmed
    # Larger rings give tighter candidate sets (fewer collision-induced visits).
    assert by_prime[257][0] <= by_prime[11][0]
