"""Experiments E1–E7: the paper's worked example, figures 1 through 6.

Regenerates every value printed in the figures and times the three phases
of the scheme on the figure-1 document (encoding, sharing, querying).
"""

from repro.analysis import format_table
from repro.core import LocalServerAdapter, encode_document, outsource_document, share_tree
from repro.prg import DeterministicPRG
from repro.workloads import (
    expected_figure2_fp_polynomials,
    expected_figure2_int_polynomials,
    expected_figure5_sums,
    expected_figure6_sums,
    figure1_document,
    figure1_fp_ring,
    figure1_int_ring,
    figure1_mapping,
)

from conftest import emit


def _paths(document):
    return [element.tag_path() for element in document.iter()]


def test_figure1_and_2_encoding(benchmark):
    """E1–E3: the encoded polynomial trees match figure 2 exactly."""
    document = figure1_document()
    mapping = figure1_mapping()
    fp_ring, int_ring = figure1_fp_ring(), figure1_int_ring()

    fp_tree = benchmark(encode_document, document, mapping, fp_ring)
    int_tree = encode_document(document, mapping, int_ring)

    paths = _paths(document)
    rows = []
    for node in fp_tree.iter_preorder():
        rows.append([node.node_id, paths[node.node_id],
                     str(node.polynomial), str(int_tree.polynomial(node.node_id))])
    emit(format_table(["node", "tag path", "F_5[x]/(x^4-1)  (fig 2a)",
                       "Z[x]/(x^2+1)  (fig 2b)"], rows,
                      title="Figure 1/2: encoded polynomial trees"))

    expected_fp = expected_figure2_fp_polynomials()
    expected_int = expected_figure2_int_polynomials()
    for node in fp_tree.iter_preorder():
        assert list(node.polynomial.coeffs) == expected_fp[paths[node.node_id]]
        assert list(int_tree.polynomial(node.node_id).coeffs) == \
            expected_int[paths[node.node_id]]


def test_figure3_and_4_sharing(benchmark):
    """E4–E5: client/server shares sum to the figure-2 polynomials."""
    document = figure1_document()
    mapping = figure1_mapping()

    def _share_both():
        results = {}
        for name, ring in (("F_5", figure1_fp_ring()), ("Z[x^2+1]", figure1_int_ring())):
            tree = encode_document(document, mapping, ring)
            client, server = share_tree(tree, DeterministicPRG(b"figures-3-4"))
            results[name] = (ring, tree, client, server)
        return results

    results = benchmark(_share_both)
    rows = []
    for name, (ring, tree, client, server) in results.items():
        for node in tree.iter_preorder():
            client_share = client.share_for(node.node_id)
            server_share = server.share_of(node.node_id)
            total = ring.add(client_share, server_share)
            assert total == node.polynomial
            rows.append([name, node.node_id, str(client_share), str(server_share),
                         str(total)])
    emit(format_table(["ring", "node", "client share", "server share",
                       "sum (= figure 2)"], rows,
                      title="Figures 3/4: additive sharing (sums equal the encoding)"))


def test_figure5_and_6_query(benchmark):
    """E6–E7: the //client query (x = 2) reproduces the figure 5/6 sum trees."""
    document = figure1_document()
    mapping = figure1_mapping()
    paths = _paths(document)
    rows = []

    for figure, ring, expected in (("5", figure1_fp_ring(), expected_figure5_sums()),
                                   ("6", figure1_int_ring(), expected_figure6_sums())):
        client, server_tree, tree = outsource_document(
            document, ring=ring, mapping=figure1_mapping(), seed=b"figures-5-6",
            strict=False)
        point = mapping.value("client")
        for node in tree.iter_preorder():
            client_value = ring.evaluate(client.share_generator.share_for(node.node_id),
                                         point)
            server_value = server_tree.evaluate(node.node_id, point)
            total = ring.evaluation_add(client_value, server_value, point)
            assert total == expected[paths[node.node_id]]
            rows.append([figure, node.node_id, paths[node.node_id], client_value,
                         server_value, total])

    emit(format_table(["figure", "node", "tag path", "client eval", "server eval",
                       "sum"], rows,
                      title="Figures 5/6: query x=2 — sum 0 means the subtree "
                            "contains 'client'"))

    # Time the full interactive protocol on the F_5 instance.
    client, server_tree, _ = outsource_document(
        document, ring=figure1_fp_ring(), mapping=figure1_mapping(),
        seed=b"figures-5-6", strict=False)

    outcome = benchmark(lambda: client.lookup(LocalServerAdapter(server_tree), "client"))
    assert outcome.matches == [1, 3]
    assert set(outcome.pruned_nodes) == {2, 4}
