"""Experiment E11: advanced querying — single-pass vs left-to-right (§4.3).

"Since every polynomial in the tree consists of the roots of all its
descendants, a single query can find all elements that contains the
elements a, b, c, d and e (in any order). ... Using this strategy elements
are filtered out in a very early stage and therefore increases efficiency."

Measured: share evaluations, round trips and verification fetches for the
two strategies over (a) a synthetic haystack/needle document where the
advantage is structural, and (b) XMark-like path queries.
"""

from repro.analysis import format_ratio, format_table
from repro.baselines import PlaintextSearchIndex
from repro.core import AdvancedStrategy, outsource_document
from repro.workloads import XMARK_QUERIES, XMarkConfig, generate_xmark_document
from repro.xmltree import XmlDocument, XmlElement

from conftest import emit


def _haystack_document(haystack_size=60):
    root = XmlElement("library")
    haystack = root.add("archive")
    for index in range(haystack_size):
        shelf = haystack.add("shelf")
        shelf.add("book").add("title")
    reading_room = root.add("readingroom")
    desk = reading_room.add("shelf")
    book = desk.add("book")
    book.add("title")
    book.add("loan")
    return XmlDocument(root)


def _compare(client, server_tree, plaintext, queries):
    rows = []
    totals = {AdvancedStrategy.SINGLE_PASS: 0, AdvancedStrategy.LEFT_TO_RIGHT: 0}
    for query in queries:
        truth = plaintext.query(query).matches
        results = {}
        for strategy in AdvancedStrategy:
            result = client.xpath(server_tree, query, strategy=strategy)
            assert result.matches == truth, query
            results[strategy] = result
            totals[strategy] += result.stats.evaluations
        single = results[AdvancedStrategy.SINGLE_PASS].stats
        naive = results[AdvancedStrategy.LEFT_TO_RIGHT].stats
        rows.append([query, len(truth), single.evaluations, naive.evaluations,
                     format_ratio(naive.evaluations, max(1, single.evaluations)),
                     single.round_trips, naive.round_trips])
    return rows, totals


def test_haystack_pruning_advantage(benchmark):
    """The structural best case: the remaining-tag test discards the haystack
    at its root, the naive strategy enumerates every 'book' inside it."""
    document = _haystack_document()
    plaintext = PlaintextSearchIndex(document)
    client, server_tree, _ = outsource_document(document, seed=b"advanced-haystack")

    rows, totals = benchmark(_compare, client, server_tree, plaintext,
                             ["//shelf/book/loan", "//book/loan"])
    emit(format_table(
        ["query", "matches", "evaluations single-pass", "evaluations left-to-right",
         "advantage", "round trips single", "round trips naive"], rows,
        title="E11a — haystack/needle document "
              f"({document.size()} elements)"))
    assert totals[AdvancedStrategy.SINGLE_PASS] * 2 <= \
        totals[AdvancedStrategy.LEFT_TO_RIGHT]


def test_xmark_query_strategies(benchmark):
    document = generate_xmark_document(XMarkConfig(items_per_region=5, people=20,
                                                   open_auctions=12))
    plaintext = PlaintextSearchIndex(document)
    client, server_tree, _ = outsource_document(document, seed=b"advanced-xmark")

    queries = XMARK_QUERIES + ["//person/profile/education",
                               "//open_auction/bidder/personref/person"]
    rows, totals = benchmark(_compare, client, server_tree, plaintext, queries)
    emit(format_table(
        ["query", "matches", "evaluations single-pass", "evaluations left-to-right",
         "advantage", "round trips single", "round trips naive"], rows,
        title=f"E11b — XMark-like document ({document.size()} elements)"))
    # Both strategies return identical (verified) answers; across the workload
    # the single-pass strategy does not do more work in aggregate.
    assert totals[AdvancedStrategy.SINGLE_PASS] <= \
        1.05 * totals[AdvancedStrategy.LEFT_TO_RIGHT]
