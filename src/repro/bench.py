"""Quick kernel benchmark suite and the ``BENCH_N.json`` perf snapshots.

This module measures the three rates the fast-kernel layer is judged by:

* polynomial multiplication throughput over ``F_p`` (kernel vs generic);
* quotient-ring reduction throughput in both encoding rings;
* end-to-end ``outsource + lookup`` latency on the scaling workload.

The workloads are fully deterministic (fixed seeds, fixed sizes) so that a
snapshot written by ``python -m repro.cli bench`` or by
``benchmarks/test_bench_kernels.py`` is comparable across commits; only
the wall-clock rates vary with the host.  Snapshots are written with
sorted keys and a stable schema so future perf PRs can diff against
``BENCH_1.json``.
"""

from __future__ import annotations

import json
import math
import os
import random
import tempfile
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from .algebra import (
    FpQuotientRing,
    IntQuotientRing,
    Polynomial,
    PrimeField,
    ZZ,
    default_int_modulus,
    use_kernels,
)
from .core import choose_fp_ring, outsource_document
from .workloads import RandomXmlConfig, generate_random_document

__all__ = [
    "run_benchmarks",
    "run_serving_benchmarks",
    "run_concurrency_benchmarks",
    "run_update_benchmarks",
    "run_fault_benchmarks",
    "run_kernel_benchmarks",
    "run_ops_benchmarks",
    "write_snapshot",
    "SNAPSHOT_NAME",
    "SERVING_SNAPSHOT_NAME",
    "CONCURRENCY_SNAPSHOT_NAME",
    "UPDATES_SNAPSHOT_NAME",
    "FAULTS_SNAPSHOT_NAME",
    "KERNELS_SNAPSHOT_NAME",
    "OPS_SNAPSHOT_NAME",
]

SNAPSHOT_NAME = "BENCH_1"

SERVING_SNAPSHOT_NAME = "BENCH_2"

CONCURRENCY_SNAPSHOT_NAME = "BENCH_3"

UPDATES_SNAPSHOT_NAME = "BENCH_4"

FAULTS_SNAPSHOT_NAME = "BENCH_5"

KERNELS_SNAPSHOT_NAME = "BENCH_6"

OPS_SNAPSHOT_NAME = "BENCH_7"

#: Prime used for the raw F_p multiplication benchmark (large enough that
#: coefficients are realistic residues, small enough to stay hardware-native).
_BENCH_PRIME = 10007


def _environment() -> Dict[str, Any]:
    """python/numpy/platform stamp written into every snapshot config block.

    BENCH_1→6 trajectories are only comparable when the host is known;
    ``numpy: null`` additionally records that a snapshot measured the
    fallback (flat-tier) dispatch rather than the vectorized one.
    """
    import platform

    from .algebra import numpy_or_none

    np = numpy_or_none()
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "numpy": None if np is None else np.__version__,
    }


def _ops_per_sec(fn: Callable[[], Any], min_time: float = 0.10,
                 repeat: int = 3) -> float:
    """Best observed throughput of ``fn`` in operations per second."""
    fn()  # warm-up (also forces lazy tables)
    number = 1
    while True:
        start = time.perf_counter()
        for _ in range(number):
            fn()
        elapsed = time.perf_counter() - start
        if elapsed >= min_time / 4 or number >= 1 << 16:
            break
        number *= 4
    best = elapsed / number
    for _ in range(repeat - 1):
        start = time.perf_counter()
        for _ in range(number):
            fn()
        best = min(best, (time.perf_counter() - start) / number)
    return 1.0 / best


def _percentiles(latencies_s: List[float],
                 points: tuple = (50, 95, 99)) -> Dict[str, float]:
    """Nearest-rank latency percentiles in milliseconds (p50/p95/p99)."""
    ordered = sorted(latencies_s)
    columns: Dict[str, float] = {}
    for q in points:
        rank = max(0, math.ceil(q / 100.0 * len(ordered)) - 1)
        columns[f"p{q}_ms"] = round(ordered[rank] * 1000.0, 3)
    return columns


def _timed_pair(fast: Callable[[], Any], generic: Callable[[], Any],
                min_time: float, repeat: int) -> Dict[str, float]:
    kernel_rate = _ops_per_sec(fast, min_time, repeat)
    with use_kernels(False):
        generic_rate = _ops_per_sec(generic, min_time, repeat)
    return {
        "kernel_ops_per_sec": round(kernel_rate, 2),
        "generic_ops_per_sec": round(generic_rate, 2),
        "speedup": round(kernel_rate / generic_rate, 2),
    }


def bench_poly_mul(degrees=(16, 64, 128), p: int = _BENCH_PRIME,
                   min_time: float = 0.10, repeat: int = 3) -> Dict[str, Any]:
    """Kernel vs generic dense multiplication throughput over ``F_p``."""
    field = PrimeField(p)
    rng = random.Random(0xBE7C)
    results: Dict[str, Any] = {"p": p, "degrees": {}}
    for degree in degrees:
        a = Polynomial([rng.randrange(p) for _ in range(degree)] + [1], field)
        b = Polynomial([rng.randrange(p) for _ in range(degree)] + [1], field)
        results["degrees"][str(degree)] = _timed_pair(
            lambda: a * b, lambda: a * b, min_time, repeat)
    return results


def bench_quotient_reduce(min_time: float = 0.10,
                          repeat: int = 3) -> Dict[str, Any]:
    """Reduction throughput of both encoding rings on oversized inputs."""
    rng = random.Random(0x5EED)
    fp_ring = FpQuotientRing(29)
    fp_poly = Polynomial([rng.randrange(29) for _ in range(3 * 28)] + [1],
                         fp_ring.field)
    int_ring = IntQuotientRing(default_int_modulus(2))
    int_poly = Polynomial([rng.randrange(-10 ** 9, 10 ** 9) for _ in range(12)] + [1],
                          ZZ)
    return {
        "fp": dict(_timed_pair(lambda: fp_ring.reduce(fp_poly),
                               lambda: fp_ring.reduce(fp_poly),
                               min_time, repeat),
                   ring=fp_ring.name, input_degree=fp_poly.degree),
        "int": dict(_timed_pair(lambda: int_ring.reduce(int_poly),
                                lambda: int_ring.reduce(int_poly),
                                min_time, repeat),
                    ring=int_ring.name, input_degree=int_poly.degree),
    }


def _outsource_and_lookup(document, tag: str) -> None:
    client, server_tree, _ = outsource_document(
        document, ring=choose_fp_ring(document), seed=b"bench-kernels")
    outcome = client.lookup(server_tree, tag)
    assert outcome.matches or outcome.zero_nodes or outcome.pruned_nodes is not None


def bench_end_to_end(sizes=(50, 100, 200), vocabulary: int = 24,
                     repeat: int = 5) -> Dict[str, Any]:
    """End-to-end outsource+lookup latency on the scaling workload.

    Mirrors ``benchmarks/test_bench_scaling.py``: random skewed documents,
    a selective ``//tag0`` lookup, one encode+share+query pass per size.
    """
    results: Dict[str, Any] = {"vocabulary": vocabulary, "sizes": {}}
    total_fast = total_generic = 0.0
    for n in sizes:
        document = generate_random_document(
            RandomXmlConfig(element_count=n, tag_vocabulary_size=vocabulary,
                            tag_skew=1.2, seed=n + 1))
        # A selective tag that is guaranteed present (deterministic choice).
        tags = sorted(document.distinct_tags())
        tag = tags[len(tags) // 2]
        fast = _ops_per_sec(lambda: _outsource_and_lookup(document, tag),
                            min_time=0.0, repeat=repeat)
        with use_kernels(False):
            generic = _ops_per_sec(lambda: _outsource_and_lookup(document, tag),
                                   min_time=0.0, repeat=repeat)
        fast_ms = 1000.0 / fast
        generic_ms = 1000.0 / generic
        total_fast += fast_ms
        total_generic += generic_ms
        results["sizes"][str(n)] = {
            "kernel_ms": round(fast_ms, 3),
            "generic_ms": round(generic_ms, 3),
            "speedup": round(generic_ms / fast_ms, 2),
        }
    results["total_kernel_ms"] = round(total_fast, 3)
    results["total_generic_ms"] = round(total_generic, 3)
    results["speedup"] = round(total_generic / total_fast, 2)
    return results


def run_benchmarks(quick: bool = False, repeat: int = 3) -> Dict[str, Any]:
    """Run the whole quick suite and return the snapshot dictionary."""
    min_time = 0.02 if quick else 0.10
    sizes = (50, 100) if quick else (50, 100, 200, 400)
    degrees = (16, 64) if quick else (16, 64, 128)
    return {
        "snapshot": SNAPSHOT_NAME,
        "description": "fast-kernel algebra layer: kernel vs generic reference path",
        "config": {
            "quick": quick,
            "repeat": repeat,
            "sizes": list(sizes),
            "degrees": list(degrees),
            "environment": _environment(),
        },
        "poly_mul_fp": bench_poly_mul(degrees, min_time=min_time, repeat=repeat),
        "quotient_reduce": bench_quotient_reduce(min_time=min_time, repeat=repeat),
        "end_to_end": bench_end_to_end(sizes, repeat=max(repeat, 5)),
    }


# ---------------------------------------------------------------------------
# Serving-engine benchmark (BENCH_2): protocol, backends, tenancy, concurrency
# ---------------------------------------------------------------------------

#: The figure-1 workload: the paper's worked example generalised to more
#: clients, queried with the XPath shapes its §4.3 walks through.
_SERVING_QUERIES = ["//client", "//name", "//client/name",
                    "/customers/client/name", "//customers/client"]


def _serving_document(clients: int = 8):
    from .workloads import figure1_document

    return figure1_document(clients=clients)


def _run_query_session(client, server, query: str, protocol_version: int,
                       lookahead: int = 1, document_id=None):
    """One cold session: connect, run ``query``, return (matches, stats)."""
    from .core.advanced import AdvancedQueryExecutor
    from .net import connect

    adapter, channel = connect(server, document_id=document_id,
                               protocol_version=protocol_version)
    engine = client.engine(adapter)
    engine.frontier_lookahead = lookahead
    result = AdvancedQueryExecutor(engine).execute(query)
    return result.matches, channel.stats


def bench_serving_protocol(clients: int = 8) -> Dict[str, Any]:
    """Round trips/bytes per XPath lookup: batched v2 vs the v1 protocol.

    Every lookup runs over a fresh session (the per-lookup cost a thin
    client pays), with bit-identical answers asserted across protocol
    versions.  The counts are deterministic — only the document size, the
    queries and the protocol shape them — so the reduction factors are
    stable across hosts.
    """
    from .net import SearchServer

    document = _serving_document(clients)
    client, server_tree, _ = outsource_document(document, seed=b"bench-serving")
    server = SearchServer(server_tree)
    queries: Dict[str, Any] = {}
    totals = {"v1": [0, 0], "v2": [0, 0], "v2_lookahead2": [0, 0]}
    for query in _SERVING_QUERIES:
        row: Dict[str, Any] = {}
        baseline_matches = None
        for label, version, lookahead in (("v1", 1, 0), ("v2", 2, 1),
                                          ("v2_lookahead2", 2, 2)):
            matches, stats = _run_query_session(client, server, query,
                                                version, lookahead)
            if baseline_matches is None:
                baseline_matches = matches
            assert matches == baseline_matches, (query, label)
            row[label] = {"round_trips": stats.round_trips,
                          "total_bytes": stats.total_bytes}
            totals[label][0] += stats.round_trips
            totals[label][1] += stats.total_bytes
        row["round_trip_reduction"] = round(
            row["v1"]["round_trips"] / row["v2"]["round_trips"], 2)
        queries[query] = row
    return {
        "document_elements": document.size(),
        "queries": queries,
        "aggregate": {
            label: {"round_trips": value[0], "total_bytes": value[1]}
            for label, value in totals.items()},
        "round_trip_reduction": round(totals["v1"][0] / totals["v2"][0], 2),
        "round_trip_reduction_lookahead2": round(
            totals["v1"][0] / totals["v2_lookahead2"][0], 2),
        "byte_ratio_v1_over_v2": round(totals["v1"][1] / totals["v2"][1], 2),
    }


def bench_serving_backends(clients: int = 8) -> Dict[str, Any]:
    """Bit-identical answers from the in-memory and SQLite store backends."""
    from .net import SQLiteShareStore, SearchServer

    document = _serving_document(clients)
    client, server_tree, _ = outsource_document(document, seed=b"bench-serving")
    results: Dict[str, Any] = {}
    with tempfile.TemporaryDirectory() as tmp:
        store = SQLiteShareStore.from_tree(os.path.join(tmp, "figure1.db"),
                                           server_tree)
        servers = {"in_memory": SearchServer(server_tree),
                   "sqlite": SearchServer(store)}
        answers: Dict[str, List] = {}
        timings: Dict[str, float] = {}
        for backend, server in servers.items():
            start = time.perf_counter()
            answers[backend] = [
                _run_query_session(client, server, query, 2)[0]
                for query in _SERVING_QUERIES]
            timings[backend] = time.perf_counter() - start
        assert answers["in_memory"] == answers["sqlite"]
        results = {
            "identical_results": answers["in_memory"] == answers["sqlite"],
            "in_memory_storage_bits": server_tree.storage_bits(),
            "sqlite_file_bytes": store.file_bytes(),
            "sqlite_shares_resident_after_queries": store.cached_share_count(),
            "in_memory_query_ms": round(timings["in_memory"] * 1000, 3),
            "sqlite_query_ms": round(timings["sqlite"] * 1000, 3),
        }
        store.close()
    return results


def bench_serving_concurrency(clients: int = 8, threads: int = 8,
                              rounds: int = 3) -> Dict[str, Any]:
    """Concurrent multi-tenant lookups vs the serial baseline.

    One server hosts two documents; ``threads`` sessions (half per
    document) each run the query workload ``rounds`` times.  Results must
    be bit-identical to the serial run, and the per-session channel totals
    must add up to exactly the requests the server handled.
    """
    from .net import SearchServer

    documents = {"figure1-a": _serving_document(clients),
                 "figure1-b": _serving_document(clients + 3)}
    clients_ctx = {}
    server = SearchServer()
    for document_id, document in documents.items():
        ctx, tree, _ = outsource_document(
            document, seed=b"bench-" + document_id.encode())
        server.add_document(document_id, tree)
        clients_ctx[document_id] = ctx

    def run_workload(document_id: str) -> List:
        answers = []
        for _ in range(rounds):
            for query in _SERVING_QUERIES:
                matches, _ = _run_query_session(
                    clients_ctx[document_id], server, query, 2,
                    document_id=document_id)
                answers.append((query, tuple(matches)))
        return answers

    requests_before = server.observations.requests_handled
    start = time.perf_counter()
    serial = {document_id: run_workload(document_id)
              for document_id in documents}
    serial_s = time.perf_counter() - start

    outcomes: Dict[int, List] = {}
    workers = []
    start = time.perf_counter()
    for index in range(threads):
        document_id = list(documents)[index % len(documents)]

        def task(index=index, document_id=document_id):
            outcomes[index] = (document_id, run_workload(document_id))

        worker = threading.Thread(target=task)
        workers.append(worker)
        worker.start()
    for worker in workers:
        worker.join()
    concurrent_s = time.perf_counter() - start

    identical = all(answers == serial[document_id]
                    for document_id, answers in outcomes.values())
    return {
        "threads": threads,
        "documents": sorted(documents),
        "lookups_per_thread": rounds * len(_SERVING_QUERIES),
        "identical_to_serial": identical,
        "serial_s": round(serial_s, 4),
        "concurrent_s": round(concurrent_s, 4),
        "requests_handled": server.observations.requests_handled - requests_before,
    }


def run_serving_benchmarks(quick: bool = False) -> Dict[str, Any]:
    """The serving-engine suite (multi-document, backends, protocol v2)."""
    clients = 4 if quick else 8
    return {
        "snapshot": SERVING_SNAPSHOT_NAME,
        "description": "serving engine: batched frontier protocol vs v1, "
                       "share-store backends, multi-document concurrency",
        "config": {"quick": quick, "clients": clients,
                   "queries": list(_SERVING_QUERIES),
                   "environment": _environment()},
        "protocol": bench_serving_protocol(clients),
        "backends": bench_serving_backends(clients),
        "concurrency": bench_serving_concurrency(
            clients, threads=4 if quick else 8, rounds=2 if quick else 3),
    }


# ---------------------------------------------------------------------------
# Concurrent-throughput benchmark (BENCH_3): sync threaded vs async coalesced
# ---------------------------------------------------------------------------

def _concurrency_document(element_count: int, seed: int = 7):
    """The BENCH_3 workload document: large, skewed, selective tags exist."""
    return generate_random_document(RandomXmlConfig(
        element_count=element_count, tag_vocabulary_size=48, tag_skew=1.6,
        max_depth=14, seed=seed))


def _selective_tags(document, count: int) -> List[str]:
    """The ``count`` least frequent tags, rarest first (deterministic)."""
    from collections import Counter

    frequencies: Counter = Counter()
    stack = [document.root]
    while stack:
        element = stack.pop()
        frequencies[element.tag] += 1
        stack.extend(element.children)
    ranked = sorted(frequencies, key=lambda tag: (frequencies[tag], tag))
    return ranked[:count]


def _concurrent_lookups(client, ring, port: int, sessions: int,
                        tags: List[str], reference: Dict[str, tuple]
                        ) -> Dict[str, Any]:
    """Run ``sessions`` threads of lookups against a socket server at ``port``.

    Each session opens one framed TCP connection, runs every tag lookup
    (rotated by session index so sessions are not artificially in
    lock-step) and asserts its matches against ``reference``.  Returns the
    wall-clock throughput over all sessions.
    """
    from .core import VerificationMode
    from .net import connect_socket

    errors: List[BaseException] = []
    barrier = threading.Barrier(sessions + 1)
    latencies: List[float] = []
    latencies_lock = threading.Lock()

    def run_session(index: int) -> None:
        try:
            adapter, channel = connect_socket("127.0.0.1", port, ring,
                                              timeout_s=600.0)
            try:
                rotated = tags[index % len(tags):] + tags[:index % len(tags)]
                barrier.wait()
                for tag in rotated:
                    lookup_start = time.perf_counter()
                    outcome = client.lookup(adapter, tag,
                                            verification=VerificationMode.NONE)
                    lookup_s = time.perf_counter() - lookup_start
                    with latencies_lock:
                        latencies.append(lookup_s)
                    if tuple(outcome.matches) != reference[tag]:
                        raise AssertionError(
                            f"session {index} answered {tag!r} differently")
            finally:
                channel.close()
        except BaseException as exc:  # noqa: BLE001 - reported to the caller
            errors.append(exc)
            barrier.abort()

    workers = [threading.Thread(target=run_session, args=(index,))
               for index in range(sessions)]
    for worker in workers:
        worker.start()
    try:
        barrier.wait()                  # line every session up, then time
    except threading.BrokenBarrierError:
        pass                            # a session failed; its error is kept
    start = time.perf_counter()
    for worker in workers:
        worker.join()
    elapsed = time.perf_counter() - start
    if errors:
        # Surface the root cause, not a secondary BrokenBarrierError a
        # sibling session saw because the first failure aborted the barrier.
        primary = [error for error in errors
                   if not isinstance(error, threading.BrokenBarrierError)]
        raise (primary or errors)[0]
    lookups = sessions * len(tags)
    row = {
        "sessions": sessions,
        "lookups": lookups,
        "elapsed_s": round(elapsed, 4),
        "lookups_per_s": round(lookups / elapsed, 3),
    }
    # Per-lookup latency distribution across every session: under
    # concurrency the p99 column is where queueing (threaded) vs
    # coalescing (async) actually shows up.
    row.update(_percentiles(latencies))
    return row


def run_concurrency_benchmarks(quick: bool = False,
                               session_counts: Optional[List[int]] = None,
                               element_count: Optional[int] = None,
                               lookups_per_session: int = 4) -> Dict[str, Any]:
    """BENCH_3: concurrent lookup throughput, sync threaded vs async coalesced.

    One large document (>10^5 nodes in the full run, so the SQLite
    backend's lazy share loading actually matters) is served over real TCP
    by both socket transports; N sessions each run the same selective-tag
    lookups.  The async server answers bit-identically (asserted here per
    lookup against the in-memory reference) but coalesces concurrent
    frontier rounds into single store passes, which is where its
    throughput advantage comes from.
    """
    from .core import VerificationMode, outsource_document
    from .net import (
        SearchServer,
        SQLiteShareStore,
        ThreadedSearchServer,
        start_async_server,
    )

    if session_counts is None:
        session_counts = [1, 4] if quick else [1, 4, 16, 64]
    if element_count is None:
        element_count = 4000 if quick else 120_000
    document = _concurrency_document(element_count)
    client, server_tree, _ = outsource_document(document, seed=b"bench-3")
    tags = _selective_tags(document, lookups_per_session)
    reference = {
        tag: tuple(client.lookup(server_tree, tag,
                                 verification=VerificationMode.NONE).matches)
        for tag in tags}

    results: Dict[str, Any] = {
        "document_elements": document.size(),
        "store_backend": "sqlite",
        "tags": tags,
        "lookups_per_session": len(tags),
        "identical_to_reference": True,   # every session asserts per lookup
        "session_counts": list(session_counts),
        "modes": {},
    }
    def threaded_transport(store):
        server = ThreadedSearchServer(SearchServer(store)).start()
        return server.address[1], server.stop, None

    def async_transport(store):
        handle = start_async_server(SearchServer(store))
        return handle.port, handle.stop, handle.server

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "bench3.db")
        SQLiteShareStore.from_tree(path, server_tree).close()
        for mode, transport in (("sync_threaded", threaded_transport),
                                ("async_coalesced", async_transport)):
            rows: Dict[str, Any] = {}
            for sessions in session_counts:
                # Fresh store connection per configuration so every run
                # starts from the same cold share cache, plus one
                # single-session warm-up pass before timing.
                store = SQLiteShareStore(path)
                port, stop, async_server = transport(store)
                try:
                    _concurrent_lookups(client, store.ring, port, 1, tags,
                                        reference)
                    row = _concurrent_lookups(client, store.ring, port,
                                              sessions, tags, reference)
                    if async_server is not None:
                        row["coalesced_batches"] = \
                            async_server.coalesced_batches
                        row["coalesced_requests"] = \
                            async_server.coalesced_requests
                        row["largest_batch"] = async_server.largest_batch
                    rows[str(sessions)] = row
                finally:
                    stop()
                    store.close()
            results["modes"][mode] = rows

        # Coalescing-tick-size sweep: the same async serving stack at the
        # largest session count, with the coalescer's drain bound varied.
        # tick=1 disables coalescing (one store pass per request), tick=0
        # drains everything queued; intermediate ticks trade per-request
        # latency (p99) against batch width.
        tick_sizes = [1, 4, 0] if quick else [1, 4, 16, 0]
        sweep_sessions = session_counts[-1]
        ticks: Dict[str, Any] = {}
        for tick in tick_sizes:
            store = SQLiteShareStore(path)
            handle = start_async_server(SearchServer(store), tick_size=tick)
            try:
                _concurrent_lookups(client, store.ring, handle.port, 1,
                                    tags, reference)
                row = _concurrent_lookups(client, store.ring, handle.port,
                                          sweep_sessions, tags, reference)
                row["coalesced_batches"] = handle.server.coalesced_batches
                row["coalesced_requests"] = handle.server.coalesced_requests
                row["largest_batch"] = handle.server.largest_batch
            finally:
                handle.stop()
                store.close()
            ticks[str(tick)] = row
        results["tick_sweep"] = {"sessions": sweep_sessions,
                                 "tick_sizes": list(tick_sizes),
                                 "ticks": ticks}

    results["speedup_by_sessions"] = {
        key: round(results["modes"]["async_coalesced"][key]["lookups_per_s"]
                   / results["modes"]["sync_threaded"][key]["lookups_per_s"], 2)
        for key in results["modes"]["sync_threaded"]}
    return {
        "snapshot": CONCURRENCY_SNAPSHOT_NAME,
        "description": "concurrent serving throughput: asyncio transport with "
                       "coalesced frontier rounds vs threaded sync transport, "
                       "SQLite backend, real TCP sessions",
        "config": {"quick": quick, "element_count": element_count,
                   "session_counts": list(session_counts),
                   "lookups_per_session": lookups_per_session,
                   "environment": _environment()},
        "concurrency": results,
    }


# ---------------------------------------------------------------------------
# Dynamic-update benchmark (BENCH_4): crash-safe batches + binary pages
# ---------------------------------------------------------------------------

def _update_subtree(size: int, tags: List[str], seed: int):
    """A deterministic random subtree of ``size`` nodes over known tags.

    Reuses tags already present in the document so the insertion never
    needs mapping headroom the benchmark ring does not have.
    """
    from .xmltree import XmlElement

    rng = random.Random(seed)
    root = XmlElement(tags[0])
    nodes = [root]
    for index in range(1, size):
        parent = nodes[rng.randrange(len(nodes))]
        nodes.append(parent.add(tags[(index * 7) % len(tags)]))
    return root


def bench_update_file_size(server_tree) -> Dict[str, Any]:
    """On-disk size of the same share tree: v1 JSON rows vs v2 binary pages."""
    from .net import SQLiteShareStore, write_v1_share_store

    with tempfile.TemporaryDirectory() as tmp:
        v1_bytes = write_v1_share_store(os.path.join(tmp, "v1.db"), server_tree)
        v2 = SQLiteShareStore.from_tree(os.path.join(tmp, "v2.db"), server_tree)
        v2_bytes = v2.file_bytes()
        v2.close()
    return {
        "nodes": server_tree.node_count(),
        "share_bits": server_tree.storage_bits(),
        "v1_json_rows_bytes": v1_bytes,
        "v2_binary_pages_bytes": v2_bytes,
        "shrink_factor": round(v1_bytes / v2_bytes, 2),
    }


def bench_update_latency(client, server_tree, subtree_sizes,
                         repeat: int = 3) -> Dict[str, Any]:
    """Insert/delete latency of crash-safe batches on the durable store.

    Each measurement inserts a fresh ``size``-node subtree under the root
    of a SQLite-backed document (one WAL-journaled batch), then deletes it
    again (another batch), keeping the document at its original size
    between rounds.  ``per_node_ms`` flat across sizes is the linearity
    check: the pre-fix editor recomputed the whole descendant product per
    node (O(n²)) and rescanned the id table per node, so its per-node cost
    grew with the subtree.
    """
    from .core import UpdatableTree
    from .net import SQLiteShareStore

    tags = sorted(client.mapping.tags())
    results: Dict[str, Any] = {"subtree_sizes": list(subtree_sizes), "sizes": {}}
    with tempfile.TemporaryDirectory() as tmp:
        store = SQLiteShareStore.from_tree(os.path.join(tmp, "updates.db"),
                                           server_tree)
        editor = UpdatableTree(client.ring, client.mapping,
                               client.share_generator, store)
        root_id = store.root_id
        for size in subtree_sizes:
            insert_best = delete_best = float("inf")
            for round_index in range(repeat):
                subtree = _update_subtree(size, tags, seed=size + round_index)
                start = time.perf_counter()
                report = editor.insert_subtree(root_id, subtree)
                insert_best = min(insert_best, time.perf_counter() - start)
                assert len(report.new_node_ids) == size
                start = time.perf_counter()
                removed = editor.delete_subtree(report.new_node_ids[0])
                delete_best = min(delete_best, time.perf_counter() - start)
                assert len(removed.removed_node_ids) == size
            results["sizes"][str(size)] = {
                "insert_ms": round(insert_best * 1000, 3),
                "insert_per_node_ms": round(insert_best * 1000 / size, 4),
                "delete_ms": round(delete_best * 1000, 3),
                "delete_per_node_ms": round(delete_best * 1000 / size, 4),
            }
        store.close()
    rows = [results["sizes"][str(size)]["insert_per_node_ms"]
            for size in subtree_sizes]
    # Per-node cost of the largest vs the smallest subtree: ~1 means the
    # insert scales linearly in the subtree size (the quadratic editor
    # scaled this with the subtree size itself).
    results["insert_linearity_ratio"] = round(rows[-1] / rows[0], 2)
    return results


def bench_update_evaluate_many(server_tree, batch: int = 512) -> Dict[str, Any]:
    """Batched SQLite ``evaluate_many`` vs the generic per-node fallback."""
    from .net import ShareStore, SQLiteShareStore

    node_ids = server_tree.node_ids()[:batch]
    point = 3
    with tempfile.TemporaryDirectory() as tmp:
        store = SQLiteShareStore.from_tree(os.path.join(tmp, "eval.db"),
                                           server_tree, cache_size=0)
        batched = _ops_per_sec(lambda: store.evaluate_many(node_ids, point),
                               min_time=0.05)
        per_node = _ops_per_sec(
            lambda: ShareStore.evaluate_many(store, node_ids, point),
            min_time=0.05)
        assert (store.evaluate_many(node_ids, point)
                == ShareStore.evaluate_many(store, node_ids, point))
        store.close()
    return {
        "batch_nodes": len(node_ids),
        "batched_passes_per_sec": round(batched, 2),
        "per_node_passes_per_sec": round(per_node, 2),
        "speedup": round(batched / per_node, 2),
    }


def bench_update_wal_overhead(client, server_tree, subtree_size: int = 64,
                              repeat: int = 3) -> Dict[str, Any]:
    """Per-operation cost of WAL-journaled durability vs the in-memory store.

    The same insert+delete pair (one ``subtree_size``-node subtree under
    the root, then its removal) runs through the identical update planner
    against the durable SQLite backend — where every batch is journaled to
    the write-ahead log and flushed to coefficient pages — and against
    :class:`~repro.net.store.InMemoryShareStore`, which applies the batch
    with no durability work at all.  The gap is the price of crash safety
    per editing operation.
    """
    from .core import UpdatableTree
    from .net import InMemoryShareStore, SQLiteShareStore

    tags = sorted(client.mapping.tags())

    def best_pair(editor, root_id) -> Dict[str, float]:
        insert_best = delete_best = float("inf")
        for round_index in range(repeat):
            subtree = _update_subtree(subtree_size, tags,
                                      seed=900 + round_index)
            start = time.perf_counter()
            report = editor.insert_subtree(root_id, subtree)
            insert_best = min(insert_best, time.perf_counter() - start)
            assert len(report.new_node_ids) == subtree_size
            start = time.perf_counter()
            editor.delete_subtree(report.new_node_ids[0])
            delete_best = min(delete_best, time.perf_counter() - start)
        per_op_s = (insert_best + delete_best) / 2.0
        return {
            "insert_ms": round(insert_best * 1000, 3),
            "delete_ms": round(delete_best * 1000, 3),
            "per_op_ms": round(per_op_s * 1000, 3),
            "per_node_ms": round(per_op_s * 1000 / subtree_size, 4),
        }

    backends: Dict[str, Any] = {}
    with tempfile.TemporaryDirectory() as tmp:
        store = SQLiteShareStore.from_tree(os.path.join(tmp, "wal.db"),
                                           server_tree)
        editor = UpdatableTree(client.ring, client.mapping,
                               client.share_generator, store)
        backends["sqlite_wal"] = best_pair(editor, store.root_id)
        store.close()
    memory = InMemoryShareStore(server_tree)
    editor = UpdatableTree(client.ring, client.mapping,
                           client.share_generator, memory)
    backends["in_memory"] = best_pair(editor, memory.root_id)
    wal_ms = backends["sqlite_wal"]["per_op_ms"]
    memory_ms = backends["in_memory"]["per_op_ms"]
    return {
        "subtree_nodes": subtree_size,
        "repeat": repeat,
        "backends": backends,
        "wal_overhead_per_op_ms": round(wal_ms - memory_ms, 3),
        "wal_overhead_ratio": round(wal_ms / memory_ms, 2),
    }


def run_update_benchmarks(quick: bool = False) -> Dict[str, Any]:
    """BENCH_4: durable dynamic updates — latency, crash-safety cost, size.

    One large skewed document (the BENCH_3 workload shape) is outsourced
    once; the same share tree is then written as a legacy v1 store (JSON
    coefficient rows) and a v2 store (binary coefficient pages) for the
    size comparison, and edited through WAL-journaled batches for the
    latency numbers.
    """
    from .core import outsource_document

    element_count = 4000 if quick else 120_000
    subtree_sizes = [8, 32, 128] if quick else [8, 32, 128, 512]
    document = _concurrency_document(element_count)
    client, server_tree, _ = outsource_document(document, seed=b"bench-4")
    return {
        "snapshot": UPDATES_SNAPSHOT_NAME,
        "description": "crash-safe dynamic updates on the durable store: "
                       "WAL-journaled batch latency, binary coefficient "
                       "pages vs JSON rows, batched store evaluation",
        "config": {"quick": quick, "element_count": element_count,
                   "subtree_sizes": list(subtree_sizes),
                   "environment": _environment()},
        "file_size": bench_update_file_size(server_tree),
        "update_latency": bench_update_latency(client, server_tree,
                                               subtree_sizes),
        "evaluate_many": bench_update_evaluate_many(server_tree),
        # Last: the in-memory leg edits server_tree in place (net-zero
        # structurally, but ancestor shares are re-randomised).
        "wal_overhead": bench_update_wal_overhead(
            client, server_tree, subtree_size=32 if quick else 128,
            repeat=2 if quick else 3),
    }


# ---------------------------------------------------------------------------
# Fault-tolerance benchmark (BENCH_5): availability and latency under faults
# ---------------------------------------------------------------------------

def _fault_plans(rate: float, seed: int):
    """Deterministic (channel, store) fault plans for one sweep point.

    The headline ``rate`` is split across the four injected failure
    classes — connection reset (before and after send), truncated
    response frame, in-band busy shedding — on the channel side, plus
    transient store failures on the server side, so every recovery path
    of the resilient stack is exercised in one sweep.
    """
    from .net import FaultPlan, FaultRule

    if rate <= 0.0:
        return FaultPlan(seed=seed), FaultPlan(seed=seed + 1)
    per_kind = rate / 4.0
    channel_plan = FaultPlan([
        FaultRule("*:send", "reset-before-send", rate=per_kind),
        FaultRule("*:send", "busy", rate=per_kind),
        FaultRule("*:recv", "reset-after-send", rate=per_kind),
        FaultRule("*:recv", "truncate-response", rate=per_kind),
    ], seed=seed)
    store_plan = FaultPlan([
        FaultRule("store:evaluate_many", "store-error", rate=per_kind),
    ], seed=seed + 1)
    return channel_plan, store_plan


def run_fault_benchmarks(quick: bool = False,
                         rates: Optional[List[float]] = None,
                         seed: int = 0) -> Dict[str, Any]:
    """BENCH_5: lookup availability and latency percentiles vs fault rate.

    The figure-1 workload runs over a real TCP session against the
    threaded server while a seeded fault plan resets connections,
    truncates response frames, sheds requests and fails store passes at
    the swept rate.  The client is the resilient stack with its real
    (bounded, jittered) backoff, so the latency columns price recovery
    honestly; every completed lookup is asserted bit-identical to the
    fault-free reference, and availability counts the lookups that
    completed within the retry policy's attempts/deadline bounds.
    """
    from .core import VerificationMode, outsource_document
    from .errors import ReproError
    from .net import (
        FaultyChannel,
        FaultyStore,
        InMemoryShareStore,
        SearchServer,
        SocketChannel,
        ThreadedSearchServer,
        connect_resilient,
    )
    from .net.retry import RetryPolicy
    from .workloads import figure1_document

    if rates is None:
        rates = [0.0, 0.05] if quick else [0.0, 0.02, 0.05, 0.10]
    repeats = 4 if quick else 12
    tags = ["client", "name", "customers"]
    document = figure1_document(clients=6)
    client, server_tree, _ = outsource_document(document, seed=b"bench-5")
    reference = {
        tag: tuple(client.lookup(server_tree, tag,
                                 verification=VerificationMode.NONE).matches)
        for tag in tags}

    rows: Dict[str, Any] = {}
    for rate in rates:
        channel_plan, store_plan = _fault_plans(rate, seed)
        store = FaultyStore(InMemoryShareStore(server_tree), store_plan)
        server = ThreadedSearchServer(SearchServer(store)).start()
        try:
            host, port = server.address

            def factory(host=host, port=port, plan=channel_plan):
                return FaultyChannel(SocketChannel(host, port), plan)

            def fresh_session():
                policy = RetryPolicy(max_attempts=10, deadline_s=30.0,
                                     base_backoff_s=0.002,
                                     max_backoff_s=0.05, seed=seed)
                return connect_resilient(factory, server_tree.ring,
                                         policy=policy)

            adapter, channel = fresh_session()
            latencies: List[float] = []
            completed = failed = 0
            physical = {"retries": 0, "reconnects": 0, "busy_waits": 0}

            def absorb(resilient) -> None:
                physical["retries"] += resilient.retries
                physical["reconnects"] += resilient.reconnects
                physical["busy_waits"] += resilient.busy_waits

            for _ in range(repeats):
                for tag in tags:
                    lookup_start = time.perf_counter()
                    try:
                        outcome = client.lookup(
                            adapter, tag,
                            verification=VerificationMode.NONE)
                    except ReproError:
                        # Retry-exhausted mid-descent: the lookup is lost.
                        # Count it against availability and open a fresh
                        # session for the next one.
                        failed += 1
                        absorb(channel)
                        channel.close()
                        adapter, channel = fresh_session()
                        continue
                    latencies.append(time.perf_counter() - lookup_start)
                    assert tuple(outcome.matches) == reference[tag], tag
                    completed += 1
            absorb(channel)
            channel.close()
        finally:
            server.stop()
        row: Dict[str, Any] = {
            "lookups": completed + failed,
            "completed": completed,
            "availability": round(completed / (completed + failed), 4),
            "faults_injected": len(channel_plan.fires) + len(store_plan.fires),
            "identical_to_reference": True,  # asserted per completed lookup
        }
        row.update(physical)
        if latencies:
            row.update(_percentiles(latencies))
        rows[f"{rate:.2f}"] = row
    assert rows[f"{rates[0]:.2f}"]["availability"] == 1.0 or rates[0] > 0.0
    return {
        "snapshot": FAULTS_SNAPSHOT_NAME,
        "description": "fault-tolerant serving: lookup availability and "
                       "latency percentiles vs injected fault rate "
                       "(connection resets, truncated frames, busy "
                       "shedding, store failures) over the resilient "
                       "retry/reconnect/replay client",
        "config": {"quick": quick, "rates": [f"{rate:.2f}" for rate in rates],
                   "repeats": repeats, "tags": tags, "seed": seed,
                   "document_elements": document.size(),
                   "environment": _environment()},
        "faults": rows,
    }


# ---------------------------------------------------------------------------
# Vectorized-kernel benchmark (BENCH_6): array tier vs flat tier vs generic
# ---------------------------------------------------------------------------

#: Tier order: fastest dispatch first; "flat" is the BENCH_1–5 kernel path
#: (and the BENCH_4 batched-store path), "generic" the paper-reference one.
_KERNEL_TIERS = ("vectorized", "flat", "generic")


def _tier_context(tier: str):
    """Context manager pinning kernel dispatch to one tier."""
    import contextlib

    from .algebra import use_vector_kernels

    stack = contextlib.ExitStack()
    if tier == "generic":
        stack.enter_context(use_kernels(False))
    elif tier == "flat":
        stack.enter_context(use_kernels(True))
        stack.enter_context(use_vector_kernels(False))
    elif tier == "vectorized":
        stack.enter_context(use_kernels(True))
        stack.enter_context(use_vector_kernels(True))
    else:  # pragma: no cover - guarded by _KERNEL_TIERS
        raise ValueError(f"unknown kernel tier {tier!r}")
    return stack


def bench_kernel_poly_mul(degrees=(64, 128, 256), p: int = _BENCH_PRIME,
                          min_time: float = 0.10,
                          repeat: int = 3) -> Dict[str, Any]:
    """Dense ``F_p`` multiplication throughput per kernel tier."""
    field = PrimeField(p)
    rng = random.Random(0xBE7C)
    results: Dict[str, Any] = {"p": p, "degrees": {}}
    for degree in degrees:
        a = Polynomial([rng.randrange(p) for _ in range(degree)] + [1], field)
        b = Polynomial([rng.randrange(p) for _ in range(degree)] + [1], field)
        rates: Dict[str, float] = {}
        products = {}
        for tier in _KERNEL_TIERS:
            with _tier_context(tier):
                products[tier] = (a * b).coeffs
                rates[tier] = _ops_per_sec(lambda: a * b, min_time, repeat)
        assert products["vectorized"] == products["flat"] == products["generic"]
        results["degrees"][str(degree)] = {
            **{f"{tier}_ops_per_sec": round(rates[tier], 2)
               for tier in _KERNEL_TIERS},
            "speedup_vs_flat": round(rates["vectorized"] / rates["flat"], 2),
            "speedup_vs_generic": round(
                rates["vectorized"] / rates["generic"], 2),
        }
    return results


def bench_kernel_evaluate_many(server_tree,
                               batches=(512, 4096)) -> Dict[str, Any]:
    """Cold-cache SQLite ``evaluate_many`` passes/s per kernel tier.

    This is the satellite row-path microbenchmark in both directions: the
    "flat" tier is the before (head+overflow blobs decoded limb-by-limb
    into Python coefficient lists, evaluated via the shared power table —
    the BENCH_4 batched path), "vectorized" the after (one grouped array
    decode feeding one matrix evaluation, no per-coefficient Python ints).
    ``cache_size=0`` keeps every pass cold so the decode path is what is
    measured; bit-identity across tiers is asserted per batch.
    """
    from .net import SQLiteShareStore

    point = 3
    results: Dict[str, Any] = {"batches": {}}
    with tempfile.TemporaryDirectory() as tmp:
        store = SQLiteShareStore.from_tree(os.path.join(tmp, "eval.db"),
                                           server_tree, cache_size=0)
        all_ids = store.node_ids()
        for batch in batches:
            node_ids = all_ids[:batch]
            rates: Dict[str, float] = {}
            answers = {}
            for tier in _KERNEL_TIERS:
                with _tier_context(tier):
                    answers[tier] = store.evaluate_many(node_ids, point)
                    rates[tier] = _ops_per_sec(
                        lambda: store.evaluate_many(node_ids, point),
                        min_time=0.05)
            assert (answers["vectorized"] == answers["flat"]
                    == answers["generic"])
            results["batches"][str(batch)] = {
                "batch_nodes": len(node_ids),
                **{f"{tier}_passes_per_sec": round(rates[tier], 2)
                   for tier in _KERNEL_TIERS},
                "speedup_vs_flat": round(
                    rates["vectorized"] / rates["flat"], 2),
                "speedup_vs_generic": round(
                    rates["vectorized"] / rates["generic"], 2),
                "bit_identical": True,
            }
        store.close()
    return results


def bench_kernel_lookups(client, server_tree, tags: List[str],
                         repeat: int = 3) -> Dict[str, Any]:
    """End-to-end lookups/s per kernel tier over the in-process v2 transport.

    Each tier gets its own cold SQLite-backed server (so the share LRU of
    one tier never subsidises another), but every store is built — and
    every tier warmed with one untimed pass — *before* any timing starts,
    and the timed rounds interleave the tiers.  Measuring a tier right
    after its own ``from_tree`` bulk write would charge that tier for
    page-cache churn the others never see; interleaving spreads drift
    evenly so the best-of-``repeat`` ratios are stable.  Matches are
    asserted identical across tiers.
    """
    from .core import VerificationMode
    from .net import SQLiteShareStore, SearchServer, connect

    results: Dict[str, Any] = {"tiers": {}, "tags": list(tags)}
    rates: Dict[str, float] = {}
    reference = None
    with tempfile.TemporaryDirectory() as tmp:
        stores = {}
        engines = {}
        try:
            for tier in _KERNEL_TIERS:
                stores[tier] = SQLiteShareStore.from_tree(
                    os.path.join(tmp, f"{tier}.db"), server_tree,
                    cache_size=0)
                adapter, _ = connect(SearchServer(stores[tier]))
                engines[tier] = client.engine(adapter, VerificationMode.NONE)
                engines[tier].frontier_lookahead = 2

            def run_all(tier):
                engine = engines[tier]
                return [tuple(engine.lookup(tag).matches) for tag in tags]

            for tier in _KERNEL_TIERS:
                with _tier_context(tier):
                    answers = run_all(tier)
                if reference is None:
                    reference = answers
                else:
                    assert answers == reference, \
                        f"tier {tier} answered differently"
            best = {tier: float("inf") for tier in _KERNEL_TIERS}
            for _ in range(repeat):
                for tier in _KERNEL_TIERS:
                    with _tier_context(tier):
                        start = time.perf_counter()
                        run_all(tier)
                        elapsed = time.perf_counter() - start
                    best[tier] = min(best[tier], elapsed)
        finally:
            for store in stores.values():
                store.close()
        for tier in _KERNEL_TIERS:
            rates[tier] = len(tags) / best[tier]
            results["tiers"][tier] = {
                "lookups_per_s": round(rates[tier], 2)}
    results["speedup_vs_flat"] = round(
        rates["vectorized"] / rates["flat"], 2)
    results["speedup_vs_generic"] = round(
        rates["vectorized"] / rates["generic"], 2)
    return results


def bench_adaptive_lookahead(client, server_tree,
                             tags: List[str]) -> Dict[str, Any]:
    """Round trips per descent policy: fixed lookahead depths vs adaptive.

    The workload and answers are deterministic, so the round-trip counts
    are host-independent; the adaptive row also records the controller's
    trajectory (rounds observed, deepen/back-off steps, final depth).
    """
    from .core import AdaptiveLookahead, VerificationMode
    from .net import SearchServer, connect

    policies = [("fixed-0", 0), ("fixed-1", 1), ("fixed-2", 2),
                ("fixed-4", 4), ("adaptive", None)]
    results: Dict[str, Any] = {"policies": {}}
    reference = None
    for name, depth in policies:
        controller = AdaptiveLookahead() if depth is None else None
        adapter, channel = connect(SearchServer(server_tree))
        engine = client.engine(adapter, VerificationMode.NONE)
        engine.frontier_lookahead = controller if depth is None else depth
        round_trips = 0
        evaluations = 0
        answers = []
        for tag in tags:
            outcome = engine.lookup(tag)
            answers.append(tuple(outcome.matches))
            round_trips += outcome.stats.round_trips
            evaluations += outcome.stats.evaluations
        if reference is None:
            reference = answers
        else:
            assert answers == reference, f"policy {name} answered differently"
        row = {"round_trips": round_trips,
               "server_evaluations": evaluations,
               "total_bytes": channel.stats.total_bytes}
        if controller is not None:
            row["controller"] = {"final_depth": controller.depth,
                                 "rounds": controller.rounds,
                                 "deepened": controller.deepened,
                                 "backed_off": controller.backed_off}
        results["policies"][name] = row
    return results


def run_kernel_benchmarks(quick: bool = False) -> Dict[str, Any]:
    """BENCH_6: vectorized kernel tier + zero-copy pages vs flat vs generic.

    One large skewed document (the BENCH_3/BENCH_4 workload shape) is
    outsourced once.  The store batch numbers are directly comparable to
    BENCH_4's ``evaluate_many`` (same shape, same ``cache_size=0``): its
    batched path is exactly this snapshot's "flat" tier.  Without numpy
    the vectorized tier silently falls back to flat — the environment
    stamp (``config.environment.numpy``) records which one was measured.
    """
    element_count = 4000 if quick else 120_000
    degrees = (64, 128) if quick else (64, 128, 256)
    batches = (256,) if quick else (512, 4096)
    document = _concurrency_document(element_count)
    client, server_tree, _ = outsource_document(document, seed=b"bench-6")
    tags = _selective_tags(document, 4 if quick else 6)
    return {
        "snapshot": KERNELS_SNAPSHOT_NAME,
        "description": "native-width vectorized kernels + zero-copy "
                       "coefficient pages: array tier vs flat kernels vs "
                       "generic reference, adaptive speculation depth",
        "config": {"quick": quick, "element_count": element_count,
                   "ring": server_tree.ring.name,
                   "degrees": list(degrees), "batches": list(batches),
                   "tags": list(tags),
                   "environment": _environment()},
        "poly_mul": bench_kernel_poly_mul(degrees),
        "evaluate_many": bench_kernel_evaluate_many(server_tree, batches),
        "end_to_end": bench_kernel_lookups(client, server_tree, tags),
        "adaptive_lookahead": bench_adaptive_lookahead(client, server_tree,
                                                       tags),
    }


# ---------------------------------------------------------------------------
# Control-plane benchmark (BENCH_7): observability + admission overhead
# ---------------------------------------------------------------------------

def _ops_async_round(client, ring, path: str, sessions: int,
                     tags: List[str], reference: Dict[str, tuple],
                     tick_size: int = 0,
                     configure=None) -> Dict[str, Any]:
    """One timed async-serving round on a fresh SQLite store connection.

    Boots the coalescing transport over a cold store, runs one warm-up
    session and then the timed ``sessions``-way round (every lookup
    asserted bit-identical to the in-memory reference), and folds the
    serving stack's own accounting into the row — including the proof
    that admitted == completed + shed + failed with nothing in flight.
    """
    from .net import SearchServer, SQLiteShareStore, start_async_server

    store = SQLiteShareStore(path)
    server = SearchServer(store)
    if configure is not None:
        configure(server)
    handle = start_async_server(server, tick_size=tick_size)
    try:
        _concurrent_lookups(client, ring, handle.port, 1, tags, reference)
        row = _concurrent_lookups(client, ring, handle.port, sessions,
                                  tags, reference)
        accounting = server.accounting()
        row["accounting"] = accounting
        row["accounting_reconciles"] = (
            accounting["admitted"] == (accounting["completed"]
                                       + accounting["shed"]
                                       + accounting["failed"])
            and accounting["inflight"] == 0)
        row["coalesced_batches"] = handle.server.coalesced_batches
        row["coalesced_requests"] = handle.server.coalesced_requests
        row["largest_batch"] = handle.server.largest_batch
    finally:
        handle.stop()
        store.close()
    return row


def bench_ops_quota_overhead(client, ring, path: str, tags: List[str],
                             reference: Dict[str, tuple], sessions: int = 4,
                             repeat: int = 3) -> Dict[str, Any]:
    """Admission-control overhead: the same workload with quotas off vs on.

    The quota'd runs configure a deliberately generous token bucket plus a
    shared overflow pool (nothing is ever shed — asserted from the
    accounting), so the measured gap is purely the control plane's
    bookkeeping on the hot path.  The regression statistic is *paired*:
    each round runs both arms back to back and contributes one
    quota/baseline p50 ratio, and the reported regression is the median
    ratio — round-level drift (cache state, thermal, background load)
    hits both halves of a pair equally, and the median discards the odd
    round where the scheduler hiccuped under exactly one arm.
    """
    from .net.engine import DEFAULT_DOCUMENT

    def with_quota(server) -> None:
        server.registry.configure_quota(DEFAULT_DOCUMENT, 1e9, burst=1e9)
        server.registry.configure_shared_pool(1e9, burst=1e9)

    # Each round repeats the tag set so the per-round p50 rests on enough
    # samples to be stable against scheduler jitter.
    workload = list(tags) * 4
    baseline_p50 = quota_p50 = float("inf")
    ratios: List[float] = []
    quota_shed = 0
    for _ in range(repeat):
        row = _ops_async_round(client, ring, path, sessions, workload,
                               reference)
        assert row["accounting_reconciles"]
        round_baseline = row["p50_ms"]
        baseline_p50 = min(baseline_p50, round_baseline)
        row = _ops_async_round(client, ring, path, sessions, workload,
                               reference, configure=with_quota)
        assert row["accounting_reconciles"]
        quota_p50 = min(quota_p50, row["p50_ms"])
        quota_shed += row["accounting"]["shed"]
        ratios.append(row["p50_ms"] / round_baseline)
    ratios.sort()
    mid = len(ratios) // 2
    if len(ratios) % 2:
        regression = ratios[mid]
    else:
        regression = (ratios[mid - 1] + ratios[mid]) / 2.0
    return {
        "sessions": sessions,
        "repeat": repeat,
        "baseline_p50_ms": baseline_p50,
        "quota_p50_ms": quota_p50,
        "quota_shed": quota_shed,
        "paired_ratios": [round(ratio, 4) for ratio in ratios],
        "p50_regression": round(regression, 4),
        "within_budget": bool(regression < 1.03),
    }


def run_ops_benchmarks(quick: bool = False,
                       session_counts: Optional[List[int]] = None,
                       tick_sizes: Optional[List[int]] = None) -> Dict[str, Any]:
    """BENCH_7: the serving control plane under load.

    Four sections, all over the async coalescing transport on the durable
    SQLite backend with every lookup asserted bit-identical to the
    in-memory reference:

    * per-session lookup latency percentiles (p50/p95/p99) at several
      concurrency levels, with the serving stack's own accounting
      reconciliation (admitted == completed + shed + failed) in each row;
    * a coalescing-tick-size sweep at the highest concurrency;
    * quota-enforcement overhead — the identical workload with per-tenant
      admission off vs on (generous buckets, zero shed), budgeted at a
      <3% p50 regression;
    * the WAL-durability overhead per editing operation vs the in-memory
      store (the ops-facing cost of crash safety).
    """
    from .core import VerificationMode, outsource_document
    from .net import SQLiteShareStore

    if session_counts is None:
        session_counts = [1, 2, 4] if quick else [1, 4, 16]
    if tick_sizes is None:
        tick_sizes = [1, 4, 0] if quick else [1, 4, 16, 0]
    element_count = 1500 if quick else 20_000
    lookups_per_session = 3 if quick else 4
    document = _concurrency_document(element_count, seed=11)
    client, server_tree, _ = outsource_document(document, seed=b"bench-7")
    tags = _selective_tags(document, lookups_per_session)
    reference = {
        tag: tuple(client.lookup(server_tree, tag,
                                 verification=VerificationMode.NONE).matches)
        for tag in tags}

    latency_rows: Dict[str, Any] = {}
    ticks: Dict[str, Any] = {}
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "bench7.db")
        SQLiteShareStore.from_tree(path, server_tree).close()
        ring = server_tree.ring
        for sessions in session_counts:
            latency_rows[str(sessions)] = _ops_async_round(
                client, ring, path, sessions, tags, reference)
        sweep_sessions = session_counts[-1]
        for tick in tick_sizes:
            ticks[str(tick)] = _ops_async_round(
                client, ring, path, sweep_sessions, tags, reference,
                tick_size=tick)
        quota = bench_ops_quota_overhead(
            client, ring, path, tags, reference,
            sessions=max(2, session_counts[len(session_counts) // 2]),
            repeat=4 if quick else 5)
    # Last: the in-memory leg edits server_tree in place.
    wal = bench_update_wal_overhead(client, server_tree,
                                    subtree_size=32 if quick else 64,
                                    repeat=2 if quick else 3)
    return {
        "snapshot": OPS_SNAPSHOT_NAME,
        "description": "serving control plane: per-session latency "
                       "percentiles under concurrency, coalescing tick-size "
                       "sweep, per-tenant quota enforcement overhead, WAL "
                       "durability overhead per editing operation",
        "config": {"quick": quick, "element_count": element_count,
                   "session_counts": list(session_counts),
                   "tick_sizes": list(tick_sizes),
                   "lookups_per_session": lookups_per_session,
                   "tags": list(tags),
                   "identical_to_reference": True,
                   "environment": _environment()},
        "latency_by_sessions": latency_rows,
        "tick_sweep": {"sessions": session_counts[-1],
                       "tick_sizes": list(tick_sizes), "ticks": ticks},
        "quota_overhead": quota,
        "wal_overhead": wal,
    }


def format_ops_summary(results: Dict[str, Any]) -> str:
    """Human-readable one-screen summary of a BENCH_7 snapshot."""
    lines = [f"snapshot {results['snapshot']} "
             f"({results['config']['element_count']} elements, "
             f"{results['config']['lookups_per_session']} lookups/session, "
             "async coalesced transport)"]
    for sessions, row in sorted(results["latency_by_sessions"].items(),
                                key=lambda kv: int(kv[0])):
        ok = "ok" if row["accounting_reconciles"] else "MISMATCH"
        lines.append(
            f"  {sessions:>3} session(s): p50 {row['p50_ms']:7.2f} ms  "
            f"p95 {row['p95_ms']:7.2f} ms  p99 {row['p99_ms']:7.2f} ms  "
            f"({row['lookups_per_s']:.1f} lookups/s, accounting {ok})")
    sweep = results["tick_sweep"]
    for tick, row in sorted(sweep["ticks"].items(), key=lambda kv: int(kv[0])):
        label = "unbounded" if tick == "0" else tick
        lines.append(
            f"  tick {label:>9} @ {sweep['sessions']} sessions: "
            f"p99 {row['p99_ms']:7.2f} ms  "
            f"largest batch {row['largest_batch']}")
    quota = results["quota_overhead"]
    verdict = "within" if quota["within_budget"] else "OVER"
    lines.append(
        f"  quota overhead: p50 {quota['baseline_p50_ms']:.2f} -> "
        f"{quota['quota_p50_ms']:.2f} ms "
        f"(x{quota['p50_regression']}, {verdict} 3% budget, "
        f"{quota['quota_shed']} shed)")
    wal = results["wal_overhead"]
    lines.append(
        f"  WAL durability: {wal['backends']['sqlite_wal']['per_op_ms']:.2f} "
        f"ms/op vs {wal['backends']['in_memory']['per_op_ms']:.2f} ms/op "
        f"in-memory (x{wal['wal_overhead_ratio']})")
    return "\n".join(lines)


def format_kernel_summary(results: Dict[str, Any]) -> str:
    """Human-readable one-screen summary of a BENCH_6 snapshot."""
    env = results["config"]["environment"]
    lines = [f"snapshot {results['snapshot']} "
             f"({results['config']['element_count']} elements, "
             f"numpy {env['numpy'] or 'absent'})"]
    for degree, row in sorted(results["poly_mul"]["degrees"].items(),
                              key=lambda item: int(item[0])):
        lines.append(
            f"  poly mul deg {degree:>4}: vectorized "
            f"{row['vectorized_ops_per_sec']:>12.0f} ops/s  "
            f"(flat x{row['speedup_vs_flat']}, "
            f"generic x{row['speedup_vs_generic']})")
    for batch, row in sorted(results["evaluate_many"]["batches"].items(),
                             key=lambda item: int(item[0])):
        lines.append(
            f"  evaluate_many({batch:>5}): vectorized "
            f"{row['vectorized_passes_per_sec']:>8.2f} passes/s  "
            f"(flat x{row['speedup_vs_flat']}, "
            f"generic x{row['speedup_vs_generic']})")
    e2e = results["end_to_end"]
    for tier in _KERNEL_TIERS:
        lines.append(f"  end-to-end {tier:>10}: "
                     f"{e2e['tiers'][tier]['lookups_per_s']:>8.2f} lookups/s")
    lines.append(f"  end-to-end speedup: x{e2e['speedup_vs_flat']} vs flat, "
                 f"x{e2e['speedup_vs_generic']} vs generic")
    adaptive = results["adaptive_lookahead"]["policies"]
    parts = [f"{name} {row['round_trips']} rt" for name, row in
             sorted(adaptive.items())]
    lines.append("  descent round trips: " + ", ".join(parts))
    return "\n".join(lines)


def format_fault_summary(results: Dict[str, Any]) -> str:
    """Human-readable one-screen summary of a BENCH_5 snapshot."""
    lines = [f"snapshot {results['snapshot']} "
             f"({results['config']['document_elements']} elements, "
             f"{results['config']['repeats']}x{len(results['config']['tags'])} "
             "lookups per rate)"]
    for rate, row in sorted(results["faults"].items()):
        lines.append(
            f"  fault rate {rate}: availability {row['availability']:.2%}  "
            f"p50 {row.get('p50_ms', float('nan')):7.2f} ms  "
            f"p95 {row.get('p95_ms', float('nan')):7.2f} ms  "
            f"p99 {row.get('p99_ms', float('nan')):7.2f} ms  "
            f"({row['faults_injected']} faults, {row['retries']} retries, "
            f"{row['reconnects']} reconnects)")
    return "\n".join(lines)


def format_update_summary(results: Dict[str, Any]) -> str:
    """Human-readable one-screen summary of a BENCH_4 snapshot."""
    size = results["file_size"]
    lines = [f"snapshot {results['snapshot']} ({size['nodes']} nodes)",
             f"  store file: v1 JSON rows {size['v1_json_rows_bytes']} B, "
             f"v2 binary pages {size['v2_binary_pages_bytes']} B "
             f"({size['shrink_factor']}x smaller)"]
    latency = results["update_latency"]
    for key, row in sorted(latency["sizes"].items(), key=lambda kv: int(kv[0])):
        lines.append(
            f"  insert {key:>4}-node subtree: {row['insert_ms']:8.2f} ms "
            f"({row['insert_per_node_ms']:.3f} ms/node)   delete "
            f"{row['delete_ms']:8.2f} ms")
    lines.append(f"  insert linearity ratio (per-node, largest/smallest): "
                 f"x{latency['insert_linearity_ratio']}")
    many = results["evaluate_many"]
    lines.append(
        f"  evaluate_many({many['batch_nodes']} nodes): batched "
        f"{many['batched_passes_per_sec']:.1f}/s vs per-node "
        f"{many['per_node_passes_per_sec']:.1f}/s (x{many['speedup']})")
    wal = results.get("wal_overhead")
    if wal:
        lines.append(
            f"  WAL overhead ({wal['subtree_nodes']}-node ops): "
            f"{wal['backends']['sqlite_wal']['per_op_ms']:.2f} ms/op durable "
            f"vs {wal['backends']['in_memory']['per_op_ms']:.2f} ms/op "
            f"in-memory (x{wal['wal_overhead_ratio']})")
    return "\n".join(lines)


def format_concurrency_summary(results: Dict[str, Any]) -> str:
    """Human-readable one-screen summary of a BENCH_3 snapshot."""
    concurrency = results["concurrency"]
    lines = [f"snapshot {results['snapshot']} "
             f"({concurrency['document_elements']} elements, "
             f"{concurrency['store_backend']} backend)"]
    sync_rows = concurrency["modes"]["sync_threaded"]
    async_rows = concurrency["modes"]["async_coalesced"]
    for key in sync_rows:
        async_row = async_rows[key]
        lines.append(
            f"  {key:>3} sessions: sync "
            f"{sync_rows[key]['lookups_per_s']:8.2f} lookups/s   async "
            f"{async_row['lookups_per_s']:8.2f} lookups/s   "
            f"x{concurrency['speedup_by_sessions'][key]} "
            f"(largest batch {async_row['largest_batch']})")
    sweep = concurrency.get("tick_sweep")
    if sweep:
        for tick, row in sorted(sweep["ticks"].items(),
                                key=lambda kv: int(kv[0])):
            label = "unbounded" if tick == "0" else tick
            lines.append(
                f"  tick {label:>9} @ {sweep['sessions']} sessions: "
                f"p99 {row['p99_ms']:7.2f} ms  "
                f"largest batch {row['largest_batch']}")
    return "\n".join(lines)


def format_serving_summary(results: Dict[str, Any]) -> str:
    """Human-readable one-screen summary of a serving snapshot."""
    lines = [f"snapshot {results['snapshot']}"]
    protocol = results["protocol"]
    for query, row in protocol["queries"].items():
        lines.append(
            f"  {query:26s} v1: {row['v1']['round_trips']:3d} rt "
            f"{row['v1']['total_bytes']:6d} B   v2: {row['v2']['round_trips']:3d} rt "
            f"{row['v2']['total_bytes']:6d} B   x{row['round_trip_reduction']}")
    lines.append(f"  round-trip reduction (aggregate): "
                 f"x{protocol['round_trip_reduction']} "
                 f"(x{protocol['round_trip_reduction_lookahead2']} with lookahead 2)")
    backends = results["backends"]
    lines.append(
        f"  backends identical: {backends['identical_results']} "
        f"(sqlite file {backends['sqlite_file_bytes']} B, "
        f"{backends['sqlite_shares_resident_after_queries']} shares resident)")
    concurrency = results["concurrency"]
    lines.append(
        f"  concurrency: {concurrency['threads']} threads x "
        f"{concurrency['lookups_per_thread']} lookups on "
        f"{len(concurrency['documents'])} documents, identical="
        f"{concurrency['identical_to_serial']} "
        f"(serial {concurrency['serial_s']}s, "
        f"concurrent {concurrency['concurrent_s']}s)")
    return "\n".join(lines)


def write_snapshot(results: Dict[str, Any], path: str) -> str:
    """Write a snapshot deterministically (sorted keys, stable layout)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def format_summary(results: Dict[str, Any]) -> str:
    """Human-readable one-screen summary of a snapshot."""
    lines = [f"snapshot {results['snapshot']}"]
    for degree, row in sorted(results["poly_mul_fp"]["degrees"].items(),
                              key=lambda item: int(item[0])):
        lines.append(
            f"  poly mul F_p deg {degree:>4}: {row['kernel_ops_per_sec']:>12.0f} ops/s "
            f"(generic {row['generic_ops_per_sec']:.0f}, x{row['speedup']})")
    for name, row in sorted(results["quotient_reduce"].items()):
        lines.append(
            f"  reduce {name:>3} ({row['ring']}): {row['kernel_ops_per_sec']:>10.0f} ops/s "
            f"(x{row['speedup']})")
    e2e = results["end_to_end"]
    for n, row in sorted(e2e["sizes"].items(), key=lambda item: int(item[0])):
        lines.append(
            f"  outsource+lookup n={n:>4}: {row['kernel_ms']:.2f} ms "
            f"(generic {row['generic_ms']:.2f} ms, x{row['speedup']})")
    lines.append(f"  end-to-end total: x{e2e['speedup']}")
    return "\n".join(lines)
