"""Quick kernel benchmark suite and the ``BENCH_N.json`` perf snapshots.

This module measures the three rates the fast-kernel layer is judged by:

* polynomial multiplication throughput over ``F_p`` (kernel vs generic);
* quotient-ring reduction throughput in both encoding rings;
* end-to-end ``outsource + lookup`` latency on the scaling workload.

The workloads are fully deterministic (fixed seeds, fixed sizes) so that a
snapshot written by ``python -m repro.cli bench`` or by
``benchmarks/test_bench_kernels.py`` is comparable across commits; only
the wall-clock rates vary with the host.  Snapshots are written with
sorted keys and a stable schema so future perf PRs can diff against
``BENCH_1.json``.
"""

from __future__ import annotations

import json
import random
import time
from typing import Any, Callable, Dict, Optional

from .algebra import (
    FpQuotientRing,
    IntQuotientRing,
    Polynomial,
    PrimeField,
    ZZ,
    default_int_modulus,
    use_kernels,
)
from .core import choose_fp_ring, outsource_document
from .workloads import RandomXmlConfig, generate_random_document

__all__ = ["run_benchmarks", "write_snapshot", "SNAPSHOT_NAME"]

SNAPSHOT_NAME = "BENCH_1"

#: Prime used for the raw F_p multiplication benchmark (large enough that
#: coefficients are realistic residues, small enough to stay hardware-native).
_BENCH_PRIME = 10007


def _ops_per_sec(fn: Callable[[], Any], min_time: float = 0.10,
                 repeat: int = 3) -> float:
    """Best observed throughput of ``fn`` in operations per second."""
    fn()  # warm-up (also forces lazy tables)
    number = 1
    while True:
        start = time.perf_counter()
        for _ in range(number):
            fn()
        elapsed = time.perf_counter() - start
        if elapsed >= min_time / 4 or number >= 1 << 16:
            break
        number *= 4
    best = elapsed / number
    for _ in range(repeat - 1):
        start = time.perf_counter()
        for _ in range(number):
            fn()
        best = min(best, (time.perf_counter() - start) / number)
    return 1.0 / best


def _timed_pair(fast: Callable[[], Any], generic: Callable[[], Any],
                min_time: float, repeat: int) -> Dict[str, float]:
    kernel_rate = _ops_per_sec(fast, min_time, repeat)
    with use_kernels(False):
        generic_rate = _ops_per_sec(generic, min_time, repeat)
    return {
        "kernel_ops_per_sec": round(kernel_rate, 2),
        "generic_ops_per_sec": round(generic_rate, 2),
        "speedup": round(kernel_rate / generic_rate, 2),
    }


def bench_poly_mul(degrees=(16, 64, 128), p: int = _BENCH_PRIME,
                   min_time: float = 0.10, repeat: int = 3) -> Dict[str, Any]:
    """Kernel vs generic dense multiplication throughput over ``F_p``."""
    field = PrimeField(p)
    rng = random.Random(0xBE7C)
    results: Dict[str, Any] = {"p": p, "degrees": {}}
    for degree in degrees:
        a = Polynomial([rng.randrange(p) for _ in range(degree)] + [1], field)
        b = Polynomial([rng.randrange(p) for _ in range(degree)] + [1], field)
        results["degrees"][str(degree)] = _timed_pair(
            lambda: a * b, lambda: a * b, min_time, repeat)
    return results


def bench_quotient_reduce(min_time: float = 0.10,
                          repeat: int = 3) -> Dict[str, Any]:
    """Reduction throughput of both encoding rings on oversized inputs."""
    rng = random.Random(0x5EED)
    fp_ring = FpQuotientRing(29)
    fp_poly = Polynomial([rng.randrange(29) for _ in range(3 * 28)] + [1],
                         fp_ring.field)
    int_ring = IntQuotientRing(default_int_modulus(2))
    int_poly = Polynomial([rng.randrange(-10 ** 9, 10 ** 9) for _ in range(12)] + [1],
                          ZZ)
    return {
        "fp": dict(_timed_pair(lambda: fp_ring.reduce(fp_poly),
                               lambda: fp_ring.reduce(fp_poly),
                               min_time, repeat),
                   ring=fp_ring.name, input_degree=fp_poly.degree),
        "int": dict(_timed_pair(lambda: int_ring.reduce(int_poly),
                                lambda: int_ring.reduce(int_poly),
                                min_time, repeat),
                    ring=int_ring.name, input_degree=int_poly.degree),
    }


def _outsource_and_lookup(document, tag: str) -> None:
    client, server_tree, _ = outsource_document(
        document, ring=choose_fp_ring(document), seed=b"bench-kernels")
    outcome = client.lookup(server_tree, tag)
    assert outcome.matches or outcome.zero_nodes or outcome.pruned_nodes is not None


def bench_end_to_end(sizes=(50, 100, 200), vocabulary: int = 24,
                     repeat: int = 5) -> Dict[str, Any]:
    """End-to-end outsource+lookup latency on the scaling workload.

    Mirrors ``benchmarks/test_bench_scaling.py``: random skewed documents,
    a selective ``//tag0`` lookup, one encode+share+query pass per size.
    """
    results: Dict[str, Any] = {"vocabulary": vocabulary, "sizes": {}}
    total_fast = total_generic = 0.0
    for n in sizes:
        document = generate_random_document(
            RandomXmlConfig(element_count=n, tag_vocabulary_size=vocabulary,
                            tag_skew=1.2, seed=n + 1))
        # A selective tag that is guaranteed present (deterministic choice).
        tags = sorted(document.distinct_tags())
        tag = tags[len(tags) // 2]
        fast = _ops_per_sec(lambda: _outsource_and_lookup(document, tag),
                            min_time=0.0, repeat=repeat)
        with use_kernels(False):
            generic = _ops_per_sec(lambda: _outsource_and_lookup(document, tag),
                                   min_time=0.0, repeat=repeat)
        fast_ms = 1000.0 / fast
        generic_ms = 1000.0 / generic
        total_fast += fast_ms
        total_generic += generic_ms
        results["sizes"][str(n)] = {
            "kernel_ms": round(fast_ms, 3),
            "generic_ms": round(generic_ms, 3),
            "speedup": round(generic_ms / fast_ms, 2),
        }
    results["total_kernel_ms"] = round(total_fast, 3)
    results["total_generic_ms"] = round(total_generic, 3)
    results["speedup"] = round(total_generic / total_fast, 2)
    return results


def run_benchmarks(quick: bool = False, repeat: int = 3) -> Dict[str, Any]:
    """Run the whole quick suite and return the snapshot dictionary."""
    min_time = 0.02 if quick else 0.10
    sizes = (50, 100) if quick else (50, 100, 200, 400)
    degrees = (16, 64) if quick else (16, 64, 128)
    return {
        "snapshot": SNAPSHOT_NAME,
        "description": "fast-kernel algebra layer: kernel vs generic reference path",
        "config": {
            "quick": quick,
            "repeat": repeat,
            "sizes": list(sizes),
            "degrees": list(degrees),
        },
        "poly_mul_fp": bench_poly_mul(degrees, min_time=min_time, repeat=repeat),
        "quotient_reduce": bench_quotient_reduce(min_time=min_time, repeat=repeat),
        "end_to_end": bench_end_to_end(sizes, repeat=max(repeat, 5)),
    }


def write_snapshot(results: Dict[str, Any], path: str) -> str:
    """Write a snapshot deterministically (sorted keys, stable layout)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def format_summary(results: Dict[str, Any]) -> str:
    """Human-readable one-screen summary of a snapshot."""
    lines = [f"snapshot {results['snapshot']}"]
    for degree, row in sorted(results["poly_mul_fp"]["degrees"].items(),
                              key=lambda item: int(item[0])):
        lines.append(
            f"  poly mul F_p deg {degree:>4}: {row['kernel_ops_per_sec']:>12.0f} ops/s "
            f"(generic {row['generic_ops_per_sec']:.0f}, x{row['speedup']})")
    for name, row in sorted(results["quotient_reduce"].items()):
        lines.append(
            f"  reduce {name:>3} ({row['ring']}): {row['kernel_ops_per_sec']:>10.0f} ops/s "
            f"(x{row['speedup']})")
    e2e = results["end_to_end"]
    for n, row in sorted(e2e["sizes"].items(), key=lambda item: int(item[0])):
        lines.append(
            f"  outsource+lookup n={n:>4}: {row['kernel_ms']:.2f} ms "
            f"(generic {row['generic_ms']:.2f} ms, x{row['speedup']})")
    lines.append(f"  end-to-end total: x{e2e['speedup']}")
    return "\n".join(lines)
