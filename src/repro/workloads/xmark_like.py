"""An XMark-flavoured synthetic auction document.

XMark is the standard XML benchmark family of the era the paper was
written in; its auction-site schema (regions, items, people, open
auctions, bids) produces deeper and more varied trees than the catalog
workload.  This generator follows the shape of that schema at a small,
parameterised scale — enough to exercise the scheme on documents with a
larger tag vocabulary and recursive-looking structures.
"""

from __future__ import annotations

import random
from typing import List

from ..xmltree import XmlDocument, XmlElement

__all__ = ["XMarkConfig", "generate_xmark_document", "XMARK_QUERIES"]

_REGIONS = ["africa", "asia", "australia", "europe", "namerica", "samerica"]

#: Queries exercised by examples and benchmarks on this workload.
XMARK_QUERIES = [
    "//item",
    "//person/name",
    "//open_auction/bidder",
    "//regions//item/description",
    "//europe/item",
    "//open_auction//person",
]


class XMarkConfig:
    """Size knobs of the XMark-like generator."""

    def __init__(self, items_per_region: int = 3, people: int = 10,
                 open_auctions: int = 6, max_bidders: int = 4,
                 seed: int = 42) -> None:
        if items_per_region < 0 or people < 1 or open_auctions < 0:
            raise ValueError("people must be positive, counts non-negative")
        self.items_per_region = items_per_region
        self.people = people
        self.open_auctions = open_auctions
        self.max_bidders = max_bidders
        self.seed = seed


def generate_xmark_document(config: XMarkConfig = XMarkConfig()) -> XmlDocument:
    """Generate the auction-site document."""
    rng = random.Random(config.seed)
    site = XmlElement("site")

    regions = site.add("regions")
    for region_name in _REGIONS:
        region = regions.add(region_name)
        for item_index in range(config.items_per_region):
            item = region.add("item")
            item.add("name", text=f"{region_name}-item-{item_index}")
            description = item.add("description")
            description.add("text", text="lorem ipsum")
            item.add("quantity", text=str(rng.randint(1, 5)))
            if rng.random() < 0.5:
                shipping = item.add("shipping")
                shipping.add("text", text="Will ship internationally")

    people = site.add("people")
    for person_index in range(config.people):
        person = people.add("person")
        person.add("name", text=f"Person {person_index}")
        person.add("emailaddress", text=f"person{person_index}@example.org")
        if rng.random() < 0.6:
            profile = person.add("profile")
            profile.add("interest")
            profile.add("education", text="graduate")

    auctions = site.add("open_auctions")
    for auction_index in range(config.open_auctions):
        auction = auctions.add("open_auction")
        auction.add("initial", text=str(rng.randint(1, 100)))
        for _ in range(rng.randint(0, config.max_bidders)):
            bidder = auction.add("bidder")
            bidder.add("date", text="2004-08-30")
            bidder.add("increase", text=str(rng.randint(1, 20)))
            reference = bidder.add("personref")
            reference.add("person", text=f"Person {rng.randrange(config.people)}")
        auction.add("current", text=str(rng.randint(1, 500)))
        seller = auction.add("seller")
        seller.add("person", text=f"Person {rng.randrange(config.people)}")
    return XmlDocument(site)
