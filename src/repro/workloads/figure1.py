"""The worked example of the paper (figures 1–6).

Figure 1(a) shows a tiny customer database: a ``customers`` root with two
``client`` children, each containing a ``name``.  Figure 1(b) fixes the
tag mapping ``client → 2, customers → 3, name → 4`` and figure 2 reduces
the resulting polynomial tree in the two rings ``F_5[x]/(x^4 − 1)`` and
``Z[x]/(x² + 1)``.  This module reproduces the document, the mapping and
the ring choices so the figure benchmarks can check exact values.

Note: with ``p = 5`` the mapping uses the value ``4 = p − 1`` for ``name``
although the text (after Lemma 3) advises avoiding ``p − 1``; the paper's
own example takes this liberty, so the reproduction does too (strict
checking is disabled for this workload; see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Dict, List

from ..algebra.poly import Polynomial
from ..algebra.quotient import FpQuotientRing, IntQuotientRing, default_int_modulus
from ..algebra.rings import ZZ
from ..core.mapping import TagMapping
from ..xmltree import XmlDocument, XmlElement

__all__ = [
    "PAPER_PRIME",
    "figure1_document",
    "figure1_mapping",
    "figure1_fp_ring",
    "figure1_int_ring",
    "expected_figure2_fp_polynomials",
    "expected_figure2_int_polynomials",
    "expected_figure5_sums",
    "expected_figure6_sums",
]

#: The prime used throughout the paper's example (F_5).
PAPER_PRIME = 5


def figure1_document(clients: int = 2) -> XmlDocument:
    """The figure-1(a) document; ``clients`` generalises the number of clients."""
    root = XmlElement("customers")
    for index in range(clients):
        client = root.add("client")
        client.add("name", text=f"client-{index}")
    return XmlDocument(root)


def figure1_mapping() -> TagMapping:
    """The figure-1(b) mapping: client → 2, customers → 3, name → 4."""
    return TagMapping({"client": 2, "customers": 3, "name": 4})


def figure1_fp_ring() -> FpQuotientRing:
    """The paper's ``F_5[x]/(x^4 - 1)`` ring."""
    return FpQuotientRing(PAPER_PRIME)


def figure1_int_ring() -> IntQuotientRing:
    """The paper's ``Z[x]/(x^2 + 1)`` ring."""
    return IntQuotientRing(default_int_modulus(2))


def expected_figure2_fp_polynomials() -> Dict[str, List[int]]:
    """Figure 2(a): coefficient vectors (ascending degree) per tag path.

    ``name``   → x + 1
    ``client`` → x² + 4x + 3
    ``customers`` (root) → 3x³ + 3x² + 3x + 3
    """
    return {
        "customers/client/name": [1, 1],
        "customers/client": [3, 4, 1],
        "customers": [3, 3, 3, 3],
    }


def expected_figure2_int_polynomials() -> Dict[str, List[int]]:
    """Figure 2(b): coefficient vectors in ``Z[x]/(x² + 1)``.

    ``name`` → x − 4, ``client`` → −6x + 7, ``customers`` → 265x + 45.
    """
    return {
        "customers/client/name": [-4, 1],
        "customers/client": [7, -6],
        "customers": [45, 265],
    }


def expected_figure5_sums() -> Dict[str, int]:
    """Figure 5(c): summed evaluations at ``x = 2`` in ``F_5`` per tag path."""
    return {
        "customers": 0,
        "customers/client": 0,
        "customers/client/name": 3,
    }


def expected_figure6_sums() -> Dict[str, int]:
    """Figure 6(c): summed evaluations at ``x = 2`` modulo ``r(2) = 5``."""
    return {
        "customers": 0,
        "customers/client": 0,
        "customers/client/name": 3,
    }
