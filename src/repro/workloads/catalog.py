"""A realistic outsourced-database workload: a customer/order catalog.

The paper's motivating scenario is a company outsourcing its customer
database to an untrusted provider.  This workload scales the figure-1
document up to a realistic shape: customers with addresses, accounts and
orders, orders with line items referencing products from a catalog — the
kind of document a thin client would want to query with paths such as
``//customer/order//product`` without revealing the data to the provider.
"""

from __future__ import annotations

import random
from typing import List

from ..xmltree import XmlDocument, XmlElement

__all__ = ["CatalogConfig", "generate_catalog_document", "CATALOG_QUERIES"]

#: Queries exercised by examples and benchmarks on this workload.
CATALOG_QUERIES = [
    "//customer",
    "//order",
    "//customer/profile/name",
    "//customer//product",
    "//customer/order/item//product",
    "//warehouse//product",
]


class CatalogConfig:
    """Size knobs of the catalog generator."""

    def __init__(self, customers: int = 10, max_orders_per_customer: int = 3,
                 max_items_per_order: int = 4, products: int = 8,
                 warehouses: int = 2, seed: int = 7) -> None:
        if customers < 1 or products < 1 or warehouses < 0:
            raise ValueError("customers and products must be positive")
        self.customers = customers
        self.max_orders_per_customer = max_orders_per_customer
        self.max_items_per_order = max_items_per_order
        self.products = products
        self.warehouses = warehouses
        self.seed = seed


def generate_catalog_document(config: CatalogConfig = CatalogConfig()) -> XmlDocument:
    """Generate the catalog document."""
    rng = random.Random(config.seed)
    root = XmlElement("company")

    catalog = root.add("catalog")
    for product_index in range(config.products):
        product = catalog.add("product")
        product.add("sku", text=f"SKU-{product_index:04d}")
        product.add("price", text=str(10 + product_index))

    for warehouse_index in range(config.warehouses):
        warehouse = root.add("warehouse")
        warehouse.add("location", text=f"W{warehouse_index}")
        stocked = rng.sample(range(config.products),
                             k=max(1, config.products // 2))
        for product_index in stocked:
            stock = warehouse.add("stock")
            stock.add("product", text=f"SKU-{product_index:04d}")
            stock.add("quantity", text=str(rng.randint(0, 500)))

    customers = root.add("customers")
    for customer_index in range(config.customers):
        customer = customers.add("customer")
        profile = customer.add("profile")
        profile.add("name", text=f"Customer {customer_index}")
        address = profile.add("address")
        address.add("street", text=f"{customer_index} Main Street")
        address.add("city", text="Enschede")
        account = customer.add("account")
        account.add("balance", text=str(rng.randint(-100, 1000)))
        for _ in range(rng.randint(0, config.max_orders_per_customer)):
            order = customer.add("order")
            order.add("date", text="2004-08-30")
            for _ in range(rng.randint(1, config.max_items_per_order)):
                item = order.add("item")
                item.add("product", text=f"SKU-{rng.randrange(config.products):04d}")
                item.add("quantity", text=str(rng.randint(1, 9)))
    return XmlDocument(root)
