"""Parameterised synthetic XML generator.

The paper has no public dataset; its cost claims (§5) are about tree size
``n``, tag vocabulary ``p``, depth and how selective the query is.  This
generator exposes exactly those knobs so the benchmarks can sweep them:

* ``element_count`` — target number of elements (the paper's ``n``);
* ``tag_vocabulary`` — number of distinct tag names (bounds ``p``);
* ``max_fanout`` / ``max_depth`` — tree shape;
* ``tag_skew`` — Zipf-like skew of tag popularity, which controls how
  selective a ``//tag`` query is (skewed vocabularies make rare tags very
  selective and popular tags very unselective);
* ``seed`` — full determinism for reproducible experiments.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..xmltree import XmlDocument, XmlElement

__all__ = ["RandomXmlConfig", "generate_random_document", "tag_vocabulary"]


def tag_vocabulary(size: int, prefix: str = "tag") -> List[str]:
    """A deterministic vocabulary of ``size`` tag names."""
    if size < 1:
        raise ValueError("the vocabulary needs at least one tag")
    width = len(str(size - 1))
    return [f"{prefix}{str(i).zfill(width)}" for i in range(size)]


class RandomXmlConfig:
    """Parameters of the synthetic document generator."""

    def __init__(self, element_count: int = 100, tag_vocabulary_size: int = 10,
                 max_fanout: int = 4, max_depth: int = 8,
                 tag_skew: float = 0.0, seed: int = 0,
                 root_tag: str = "root") -> None:
        if element_count < 1:
            raise ValueError("element_count must be at least 1")
        if tag_vocabulary_size < 1:
            raise ValueError("tag_vocabulary_size must be at least 1")
        if max_fanout < 1:
            raise ValueError("max_fanout must be at least 1")
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        if tag_skew < 0:
            raise ValueError("tag_skew must be non-negative")
        self.element_count = element_count
        self.tag_vocabulary_size = tag_vocabulary_size
        self.max_fanout = max_fanout
        self.max_depth = max_depth
        self.tag_skew = tag_skew
        self.seed = seed
        self.root_tag = root_tag

    def tags(self) -> List[str]:
        """The tag vocabulary used by the generator (excluding the root tag)."""
        return tag_vocabulary(self.tag_vocabulary_size)

    def __repr__(self) -> str:
        return (f"RandomXmlConfig(n={self.element_count}, tags={self.tag_vocabulary_size}, "
                f"fanout<={self.max_fanout}, depth<={self.max_depth}, "
                f"skew={self.tag_skew}, seed={self.seed})")


def _tag_weights(count: int, skew: float) -> List[float]:
    if skew == 0:
        return [1.0] * count
    return [1.0 / (rank ** skew) for rank in range(1, count + 1)]


def generate_random_document(config: RandomXmlConfig) -> XmlDocument:
    """Generate a random document matching ``config``.

    The tree is grown breadth-first: new elements are attached to a random
    existing element whose depth still allows children, until the target
    element count is reached.  The result always has exactly
    ``config.element_count`` elements (including the root).
    """
    rng = random.Random(config.seed)
    tags = config.tags()
    weights = _tag_weights(len(tags), config.tag_skew)

    root = XmlElement(config.root_tag)
    document = XmlDocument(root)
    # Candidate parents: (element, depth, children_so_far).
    open_parents: List[List] = [[root, 0, 0]]

    # The element count is tracked incrementally: document.size() walks the
    # whole tree, which made generation quadratic in element_count and
    # dominated benchmark setup for the >10^5-node serving documents.
    element_count = 1
    while element_count < config.element_count and open_parents:
        slot = rng.randrange(len(open_parents))
        parent_entry = open_parents[slot]
        parent, depth, fanout = parent_entry
        tag = rng.choices(tags, weights=weights, k=1)[0]
        child = parent.add(tag)
        element_count += 1
        parent_entry[2] = fanout + 1
        if parent_entry[2] >= config.max_fanout:
            open_parents.pop(slot)
        if depth + 1 < config.max_depth - 1:
            open_parents.append([child, depth + 1, 0])
    return document
