"""Document workloads: the paper's figure-1 example, a parameterised random
generator, a customer/order catalog and an XMark-like auction site."""

from .catalog import CATALOG_QUERIES, CatalogConfig, generate_catalog_document
from .figure1 import (
    PAPER_PRIME,
    expected_figure2_fp_polynomials,
    expected_figure2_int_polynomials,
    expected_figure5_sums,
    expected_figure6_sums,
    figure1_document,
    figure1_fp_ring,
    figure1_int_ring,
    figure1_mapping,
)
from .random_xml import RandomXmlConfig, generate_random_document, tag_vocabulary
from .xmark_like import XMARK_QUERIES, XMarkConfig, generate_xmark_document

__all__ = [
    "PAPER_PRIME",
    "figure1_document",
    "figure1_mapping",
    "figure1_fp_ring",
    "figure1_int_ring",
    "expected_figure2_fp_polynomials",
    "expected_figure2_int_polynomials",
    "expected_figure5_sums",
    "expected_figure6_sums",
    "RandomXmlConfig",
    "generate_random_document",
    "tag_vocabulary",
    "CatalogConfig",
    "generate_catalog_document",
    "CATALOG_QUERIES",
    "XMarkConfig",
    "generate_xmark_document",
    "XMARK_QUERIES",
]
