"""Additive secret sharing of encoding-ring elements.

This is the sharing used by the core scheme (§4.2): the client keeps a
random polynomial, the server keeps the difference, and the sum of the two
shares is the original polynomial.  The client share is produced by a
deterministic PRG so that only the seed needs to be stored
(:mod:`repro.prg`).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..algebra.poly import Polynomial
from ..algebra.quotient import EncodingRing
from ..errors import SharingError

__all__ = ["AdditiveShare", "split_additively", "split_additively_n", "combine_additive"]


class AdditiveShare:
    """One party's additive share of a ring element."""

    __slots__ = ("party", "value")

    def __init__(self, party: str, value: Polynomial) -> None:
        self.party = party
        self.value = value

    def __repr__(self) -> str:
        return f"AdditiveShare(party={self.party!r}, value={self.value!s})"


def split_additively(ring: EncodingRing, element: Polynomial,
                     rng: random.Random) -> Tuple[Polynomial, Polynomial]:
    """Split ``element`` into ``(client_share, server_share)``.

    The client share is a uniformly random ring element drawn from ``rng``;
    the server share is ``element - client_share``, so the two shares sum to
    the original (figures 3 and 4 of the paper).
    """
    element = ring.reduce(element)
    client_share = ring.random_element(rng)
    server_share = ring.sub(element, client_share)
    return client_share, server_share


def split_additively_n(ring: EncodingRing, element: Polynomial, parties: int,
                       rng: random.Random) -> List[Polynomial]:
    """Split ``element`` into ``parties`` additive shares (all needed to rebuild)."""
    if parties < 2:
        raise SharingError("additive sharing needs at least 2 parties")
    element = ring.reduce(element)
    shares = [ring.random_element(rng) for _ in range(parties - 1)]
    total = ring.zero
    for share in shares:
        total = ring.add(total, share)
    shares.append(ring.sub(element, total))
    return shares


def combine_additive(ring: EncodingRing, shares: Sequence[Polynomial]) -> Polynomial:
    """Recombine additive shares into the original element."""
    if not shares:
        raise SharingError("cannot combine an empty share list")
    total = ring.zero
    for share in shares:
        total = ring.add(total, share)
    return total
