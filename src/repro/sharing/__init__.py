"""Secret-sharing substrate: additive 2-party splits, Shamir threshold
sharing and the multi-server extensions sketched in §4.2 of the paper."""

from .additive import (
    AdditiveShare,
    combine_additive,
    split_additively,
    split_additively_n,
)
from .multiserver import AdditiveMultiServerSharing, ThresholdPolynomialSharing
from .shamir import ShamirScheme, ShamirShare

__all__ = [
    "AdditiveShare",
    "split_additively",
    "split_additively_n",
    "combine_additive",
    "ShamirScheme",
    "ShamirShare",
    "ThresholdPolynomialSharing",
    "AdditiveMultiServerSharing",
]
