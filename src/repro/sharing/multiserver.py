"""Multi-server sharing of encoding-ring polynomials.

Section 4.2 of the paper: "This can easily be extended to a model with
multiple servers, in which the client together with k out of n servers (or
any other access structure) can reconstruct the shared secret polynomial."

Two constructions are provided:

* :class:`ThresholdPolynomialSharing` — for the ``F_p[x]/(x^{p-1}-1)``
  ring: every coefficient of a node polynomial is Shamir-shared with
  threshold ``k`` over ``F_p``.  Because polynomial evaluation is linear
  in the coefficients, each server can evaluate its share-polynomial at a
  query point and the client recombines any ``k`` evaluation values by
  Lagrange interpolation — the multi-server analogue of the §4.3 protocol.
* :class:`AdditiveMultiServerSharing` — an ``n``-out-of-``n`` additive
  variant that works over *any* encoding ring (including ``Z[x]/(r(x))``
  where Shamir needs a field).
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from ..algebra.fp import PrimeField
from ..algebra.interpolate import lagrange_evaluate_at
from ..algebra.poly import Polynomial
from ..algebra.quotient import EncodingRing, FpQuotientRing
from ..errors import SharingError, ThresholdError
from .additive import combine_additive, split_additively_n
from .shamir import ShamirScheme, ShamirShare

__all__ = ["ThresholdPolynomialSharing", "AdditiveMultiServerSharing"]


class ThresholdPolynomialSharing:
    """Coefficient-wise Shamir sharing of ``F_p`` quotient-ring elements."""

    def __init__(self, ring: FpQuotientRing, threshold: int, servers: int) -> None:
        if not isinstance(ring, FpQuotientRing):
            raise SharingError(
                "threshold sharing needs field coefficients; use the F_p ring "
                "or AdditiveMultiServerSharing for Z[x]/(r(x))")
        self.ring = ring
        self.field: PrimeField = ring.field
        self.scheme = ShamirScheme(self.field, threshold, servers)
        self.threshold = threshold
        self.servers = servers

    # -- sharing ----------------------------------------------------------------
    def share(self, element: Polynomial,
              rng: random.Random) -> Dict[int, Polynomial]:
        """Share one ring element; returns ``{server_index: share_polynomial}``."""
        element = self.ring.reduce(element)
        per_server: Dict[int, List[int]] = {
            index: [] for index in range(1, self.servers + 1)}
        for degree in range(self.ring.degree_bound):
            coefficient = element.coefficient(degree)
            for share in self.scheme.share(coefficient, rng):
                per_server[share.index].append(share.value)
        return {index: Polynomial(coeffs, self.field)
                for index, coeffs in per_server.items()}

    # -- reconstruction ------------------------------------------------------------
    def reconstruct(self, shares: Dict[int, Polynomial]) -> Polynomial:
        """Recover the original element from at least ``threshold`` share polynomials."""
        if len(shares) < self.threshold:
            raise ThresholdError(
                f"need {self.threshold} server shares, got {len(shares)}")
        selected = list(shares.items())[: self.threshold]
        coefficients = []
        for degree in range(self.ring.degree_bound):
            points = [(index, poly.coefficient(degree)) for index, poly in selected]
            coefficients.append(lagrange_evaluate_at(points, 0, self.field))
        return self.ring.from_coefficients(coefficients)

    def combine_evaluations(self, evaluations: Dict[int, int]) -> int:
        """Recombine per-server evaluations of a shared polynomial at one point.

        Each server evaluates *its* share polynomial at the public query
        point; any ``threshold`` of the resulting values interpolate to the
        true evaluation because evaluation is a linear map on coefficients.
        """
        if len(evaluations) < self.threshold:
            raise ThresholdError(
                f"need {self.threshold} evaluations, got {len(evaluations)}")
        points = list(evaluations.items())[: self.threshold]
        return lagrange_evaluate_at(points, 0, self.field)

    def __repr__(self) -> str:
        return (f"ThresholdPolynomialSharing(ring={self.ring.name}, "
                f"threshold={self.threshold}, servers={self.servers})")


class AdditiveMultiServerSharing:
    """``n``-out-of-``n`` additive sharing over any encoding ring."""

    def __init__(self, ring: EncodingRing, servers: int) -> None:
        if servers < 1:
            raise SharingError("need at least one server")
        self.ring = ring
        self.servers = servers

    def share(self, element: Polynomial, rng: random.Random) -> Dict[int, Polynomial]:
        """Share one element into ``servers + 1`` additive parts.

        The extra part (index 0) is the client's share; indices ``1..n`` go
        to the servers.  All parts are required for reconstruction.
        """
        parts = split_additively_n(self.ring, element, self.servers + 1, rng)
        return {index: part for index, part in enumerate(parts)}

    def reconstruct(self, shares: Dict[int, Polynomial]) -> Polynomial:
        """Sum all shares (client plus every server)."""
        if len(shares) != self.servers + 1:
            raise ThresholdError(
                f"additive sharing needs all {self.servers + 1} shares, got {len(shares)}")
        return combine_additive(self.ring, list(shares.values()))

    def combine_evaluations(self, evaluations: Dict[int, int], point: int) -> int:
        """Sum per-party evaluations at ``point`` in the evaluation domain."""
        if len(evaluations) != self.servers + 1:
            raise ThresholdError(
                f"additive sharing needs all {self.servers + 1} evaluations")
        total = 0
        for value in evaluations.values():
            total = self.ring.evaluation_add(total, value, point)
        return total

    def __repr__(self) -> str:
        return f"AdditiveMultiServerSharing(ring={self.ring.name}, servers={self.servers})"
