"""Shamir threshold secret sharing over a prime field.

Section 3 of the paper recalls Shamir's scheme [14] as the basis of most
secure multi-party computation protocols, and §4.2 notes that the simple
client/server split "can easily be extended to a model with multiple
servers, in which the client together with k out of n servers ... can
reconstruct the shared secret polynomial".  This module provides the
threshold machinery used by both the SMC substrate (:mod:`repro.smc`) and
the multi-server sharing of polynomial trees
(:mod:`repro.sharing.multiserver`).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..algebra.fp import PrimeField
from ..algebra.interpolate import lagrange_evaluate_at
from ..algebra.poly import Polynomial
from ..errors import ThresholdError

__all__ = ["ShamirShare", "ShamirScheme"]


class ShamirShare:
    """A single share ``(index, value)`` of a Shamir-shared secret."""

    __slots__ = ("index", "value")

    def __init__(self, index: int, value: int) -> None:
        if index <= 0:
            raise ThresholdError("share indices must be positive (0 encodes the secret)")
        self.index = index
        self.value = value

    def as_tuple(self) -> Tuple[int, int]:
        """The share as an ``(index, value)`` pair."""
        return self.index, self.value

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ShamirShare):
            return NotImplemented
        return self.index == other.index and self.value == other.value

    def __hash__(self) -> int:
        return hash((self.index, self.value))

    def __repr__(self) -> str:
        return f"ShamirShare(index={self.index}, value={self.value})"


class ShamirScheme:
    """A ``threshold``-out-of-``parties`` Shamir scheme over ``F_p``.

    ``threshold`` is the number of shares required to reconstruct — the
    paper's ``t`` (the sharing polynomial has degree ``threshold - 1``).
    """

    def __init__(self, field: PrimeField, threshold: int, parties: int) -> None:
        if threshold < 1:
            raise ThresholdError("the threshold must be at least 1")
        if parties < threshold:
            raise ThresholdError("cannot have fewer parties than the threshold")
        if parties >= field.p:
            raise ThresholdError(
                f"F_{field.p} has too few points for {parties} parties; use a larger prime")
        self.field = field
        self.threshold = threshold
        self.parties = parties

    # -- sharing -----------------------------------------------------------------
    def share(self, secret: int, rng: random.Random) -> List[ShamirShare]:
        """Split ``secret`` into one share per party."""
        polynomial = self._sharing_polynomial(secret, rng)
        return [ShamirShare(index, polynomial.evaluate(index))
                for index in range(1, self.parties + 1)]

    def share_many(self, secrets: Sequence[int],
                   rng: random.Random) -> List[List[ShamirShare]]:
        """Share a list of secrets; returns one share list per secret."""
        return [self.share(secret, rng) for secret in secrets]

    def _sharing_polynomial(self, secret: int, rng: random.Random) -> Polynomial:
        coefficients = [self.field.canonical(secret)]
        coefficients += [self.field.random_element(rng) for _ in range(self.threshold - 1)]
        return Polynomial(coefficients, self.field)

    # -- reconstruction ------------------------------------------------------------
    def reconstruct(self, shares: Sequence[ShamirShare]) -> int:
        """Recover the secret from at least ``threshold`` distinct shares."""
        distinct: Dict[int, int] = {}
        for share in shares:
            if share.index in distinct and distinct[share.index] != share.value:
                raise ThresholdError(f"conflicting values for share index {share.index}")
            distinct[share.index] = share.value
        if len(distinct) < self.threshold:
            raise ThresholdError(
                f"need at least {self.threshold} distinct shares, got {len(distinct)}")
        points = list(distinct.items())[: self.threshold]
        return lagrange_evaluate_at(points, 0, self.field)

    def reconstruct_at(self, shares: Sequence[ShamirShare], point: int) -> int:
        """Evaluate the sharing polynomial at an arbitrary point (mostly for tests)."""
        points = [share.as_tuple() for share in shares[: self.threshold]]
        return lagrange_evaluate_at(points, point, self.field)

    # -- homomorphic helpers (used by the SMC substrate) ----------------------------------
    def add_shares(self, a: ShamirShare, b: ShamirShare) -> ShamirShare:
        """Share-wise addition: shares of ``x`` and ``y`` become shares of ``x+y``."""
        if a.index != b.index:
            raise ThresholdError("can only add shares held by the same party")
        return ShamirShare(a.index, self.field.add(a.value, b.value))

    def scale_share(self, share: ShamirShare, scalar: int) -> ShamirShare:
        """Multiply a share by a public scalar."""
        return ShamirShare(share.index, self.field.mul(share.value, scalar))

    def __repr__(self) -> str:
        return (f"ShamirScheme(field=F_{self.field.p}, threshold={self.threshold}, "
                f"parties={self.parties})")
