"""Deterministic pseudo-random generation for client shares."""

from .prg import DeterministicPRG, SeededStream, derive_seed

__all__ = ["DeterministicPRG", "SeededStream", "derive_seed"]
