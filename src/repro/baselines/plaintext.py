"""Baseline 1: plaintext (unencrypted) XPath search.

This is the paper's reference point for storage (§5: an unencrypted tree
of ``n`` elements over ``p`` distinct tag names needs on the order of
``n·log p`` bits) and the correctness oracle for every other system: all
query answers are checked against it.
"""

from __future__ import annotations

import math
from typing import Dict, List, Union

from ..xmltree import XmlDocument, serialize_document
from ..xpath import LocationPath, evaluate_xpath
from .common import BaselineResult, BaselineStats, element_ids

__all__ = ["PlaintextSearchIndex"]


class PlaintextSearchIndex:
    """In-memory plaintext search over the original document."""

    def __init__(self, document: XmlDocument) -> None:
        self.document = document

    # -- queries -------------------------------------------------------------------
    def query(self, xpath: Union[str, LocationPath]) -> BaselineResult:
        """Evaluate an XPath query directly on the plaintext tree."""
        stats = BaselineStats()
        matches = evaluate_xpath(self.document, xpath)
        # A plaintext evaluator still walks the tree; charge one visit per
        # element so pruning comparisons have a sensible denominator.
        stats.nodes_visited = self.document.size()
        stats.server_operations = self.document.size()
        return BaselineResult(element_ids(self.document, matches), stats)

    def lookup(self, tag: str) -> BaselineResult:
        """Element lookup ``//tag``."""
        return self.query(f"//{tag}")

    # -- storage (§5) --------------------------------------------------------------------
    def storage_bits_formula(self) -> int:
        """The analytic ``n·⌈log₂ p⌉`` bits of §5 (tag identifiers only)."""
        n = self.document.size()
        p = max(2, len(self.document.distinct_tags()))
        return n * max(1, math.ceil(math.log2(p)))

    def storage_bits_measured(self) -> int:
        """Measured size of the serialised document (an upper bound in practice)."""
        return len(serialize_document(self.document, indent=0).encode("utf-8")) * 8
