"""Baseline 2: download everything and search locally.

The introduction of the paper calls this "the most obvious solution ...
terribly inefficient": encrypt the whole document, store the ciphertext on
the server, and for *every* query download the full blob, decrypt it on
the client and run the query locally.  Correct and maximally private, but
the bandwidth per query equals the document size — the cost the paper's
scheme is designed to avoid on thin clients and slow links.

Encryption is a simple stream cipher (PRG keystream XOR plaintext) keyed
by the client's secret; its only role here is to make the server-side blob
opaque while keeping the byte counts realistic.
"""

from __future__ import annotations

from typing import Union

from ..prg import DeterministicPRG
from ..xmltree import XmlDocument, parse_document, serialize_document
from ..xpath import LocationPath, evaluate_xpath
from .common import BaselineResult, BaselineStats, element_ids

__all__ = ["encrypt_blob", "decrypt_blob", "DownloadAllClient", "DownloadAllServer"]

_KEYSTREAM_LABEL = "download-all-keystream"


def encrypt_blob(plaintext: bytes, prg: DeterministicPRG) -> bytes:
    """XOR ``plaintext`` with the PRG keystream."""
    keystream = prg.stream(_KEYSTREAM_LABEL).read(len(plaintext))
    return bytes(p ^ k for p, k in zip(plaintext, keystream))


def decrypt_blob(ciphertext: bytes, prg: DeterministicPRG) -> bytes:
    """Inverse of :func:`encrypt_blob` (XOR is an involution)."""
    return encrypt_blob(ciphertext, prg)


class DownloadAllServer:
    """The server role: it stores one opaque blob and hands it out on request."""

    def __init__(self, blob: bytes) -> None:
        self.blob = bytes(blob)

    def download(self) -> bytes:
        """Return the full stored blob."""
        return self.blob

    def storage_bits(self) -> int:
        """Size of the stored ciphertext in bits."""
        return len(self.blob) * 8


class DownloadAllClient:
    """The client role: outsources the encrypted document, queries locally."""

    def __init__(self, prg: DeterministicPRG) -> None:
        self.prg = prg

    # -- outsourcing -----------------------------------------------------------------
    def outsource(self, document: XmlDocument) -> DownloadAllServer:
        """Encrypt the serialised document and build the server."""
        plaintext = serialize_document(document, indent=0).encode("utf-8")
        return DownloadAllServer(encrypt_blob(plaintext, self.prg))

    # -- querying ---------------------------------------------------------------------
    def query(self, server: DownloadAllServer,
              xpath: Union[str, LocationPath]) -> BaselineResult:
        """Download, decrypt, parse and evaluate the query locally."""
        stats = BaselineStats()
        blob = server.download()
        stats.round_trips = 1
        stats.bytes_to_server = 16                      # a constant-size request
        stats.bytes_to_client = len(blob)
        document = parse_document(decrypt_blob(blob, self.prg).decode("utf-8"))
        stats.nodes_visited = document.size()
        matches = evaluate_xpath(document, xpath)
        return BaselineResult(element_ids(document, matches), stats)

    def lookup(self, server: DownloadAllServer, tag: str) -> BaselineResult:
        """Element lookup ``//tag``."""
        return self.query(server, f"//{tag}")
