"""Shared plumbing for the baseline search systems.

All baselines report their answers as *pre-order node identifiers* — the
same numbering the core scheme uses — so results are directly comparable
in tests and benchmarks.  They also share a small result/stats record.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..xmltree import XmlDocument, XmlElement

__all__ = ["preorder_index", "element_ids", "BaselineStats", "BaselineResult"]


def preorder_index(document: XmlDocument) -> Dict[int, int]:
    """Map ``id(element)`` to its pre-order position (the scheme's node id)."""
    return {id(element): index for index, element in enumerate(document.iter())}


def element_ids(document: XmlDocument, elements) -> List[int]:
    """Translate a list of elements into sorted pre-order node ids."""
    index = preorder_index(document)
    return sorted(index[id(element)] for element in elements)


class BaselineStats:
    """Work and communication accounting comparable to
    :class:`repro.core.query.QueryStats`."""

    __slots__ = ("nodes_visited", "server_operations", "bytes_to_server",
                 "bytes_to_client", "round_trips")

    def __init__(self) -> None:
        self.nodes_visited = 0
        self.server_operations = 0
        self.bytes_to_server = 0
        self.bytes_to_client = 0
        self.round_trips = 0

    @property
    def total_bytes(self) -> int:
        """Bytes in both directions."""
        return self.bytes_to_server + self.bytes_to_client

    def as_dict(self) -> Dict[str, int]:
        """Dictionary form for tabular reporting."""
        return {
            "nodes_visited": self.nodes_visited,
            "server_operations": self.server_operations,
            "bytes_to_server": self.bytes_to_server,
            "bytes_to_client": self.bytes_to_client,
            "total_bytes": self.total_bytes,
            "round_trips": self.round_trips,
        }

    def __repr__(self) -> str:
        return (f"BaselineStats(visited={self.nodes_visited}, "
                f"ops={self.server_operations}, bytes={self.total_bytes})")


class BaselineResult:
    """Answer of a baseline query: node ids plus accounting."""

    __slots__ = ("matches", "stats", "false_positives")

    def __init__(self, matches: List[int], stats: BaselineStats,
                 false_positives: Optional[int] = None) -> None:
        self.matches = sorted(matches)
        self.stats = stats
        #: For probabilistic indexes (Bloom filters): candidates that had to be
        #: discarded after the exact check.
        self.false_positives = false_positives or 0

    def __repr__(self) -> str:
        return f"BaselineResult(matches={self.matches}, stats={self.stats!r})"
