"""Baseline 4: per-node Bloom-filter index (Goh-style secure index).

The conclusion of the paper lists Bloom filters [18] as an alternative way
to index encrypted data.  This baseline realises that alternative so the
two tree-pruning approaches can be compared:

* every node stores a Bloom filter over the HMAC-trapdoors of the tags in
  its *subtree* (descendant-or-self) — the pruning analogue of the
  polynomial containing the roots of all descendants — plus an exact
  per-node code for its own tag (to confirm matches);
* a query walks the tree top-down, pruning subtrees whose filter does not
  contain the queried trapdoor; filter *false positives* cause extra
  visits, which is the characteristic trade-off of the approach (tunable
  via the false-positive rate).

Like the main scheme, pruning is sound (no false negatives); unlike the
main scheme, extra work grows as the filters are made smaller.
"""

from __future__ import annotations

import hashlib
import hmac
import math
from typing import Dict, List, Optional, Tuple, Union

from ..prg import DeterministicPRG, derive_seed
from ..xmltree import XmlDocument, XmlElement
from .common import BaselineResult, BaselineStats, preorder_index

__all__ = ["BloomFilter", "BloomIndexNode", "BloomTreeIndex", "BloomIndexClient",
           "build_bloom_index"]

_TRAPDOOR_LABEL = "bloom-trapdoor-key"
_CODE_LABEL = "bloom-node-code"
_CODE_BYTES = 16


class BloomFilter:
    """A fixed-size Bloom filter with ``k`` HMAC-derived hash positions."""

    __slots__ = ("size_bits", "hash_count", "bits")

    def __init__(self, size_bits: int, hash_count: int, bits: int = 0) -> None:
        if size_bits < 8:
            raise ValueError("the filter needs at least 8 bits")
        if hash_count < 1:
            raise ValueError("at least one hash function is required")
        self.size_bits = size_bits
        self.hash_count = hash_count
        self.bits = bits

    @classmethod
    def for_capacity(cls, expected_items: int,
                     false_positive_rate: float = 0.01) -> "BloomFilter":
        """Size a filter for ``expected_items`` at the requested FP rate."""
        expected_items = max(1, expected_items)
        if not 0 < false_positive_rate < 1:
            raise ValueError("false_positive_rate must be in (0, 1)")
        size = max(8, int(math.ceil(
            -expected_items * math.log(false_positive_rate) / (math.log(2) ** 2))))
        hashes = max(1, int(round(size / expected_items * math.log(2))))
        return cls(size, hashes)

    def _positions(self, item: bytes) -> List[int]:
        positions = []
        for i in range(self.hash_count):
            digest = hmac.new(item, i.to_bytes(4, "big"), hashlib.sha256).digest()
            positions.append(int.from_bytes(digest[:8], "big") % self.size_bits)
        return positions

    def add(self, item: bytes) -> None:
        """Insert an item."""
        for position in self._positions(item):
            self.bits |= 1 << position

    def might_contain(self, item: bytes) -> bool:
        """Membership test (no false negatives, tunable false positives)."""
        return all(self.bits >> position & 1 for position in self._positions(item))

    def union(self, other: "BloomFilter") -> "BloomFilter":
        """Union of two same-shape filters."""
        if (self.size_bits, self.hash_count) != (other.size_bits, other.hash_count):
            raise ValueError("can only union filters with identical parameters")
        return BloomFilter(self.size_bits, self.hash_count, self.bits | other.bits)

    def storage_bits(self) -> int:
        """Size of the filter."""
        return self.size_bits


class BloomIndexNode:
    """Per-node index data: subtree filter + exact own-tag code."""

    __slots__ = ("node_id", "parent_id", "child_ids", "subtree_filter", "tag_code")

    def __init__(self, node_id: int, parent_id: Optional[int],
                 subtree_filter: BloomFilter, tag_code: bytes) -> None:
        self.node_id = node_id
        self.parent_id = parent_id
        self.child_ids: List[int] = []
        self.subtree_filter = subtree_filter
        self.tag_code = tag_code


class BloomTreeIndex:
    """The server-side index: one :class:`BloomIndexNode` per element."""

    def __init__(self, nodes: Dict[int, BloomIndexNode], root_id: int) -> None:
        self.nodes = nodes
        self.root_id = root_id

    def node_count(self) -> int:
        """Number of indexed nodes."""
        return len(self.nodes)

    def storage_bits(self) -> int:
        """Filter plus code storage across all nodes."""
        return sum(node.subtree_filter.storage_bits() + _CODE_BYTES * 8
                   for node in self.nodes.values())

    # -- the server-side search ----------------------------------------------------------
    def search(self, trapdoor: bytes, code: bytes,
               stats: BaselineStats) -> Tuple[List[int], int]:
        """Top-down pruned search; returns ``(matches, false_positive_visits)``.

        A subtree is visited only while its filter claims to contain the
        trapdoor; exact matches are confirmed with the per-node code.  The
        second return value counts nodes whose filter said "maybe" although
        the subtree contains no match at all (the price of the probabilistic
        filter).
        """
        matches: List[int] = []
        subtree_has_match: Dict[int, bool] = {}
        frontier = [self.root_id]
        visited_order: List[int] = []
        while frontier:
            node_id = frontier.pop()
            node = self.nodes[node_id]
            stats.nodes_visited += 1
            stats.server_operations += 1
            visited_order.append(node_id)
            if not node.subtree_filter.might_contain(trapdoor):
                subtree_has_match[node_id] = False
                continue
            if node.tag_code == code:
                matches.append(node_id)
            frontier.extend(node.child_ids)
        # Count "maybe" subtrees that produced no match below them.
        false_positive_visits = 0
        match_set = set(matches)
        for node_id in visited_order:
            subtree = self._subtree_ids(node_id)
            if not match_set.intersection(subtree):
                false_positive_visits += 1
        return sorted(matches), false_positive_visits

    def _subtree_ids(self, node_id: int) -> List[int]:
        result = []
        stack = [node_id]
        while stack:
            current = stack.pop()
            result.append(current)
            stack.extend(self.nodes[current].child_ids)
        return result


class BloomIndexClient:
    """Client role: keys, trapdoors, index construction and querying."""

    def __init__(self, prg: DeterministicPRG,
                 false_positive_rate: float = 0.01) -> None:
        self.prg = prg
        self.false_positive_rate = false_positive_rate
        self._trapdoor_key = derive_seed(prg.seed, _TRAPDOOR_LABEL)

    def trapdoor(self, tag: str) -> bytes:
        """Deterministic trapdoor for a tag name."""
        return hmac.new(self._trapdoor_key, tag.encode("utf-8"),
                        hashlib.sha256).digest()

    def _tag_code(self, tag: str) -> bytes:
        return hmac.new(derive_seed(self.prg.seed, _CODE_LABEL),
                        tag.encode("utf-8"), hashlib.sha256).digest()[:_CODE_BYTES]

    # -- outsourcing -------------------------------------------------------------------
    def outsource(self, document: XmlDocument) -> BloomTreeIndex:
        """Build the per-node Bloom index for a document."""
        index = preorder_index(document)
        nodes: Dict[int, BloomIndexNode] = {}

        def build(element: XmlElement, parent_id: Optional[int]) -> BloomFilter:
            node_id = index[id(element)]
            subtree_tags = set(element.descendant_tags())
            bloom = BloomFilter.for_capacity(len(subtree_tags), self.false_positive_rate)
            for tag in subtree_tags:
                bloom.add(self.trapdoor(tag))
            node = BloomIndexNode(node_id, parent_id, bloom, self._tag_code(element.tag))
            nodes[node_id] = node
            for child in element.children:
                build(child, node_id)
                node.child_ids.append(index[id(child)])
            return bloom

        build(document.root, None)
        return BloomTreeIndex(nodes, index[id(document.root)])

    # -- querying -----------------------------------------------------------------------
    def lookup(self, index: BloomTreeIndex, tag: str) -> BaselineResult:
        """Element lookup ``//tag`` with Bloom-filter pruning."""
        stats = BaselineStats()
        trapdoor = self.trapdoor(tag)
        code = self._tag_code(tag)
        stats.bytes_to_server += len(trapdoor) + len(code)
        stats.round_trips += 1
        matches, false_positives = index.search(trapdoor, code, stats)
        stats.bytes_to_client += 8 * len(matches)
        return BaselineResult(matches, stats, false_positives=false_positives)


def build_bloom_index(document: XmlDocument, seed: bytes = b"bloom-seed",
                      false_positive_rate: float = 0.01) -> tuple:
    """Convenience constructor returning ``(client, index)``."""
    client = BloomIndexClient(DeterministicPRG(seed), false_positive_rate)
    return client, client.outsource(document)
