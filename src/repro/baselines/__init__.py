"""Comparison systems: plaintext search, download-everything, SWP-style
linear scanning and a Goh-style Bloom-filter index."""

from .bloom_index import (
    BloomFilter,
    BloomIndexClient,
    BloomTreeIndex,
    build_bloom_index,
)
from .common import BaselineResult, BaselineStats, element_ids, preorder_index
from .download_all import (
    DownloadAllClient,
    DownloadAllServer,
    decrypt_blob,
    encrypt_blob,
)
from .linear_scan import LinearScanClient, LinearScanIndex, build_linear_scan
from .plaintext import PlaintextSearchIndex

__all__ = [
    "BaselineResult",
    "BaselineStats",
    "preorder_index",
    "element_ids",
    "PlaintextSearchIndex",
    "DownloadAllClient",
    "DownloadAllServer",
    "encrypt_blob",
    "decrypt_blob",
    "LinearScanClient",
    "LinearScanIndex",
    "build_linear_scan",
    "BloomFilter",
    "BloomIndexClient",
    "BloomTreeIndex",
    "build_bloom_index",
]
