"""Baseline 3: linear scan over per-node searchable tokens (SWP-style).

The related-work section of the paper ([2] Song, Wagner, Perrig and the
authors' own linear-search experiments [15]) describes keyword search by
scanning *every* encrypted item and testing it against a trapdoor.  This
module implements that cost profile for XML element tags:

* outsourcing stores, per node, a public salt and a deterministic code
  ``HMAC(trapdoor(tag), salt)`` where ``trapdoor(tag) = HMAC(key, tag)``;
* a query sends ``trapdoor(tag)``; the server recomputes the code for all
  ``n`` nodes and returns the ids that match.

The essential behavioural property preserved from the original scheme is
that the server must touch every node for every query (no pruning), which
is exactly the contrast the paper draws with its tree-structured index.
Like SWP, the access pattern (which nodes matched) leaks to the server.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Dict, List, Union

from ..errors import QueryError
from ..prg import DeterministicPRG, derive_seed
from ..xmltree import XmlDocument
from ..xpath import LocationPath, evaluate_xpath, parse_xpath
from .common import BaselineResult, BaselineStats, element_ids, preorder_index

__all__ = ["LinearScanIndex", "LinearScanClient", "build_linear_scan"]

_TRAPDOOR_LABEL = "swp-trapdoor-key"
_SALT_LABEL = "swp-node-salt"
_CODE_BYTES = 16
_SALT_BYTES = 16


def _code(trapdoor: bytes, salt: bytes) -> bytes:
    return hmac.new(trapdoor, salt, hashlib.sha256).digest()[:_CODE_BYTES]


class LinearScanIndex:
    """The server-side index: one ``(salt, code)`` pair per node."""

    def __init__(self, entries: List[Dict[str, bytes]],
                 structure_parents: List[int]) -> None:
        self.entries = entries
        #: Parent id per node (-1 for the root); kept so result node ids can be
        #: interpreted, mirroring the public structure of the main scheme.
        self.structure_parents = structure_parents

    def node_count(self) -> int:
        """Number of indexed nodes."""
        return len(self.entries)

    def scan(self, trapdoor: bytes, stats: BaselineStats) -> List[int]:
        """Test every node against the trapdoor; returns matching node ids."""
        matches: List[int] = []
        for node_id, entry in enumerate(self.entries):
            stats.server_operations += 1
            stats.nodes_visited += 1
            if _code(trapdoor, entry["salt"]) == entry["code"]:
                matches.append(node_id)
        return matches

    def storage_bits(self) -> int:
        """Index storage: salt plus code per node."""
        return len(self.entries) * (_SALT_BYTES + _CODE_BYTES) * 8


class LinearScanClient:
    """The client role: key management, trapdoors, multi-step queries."""

    def __init__(self, prg: DeterministicPRG) -> None:
        self.prg = prg
        self._trapdoor_key = derive_seed(prg.seed, _TRAPDOOR_LABEL)

    # -- outsourcing --------------------------------------------------------------
    def outsource(self, document: XmlDocument) -> LinearScanIndex:
        """Build the per-node token index for a document."""
        index = preorder_index(document)
        entries: List[Dict[str, bytes]] = [None] * document.size()  # type: ignore
        parents: List[int] = [-1] * document.size()
        for element in document.iter():
            node_id = index[id(element)]
            salt = self.prg.stream(_SALT_LABEL, node_id).read(_SALT_BYTES)
            entries[node_id] = {
                "salt": salt,
                "code": _code(self.trapdoor(element.tag), salt),
            }
            if element.parent is not None:
                parents[node_id] = index[id(element.parent)]
        return LinearScanIndex(entries, parents)

    def trapdoor(self, tag: str) -> bytes:
        """Deterministic trapdoor for a tag name."""
        return hmac.new(self._trapdoor_key, tag.encode("utf-8"),
                        hashlib.sha256).digest()

    # -- querying ------------------------------------------------------------------------
    def lookup(self, index: LinearScanIndex, tag: str) -> BaselineResult:
        """Element lookup ``//tag`` by scanning all nodes."""
        stats = BaselineStats()
        trapdoor = self.trapdoor(tag)
        stats.bytes_to_server += len(trapdoor)
        stats.round_trips += 1
        matches = index.scan(trapdoor, stats)
        stats.bytes_to_client += 8 * len(matches)
        return BaselineResult(matches, stats)

    def query(self, index: LinearScanIndex, xpath: Union[str, LocationPath]
              ) -> BaselineResult:
        """Multi-step path query: one scan per step, joined via the structure.

        The token index knows nothing about tree containment, so each step
        scans all ``n`` nodes and the client joins the per-step matches with
        the public parent structure (child = parent link, descendant =
        transitive parent link).
        """
        path = parse_xpath(xpath) if isinstance(xpath, str) else xpath
        stats = BaselineStats()
        parents = index.structure_parents

        def is_descendant(node: int, ancestor: int) -> bool:
            current = parents[node]
            while current != -1:
                if current == ancestor:
                    return True
                current = parents[current]
            return False

        current_matches: List[int] = []
        for step_number, step in enumerate(path.steps):
            if step.is_wildcard():
                step_matches = list(range(index.node_count()))
                stats.nodes_visited += index.node_count()
            else:
                trapdoor = self.trapdoor(step.tag)
                stats.bytes_to_server += len(trapdoor)
                stats.round_trips += 1
                step_matches = index.scan(trapdoor, stats)
                stats.bytes_to_client += 8 * len(step_matches)
            if step_number == 0:
                from ..xpath import Axis

                if step.axis is Axis.CHILD:
                    step_matches = [m for m in step_matches if parents[m] == -1]
                current_matches = step_matches
                continue
            from ..xpath import Axis

            if step.axis is Axis.CHILD:
                allowed = set(current_matches)
                current_matches = [m for m in step_matches if parents[m] in allowed]
            else:
                current_matches = [m for m in step_matches
                                   if any(is_descendant(m, a) for a in current_matches)]
        return BaselineResult(sorted(set(current_matches)), stats)


def build_linear_scan(document: XmlDocument,
                      seed: bytes = b"linear-scan-seed"
                      ) -> tuple:
    """Convenience constructor returning ``(client, index)``."""
    client = LinearScanClient(DeterministicPRG(seed))
    return client, client.outsource(document)
