"""Flat coefficient kernels: the fast path of the polynomial layer.

:class:`~repro.algebra.poly.Polynomial` is generic over a
:class:`~repro.algebra.rings.CoefficientRing`, which costs one virtual
``ring.add``/``ring.mul`` call per coefficient.  For the two coefficient
domains the scheme actually runs on — ``F_p`` (plain ints modulo a local
``p``) and ``Z`` (native bigints) — that dispatch dominates the runtime of
encoding (§4.1), share splitting (§4.2) and query evaluation (§4.3).

A *kernel* is a small strategy object operating on flat sequences of
canonical coefficients (ascending degree, no trailing zeros).  Kernels
return trimmed ``list``\\ s that :meth:`Polynomial._from_canonical` wraps
without re-canonicalising.  A coefficient ring advertises its kernel via
:meth:`CoefficientRing.kernel`; rings without one (e.g. the extension
field, whose elements are tuples) keep the generic reference path.

Two kernels ship here:

* :class:`FpKernel` — coefficients in ``[0, p)``.  Products are computed
  as one integer convolution (Karatsuba above a cutoff) followed by a
  single ``% p`` pass, instead of a modular reduction per term.
* :class:`ZKernel` — native arbitrary-precision integer arithmetic.

The module-level switch :func:`use_kernels` disables every fast path at
once, which is how the property tests prove the kernels bit-identical to
the generic implementation and how the benchmarks measure the speedup.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Sequence, Tuple

__all__ = [
    "FpKernel",
    "ZKernel",
    "Z_KERNEL",
    "kernels_enabled",
    "use_kernels",
    "KARATSUBA_CUTOFF",
]

#: Degree (in coefficients) below which schoolbook multiplication wins.
#: Karatsuba's extra list traffic only pays off once the quadratic term
#: dominates; 40 coefficients is a robust crossover for CPython ints.
KARATSUBA_CUTOFF = 40

_ENABLED = True


def kernels_enabled() -> bool:
    """True when rings should advertise their fast kernels."""
    return _ENABLED


@contextmanager
def use_kernels(enabled: bool) -> Iterator[None]:
    """Temporarily enable/disable every kernel fast path.

    ``with use_kernels(False): ...`` forces the generic reference
    implementation everywhere — used by the property tests and by the
    benchmark suite's baseline measurements.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = enabled
    try:
        yield
    finally:
        _ENABLED = previous


# -- shared integer convolution helpers ------------------------------------------


def _int_add(a: Sequence[int], b: Sequence[int]) -> List[int]:
    if len(a) < len(b):
        a, b = b, a
    out = [x + y for x, y in zip(a, b)]
    out += a[len(b):]
    return out


def _school_mul(a: Sequence[int], b: Sequence[int]) -> List[int]:
    out = [0] * (len(a) + len(b) - 1)
    for i, x in enumerate(a):
        if x:
            for j, y in enumerate(b):
                out[i + j] += x * y
    return out


def _int_mul(a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Integer coefficient convolution; Karatsuba above the cutoff."""
    if not a or not b:
        return []
    if min(len(a), len(b)) <= KARATSUBA_CUTOFF:
        return _school_mul(a, b)
    k = max(len(a), len(b)) // 2
    a0, a1 = a[:k], a[k:]
    b0, b1 = b[:k], b[k:]
    z0 = _int_mul(a0, b0)
    z2 = _int_mul(a1, b1)
    z1 = _int_mul(_int_add(a0, a1), _int_add(b0, b1))
    out = [0] * (len(a) + len(b) - 1)
    for i, v in enumerate(z0):
        out[i] += v
        out[i + k] -= v
    for i, v in enumerate(z2):
        out[i + 2 * k] += v
        out[i + k] -= v
    for i, v in enumerate(z1):
        out[i + k] += v
    return out


def _trim(coeffs: List[int]) -> List[int]:
    while coeffs and not coeffs[-1]:
        coeffs.pop()
    return coeffs


def _pack(coeffs: Sequence[int], limb: int) -> int:
    """Pack non-negative coefficients into one integer with ``limb``-byte limbs."""
    buf = bytearray(len(coeffs) * limb)
    offset = 0
    for c in coeffs:
        if c:
            buf[offset:offset + limb] = c.to_bytes(limb, "little")
        offset += limb
    return int.from_bytes(buf, "little")


#: Below this operand length (in coefficients) plain schoolbook beats the
#: pack/unpack overhead of Kronecker substitution.
KRONECKER_CUTOFF = 8


class FpKernel:
    """Flat-list arithmetic on coefficients in ``[0, p)``.

    Inputs are read-only sequences of canonical residues; outputs are
    trimmed lists of canonical residues.  Sums and convolutions accumulate
    in plain integers and reduce modulo ``p`` once per output coefficient.

    Products use Kronecker substitution: both operands are packed into one
    big integer with fixed-width limbs wide enough that convolution columns
    cannot carry, multiplied with CPython's native (Karatsuba) bigint
    multiply, and the product's limbs are reduced mod ``p``.  That moves the
    O(n^2)/O(n^1.58) work into C; only O(n) packing runs in Python.
    """

    __slots__ = ("p",)

    def __init__(self, p: int) -> None:
        self.p = p

    def add(self, a: Sequence[int], b: Sequence[int]) -> List[int]:
        p = self.p
        if len(a) < len(b):
            a, b = b, a
        out = [(x + y) % p for x, y in zip(a, b)]
        out += a[len(b):]
        return _trim(out) if len(a) == len(b) else out

    def sub(self, a: Sequence[int], b: Sequence[int]) -> List[int]:
        p = self.p
        out = [(x - y) % p for x, y in zip(a, b)]
        if len(a) > len(b):
            out += a[len(b):]
            return out
        out += [(-y) % p for y in b[len(a):]]
        return _trim(out) if len(a) == len(b) else out

    def neg(self, a: Sequence[int]) -> List[int]:
        p = self.p
        return [(-x) % p for x in a]

    def mul(self, a: Sequence[int], b: Sequence[int]) -> List[int]:
        p = self.p
        if not a or not b:
            return []
        if min(len(a), len(b)) <= KRONECKER_CUTOFF:
            return _trim([c % p for c in _school_mul(a, b)])
        # Limb width: a convolution column is a sum of at most min(len) products
        # of residues < p, so every column fits in `limb` bytes and columns
        # cannot carry into each other.
        bound = min(len(a), len(b)) * (p - 1) * (p - 1)
        limb = (bound.bit_length() + 7) // 8
        packed = _pack(a, limb) * _pack(b, limb)
        n = len(a) + len(b) - 1
        raw = packed.to_bytes(n * limb, "little")
        from_bytes = int.from_bytes
        out = [from_bytes(raw[i:i + limb], "little") % p
               for i in range(0, n * limb, limb)]
        return _trim(out)

    def scalar_mul(self, a: Sequence[int], scalar: int) -> List[int]:
        p = self.p
        if not scalar % p:
            return []
        return _trim([(x * scalar) % p for x in a])

    def divmod(self, a: Sequence[int],
               b: Sequence[int]) -> Tuple[List[int], List[int]]:
        if not b:
            raise ZeroDivisionError("polynomial division by zero")
        p = self.p
        lead_inv = pow(b[-1], -1, p)
        d = len(b) - 1
        rem = list(a)
        if len(rem) <= d:
            return [], _trim(rem)
        quotient = [0] * (len(rem) - d)
        # Remainder entries stay unreduced between steps; each head
        # coefficient is reduced as it is consumed.
        for i in range(len(rem) - 1, d - 1, -1):
            head = rem[i] % p
            if head:
                factor = (head * lead_inv) % p
                quotient[i - d] = factor
                shift = i - d
                for j, y in enumerate(b):
                    rem[shift + j] -= factor * y
        return _trim(quotient), _trim([c % p for c in rem[:d]])

    def derivative(self, a: Sequence[int]) -> List[int]:
        p = self.p
        return _trim([(i * c) % p for i, c in enumerate(a)][1:])

    def evaluate(self, a: Sequence[int], point: int) -> int:
        p = self.p
        point %= p
        acc = 0
        for c in reversed(a):
            acc = (acc * point + c) % p
        return acc

    def evaluate_many(self, seqs: Sequence[Sequence[int]], point: int) -> List[int]:
        """Evaluate many coefficient vectors at one point.

        Shares one power table across all vectors so each evaluation is a
        dot product with a single final reduction.
        """
        p = self.p
        point %= p
        longest = max((len(s) for s in seqs), default=0)
        powers = [0] * longest
        if longest:
            powers[0] = 1 % p
        for i in range(1, longest):
            powers[i] = powers[i - 1] * point % p
        return [sum(c * w for c, w in zip(s, powers)) % p for s in seqs]


class ZKernel:
    """Native bigint arithmetic for the ``Z`` coefficient domain."""

    __slots__ = ()

    def add(self, a: Sequence[int], b: Sequence[int]) -> List[int]:
        out = _int_add(a, b)
        return _trim(out) if len(a) == len(b) else out

    def sub(self, a: Sequence[int], b: Sequence[int]) -> List[int]:
        out = [x - y for x, y in zip(a, b)]
        if len(a) > len(b):
            out += a[len(b):]
            return out
        out += [-y for y in b[len(a):]]
        return _trim(out) if len(a) == len(b) else out

    def neg(self, a: Sequence[int]) -> List[int]:
        return [-x for x in a]

    def mul(self, a: Sequence[int], b: Sequence[int]) -> List[int]:
        return _trim(_int_mul(a, b))

    def scalar_mul(self, a: Sequence[int], scalar: int) -> List[int]:
        if not scalar:
            return []
        return [x * scalar for x in a]

    def divmod(self, a: Sequence[int],
               b: Sequence[int]) -> Tuple[List[int], List[int]]:
        if not b:
            raise ZeroDivisionError("polynomial division by zero")
        lead = b[-1]
        if lead not in (1, -1):
            raise ZeroDivisionError(f"{lead} is not a unit in Z")
        d = len(b) - 1
        rem = list(a)
        if len(rem) <= d:
            return [], _trim(rem)
        quotient = [0] * (len(rem) - d)
        for i in range(len(rem) - 1, d - 1, -1):
            head = rem[i]
            if head:
                factor = head * lead  # head / lead with lead in {1, -1}
                quotient[i - d] = factor
                shift = i - d
                for j, y in enumerate(b):
                    rem[shift + j] -= factor * y
        return _trim(quotient), _trim(rem[:d])

    def derivative(self, a: Sequence[int]) -> List[int]:
        return _trim([i * c for i, c in enumerate(a)][1:])

    def evaluate(self, a: Sequence[int], point: int) -> int:
        acc = 0
        for c in reversed(a):
            acc = acc * point + c
        return acc

    def evaluate_many(self, seqs: Sequence[Sequence[int]], point: int) -> List[int]:
        # Horner per vector: a shared power table would materialise huge
        # bigints for high degrees, so the simple loop wins over Z.
        return [self.evaluate(s, point) for s in seqs]


#: Shared stateless instance advertised by every ``IntegerRing``.
Z_KERNEL = ZKernel()
