"""Elementary modular arithmetic used throughout the library.

All functions operate on plain Python integers.  They are the numeric
bedrock for the prime fields (:mod:`repro.algebra.fp`), the quotient rings
used by the encoding scheme (:mod:`repro.algebra.quotient`) and the Shamir
secret sharing substrate (:mod:`repro.sharing.shamir`).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

__all__ = [
    "egcd",
    "modinv",
    "modpow",
    "crt_pair",
    "crt",
    "int_nth_root",
    "is_perfect_power",
    "legendre_symbol",
    "tonelli_shanks",
]


def egcd(a: int, b: int) -> Tuple[int, int, int]:
    """Extended Euclidean algorithm.

    Returns ``(g, x, y)`` such that ``a*x + b*y == g == gcd(a, b)``.
    The gcd ``g`` is always non-negative.
    """
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    if old_r < 0:
        old_r, old_s, old_t = -old_r, -old_s, -old_t
    return old_r, old_s, old_t


def modinv(a: int, m: int) -> int:
    """Multiplicative inverse of ``a`` modulo ``m``.

    Raises :class:`ZeroDivisionError` when ``gcd(a, m) != 1``.
    """
    if m <= 0:
        raise ValueError("modulus must be positive")
    a %= m
    g, x, _ = egcd(a, m)
    if g != 1:
        raise ZeroDivisionError(f"{a} is not invertible modulo {m} (gcd={g})")
    return x % m


def modpow(base: int, exponent: int, modulus: int) -> int:
    """Modular exponentiation supporting negative exponents.

    For negative exponents the base must be invertible modulo ``modulus``.
    """
    if modulus <= 0:
        raise ValueError("modulus must be positive")
    if exponent < 0:
        base = modinv(base, modulus)
        exponent = -exponent
    return pow(base, exponent, modulus)


def crt_pair(r1: int, m1: int, r2: int, m2: int) -> Tuple[int, int]:
    """Combine two congruences ``x ≡ r1 (mod m1)`` and ``x ≡ r2 (mod m2)``.

    Returns ``(r, m)`` with ``m = lcm(m1, m2)`` describing the combined
    congruence.  Raises :class:`ValueError` when the congruences are
    incompatible.
    """
    g, p, _ = egcd(m1, m2)
    if (r2 - r1) % g != 0:
        raise ValueError("incompatible congruences")
    lcm = m1 // g * m2
    diff = (r2 - r1) // g
    r = (r1 + m1 * (diff * p % (m2 // g))) % lcm
    return r, lcm


def crt(residues: Sequence[int], moduli: Sequence[int]) -> Tuple[int, int]:
    """Chinese remainder theorem for an arbitrary list of congruences."""
    if len(residues) != len(moduli):
        raise ValueError("residues and moduli must have the same length")
    if not residues:
        raise ValueError("need at least one congruence")
    r, m = residues[0] % moduli[0], moduli[0]
    for r2, m2 in zip(residues[1:], moduli[1:]):
        r, m = crt_pair(r, m, r2, m2)
    return r, m


def int_nth_root(n: int, k: int) -> int:
    """Floor of the ``k``-th root of a non-negative integer ``n``."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if k <= 0:
        raise ValueError("k must be positive")
    if n in (0, 1) or k == 1:
        return n
    hi = 1 << ((n.bit_length() + k - 1) // k + 1)
    lo = 0
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if mid ** k <= n:
            lo = mid
        else:
            hi = mid - 1
    return lo


def is_perfect_power(n: int) -> Tuple[int, int]:
    """Decompose ``n`` as ``base ** exponent`` with the largest exponent.

    Returns ``(base, exponent)``; for numbers that are not perfect powers the
    exponent is 1.  Used to recognise prime powers ``q = p**e``.
    """
    if n < 2:
        return n, 1
    for k in range(n.bit_length(), 1, -1):
        root = int_nth_root(n, k)
        if root >= 2 and root ** k == n:
            base, exp = is_perfect_power(root)
            return base, exp * k
    return n, 1


def legendre_symbol(a: int, p: int) -> int:
    """Legendre symbol ``(a/p)`` for an odd prime ``p``: 1, -1 or 0."""
    a %= p
    if a == 0:
        return 0
    result = pow(a, (p - 1) // 2, p)
    return -1 if result == p - 1 else result


def tonelli_shanks(a: int, p: int) -> int:
    """Square root of ``a`` modulo an odd prime ``p``.

    Raises :class:`ValueError` if ``a`` is a non-residue.
    """
    a %= p
    if a == 0:
        return 0
    if p == 2:
        return a
    if legendre_symbol(a, p) != 1:
        raise ValueError(f"{a} is not a quadratic residue modulo {p}")
    if p % 4 == 3:
        return pow(a, (p + 1) // 4, p)
    # Factor p-1 as q * 2^s with q odd.
    q, s = p - 1, 0
    while q % 2 == 0:
        q //= 2
        s += 1
    # Find a non-residue z.
    z = 2
    while legendre_symbol(z, p) != -1:
        z += 1
    m = s
    c = pow(z, q, p)
    t = pow(a, q, p)
    r = pow(a, (q + 1) // 2, p)
    while t != 1:
        # Find least i with t^(2^i) == 1.
        i, t2 = 0, t
        while t2 != 1:
            t2 = t2 * t2 % p
            i += 1
        b = pow(c, 1 << (m - i - 1), p)
        m = i
        c = b * b % p
        t = t * c % p
        r = r * b % p
    return r
