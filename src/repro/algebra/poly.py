"""Dense univariate polynomials over an arbitrary coefficient ring.

This is the workhorse data structure of the reproduction: XML elements are
encoded as polynomials (§4.1 of the paper), shares of elements are random
polynomials (§4.2), and queries are evaluated by substituting points into
polynomials (§4.3).

A :class:`Polynomial` is an immutable value: a tuple of coefficients in
*ascending* degree order together with the coefficient ring they live in
(:class:`~repro.algebra.rings.CoefficientRing`).  The zero polynomial has an
empty coefficient tuple and degree ``-1``.
"""

from __future__ import annotations

import random
from typing import Any, Iterable, List, Optional, Sequence, Tuple

from .rings import CoefficientRing, IntegerRing, ZZ

__all__ = ["Polynomial", "poly_gcd", "is_irreducible_mod_p"]


class Polynomial:
    """Immutable dense polynomial ``c0 + c1*x + ... + cn*x^n`` over a ring.

    Arithmetic dispatches to the ring's flat coefficient kernel
    (:meth:`CoefficientRing.kernel`) when one is advertised; the inline
    per-element implementations below remain the reference semantics and
    serve rings without a kernel.
    """

    __slots__ = ("ring", "coeffs")

    def __init__(self, coeffs: Iterable[Any], ring: CoefficientRing = ZZ) -> None:
        canonical = [ring.canonical(c) for c in coeffs]
        while canonical and ring.is_zero(canonical[-1]):
            canonical.pop()
        self.ring = ring
        self.coeffs: Tuple[Any, ...] = tuple(canonical)

    @classmethod
    def _from_canonical(cls, coeffs: Iterable[Any],
                        ring: CoefficientRing) -> "Polynomial":
        """Wrap already-canonical, trimmed coefficients (kernel outputs)."""
        poly = object.__new__(cls)
        poly.ring = ring
        poly.coeffs = tuple(coeffs)
        return poly

    # -- constructors --------------------------------------------------------
    @classmethod
    def zero(cls, ring: CoefficientRing = ZZ) -> "Polynomial":
        """The zero polynomial."""
        return cls((), ring)

    @classmethod
    def one(cls, ring: CoefficientRing = ZZ) -> "Polynomial":
        """The constant polynomial 1."""
        return cls((ring.one,), ring)

    @classmethod
    def constant(cls, value: Any, ring: CoefficientRing = ZZ) -> "Polynomial":
        """A constant polynomial."""
        return cls((value,), ring)

    @classmethod
    def x(cls, ring: CoefficientRing = ZZ) -> "Polynomial":
        """The monomial ``x``."""
        return cls((ring.zero, ring.one), ring)

    @classmethod
    def monomial(cls, degree: int, coefficient: Any = None,
                 ring: CoefficientRing = ZZ) -> "Polynomial":
        """The monomial ``coefficient * x**degree``."""
        if degree < 0:
            raise ValueError("degree must be non-negative")
        coefficient = ring.one if coefficient is None else coefficient
        return cls([ring.zero] * degree + [coefficient], ring)

    @classmethod
    def from_roots(cls, roots: Sequence[Any], ring: CoefficientRing = ZZ) -> "Polynomial":
        """Monic polynomial ``prod (x - root)`` — the paper's leaf/inner encoding."""
        result = cls.one(ring)
        for root in roots:
            result = result * cls((ring.neg(ring.coerce(root)), ring.one), ring)
        return result

    @classmethod
    def linear_root(cls, root: Any, ring: CoefficientRing = ZZ) -> "Polynomial":
        """The polynomial ``x - root`` used for a single tag name."""
        return cls((ring.neg(ring.coerce(root)), ring.one), ring)

    @classmethod
    def random(cls, degree_bound: int, ring: CoefficientRing,
               rng: random.Random) -> "Polynomial":
        """Random polynomial with degree strictly below ``degree_bound``."""
        if degree_bound <= 0:
            return cls.zero(ring)
        return cls([ring.random_element(rng) for _ in range(degree_bound)], ring)

    # -- basic queries --------------------------------------------------------
    @property
    def degree(self) -> int:
        """Degree of the polynomial; the zero polynomial has degree ``-1``."""
        return len(self.coeffs) - 1

    def is_zero(self) -> bool:
        """True for the zero polynomial."""
        return not self.coeffs

    def is_constant(self) -> bool:
        """True when the degree is at most zero."""
        return len(self.coeffs) <= 1

    def coefficient(self, degree: int) -> Any:
        """Coefficient of ``x**degree`` (zero beyond the stored length)."""
        if degree < 0:
            raise ValueError("degree must be non-negative")
        if degree >= len(self.coeffs):
            return self.ring.zero
        return self.coeffs[degree]

    @property
    def constant_term(self) -> Any:
        """Coefficient of ``x**0``."""
        return self.coefficient(0)

    @property
    def leading_coefficient(self) -> Any:
        """Coefficient of the highest-degree term (zero for the zero poly)."""
        return self.coeffs[-1] if self.coeffs else self.ring.zero

    def is_monic(self) -> bool:
        """True when the leading coefficient equals 1."""
        return bool(self.coeffs) and self.ring.eq(self.coeffs[-1], self.ring.one)

    # -- arithmetic ------------------------------------------------------------
    def _check_ring(self, other: "Polynomial") -> None:
        if self.ring != other.ring:
            raise ValueError(
                f"polynomials live in different rings: {self.ring.name} vs {other.ring.name}"
            )

    def __add__(self, other: "Polynomial") -> "Polynomial":
        if not isinstance(other, Polynomial):
            return NotImplemented
        self._check_ring(other)
        ring = self.ring
        kernel = ring.kernel()
        if kernel is not None:
            return Polynomial._from_canonical(
                kernel.add(self.coeffs, other.coeffs), ring)
        n = max(len(self.coeffs), len(other.coeffs))
        coeffs = [
            ring.add(self.coefficient(i), other.coefficient(i)) for i in range(n)
        ]
        return Polynomial(coeffs, ring)

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        if not isinstance(other, Polynomial):
            return NotImplemented
        self._check_ring(other)
        ring = self.ring
        kernel = ring.kernel()
        if kernel is not None:
            return Polynomial._from_canonical(
                kernel.sub(self.coeffs, other.coeffs), ring)
        n = max(len(self.coeffs), len(other.coeffs))
        coeffs = [
            ring.sub(self.coefficient(i), other.coefficient(i)) for i in range(n)
        ]
        return Polynomial(coeffs, ring)

    def __neg__(self) -> "Polynomial":
        kernel = self.ring.kernel()
        if kernel is not None:
            return Polynomial._from_canonical(kernel.neg(self.coeffs), self.ring)
        return Polynomial([self.ring.neg(c) for c in self.coeffs], self.ring)

    def __mul__(self, other: Any) -> "Polynomial":
        ring = self.ring
        kernel = ring.kernel()
        if isinstance(other, Polynomial):
            self._check_ring(other)
            if kernel is not None:
                return Polynomial._from_canonical(
                    kernel.mul(self.coeffs, other.coeffs), ring)
            if self.is_zero() or other.is_zero():
                return Polynomial.zero(ring)
            result = [ring.zero] * (len(self.coeffs) + len(other.coeffs) - 1)
            for i, a in enumerate(self.coeffs):
                if ring.is_zero(a):
                    continue
                for j, b in enumerate(other.coeffs):
                    result[i + j] = ring.add(result[i + j], ring.mul(a, b))
            return Polynomial(result, ring)
        # Scalar multiplication.
        scalar = ring.coerce(other)
        if kernel is not None:
            return Polynomial._from_canonical(
                kernel.scalar_mul(self.coeffs, scalar), ring)
        return Polynomial([ring.mul(c, scalar) for c in self.coeffs], ring)

    def __rmul__(self, other: Any) -> "Polynomial":
        return self.__mul__(other)

    def __pow__(self, exponent: int) -> "Polynomial":
        if exponent < 0:
            raise ValueError("negative powers of polynomials are not defined")
        result = Polynomial.one(self.ring)
        base = self
        while exponent:
            if exponent & 1:
                result = result * base
            base = base * base
            exponent >>= 1
        return result

    def scale(self, scalar: Any) -> "Polynomial":
        """Multiply every coefficient by a ring scalar."""
        return self * scalar

    def shift(self, degrees: int) -> "Polynomial":
        """Multiply by ``x**degrees``."""
        if degrees < 0:
            raise ValueError("shift must be non-negative")
        if self.is_zero():
            return self
        return Polynomial._from_canonical(
            [self.ring.zero] * degrees + list(self.coeffs), self.ring)

    def divmod(self, divisor: "Polynomial") -> Tuple["Polynomial", "Polynomial"]:
        """Polynomial division with remainder.

        Requires the divisor's leading coefficient to be invertible in the
        coefficient ring (always true over a field; true for monic divisors
        over ``Z``, which is the case the scheme needs for ``r(x)``).
        """
        if not isinstance(divisor, Polynomial):
            raise TypeError("divisor must be a Polynomial")
        self._check_ring(divisor)
        if divisor.is_zero():
            raise ZeroDivisionError("polynomial division by zero")
        ring = self.ring
        kernel = ring.kernel()
        if kernel is not None:
            quotient, remainder = kernel.divmod(self.coeffs, divisor.coeffs)
            return (Polynomial._from_canonical(quotient, ring),
                    Polynomial._from_canonical(remainder, ring))
        lead_inv = ring.invert(divisor.leading_coefficient)
        remainder = list(self.coeffs)
        quotient = [ring.zero] * max(0, len(remainder) - len(divisor.coeffs) + 1)
        d = divisor.degree
        while len(remainder) - 1 >= d and remainder:
            # Strip trailing zeros that may have appeared.
            while remainder and ring.is_zero(remainder[-1]):
                remainder.pop()
            if len(remainder) - 1 < d or not remainder:
                break
            shift = len(remainder) - 1 - d
            factor = ring.mul(remainder[-1], lead_inv)
            quotient[shift] = ring.add(quotient[shift], factor)
            for i, c in enumerate(divisor.coeffs):
                remainder[shift + i] = ring.sub(remainder[shift + i], ring.mul(factor, c))
        return Polynomial(quotient, ring), Polynomial(remainder, ring)

    def __mod__(self, divisor: "Polynomial") -> "Polynomial":
        return self.divmod(divisor)[1]

    def __floordiv__(self, divisor: "Polynomial") -> "Polynomial":
        return self.divmod(divisor)[0]

    # -- evaluation & calculus ---------------------------------------------------
    def evaluate(self, point: Any) -> Any:
        """Evaluate at ``point`` using Horner's rule (in the coefficient ring)."""
        ring = self.ring
        point = ring.coerce(point)
        kernel = ring.kernel()
        if kernel is not None:
            return kernel.evaluate(self.coeffs, point)
        result = ring.zero
        for coefficient in reversed(self.coeffs):
            result = ring.add(ring.mul(result, point), coefficient)
        return result

    def __call__(self, point: Any) -> Any:
        return self.evaluate(point)

    def derivative(self) -> "Polynomial":
        """Formal derivative."""
        ring = self.ring
        kernel = ring.kernel()
        if kernel is not None:
            return Polynomial._from_canonical(kernel.derivative(self.coeffs), ring)
        # i*c via one scalar multiply: coerce embeds Z -> ring, so
        # ring.mul(c, coerce(i)) equals the i-fold sum of c in any ring.
        coeffs = [ring.mul(c, ring.coerce(i))
                  for i, c in enumerate(self.coeffs)][1:]
        return Polynomial(coeffs, ring)

    def compose(self, inner: "Polynomial") -> "Polynomial":
        """Composition ``self(inner(x))``."""
        self._check_ring(inner)
        result = Polynomial.zero(self.ring)
        for coefficient in reversed(self.coeffs):
            result = result * inner + Polynomial.constant(coefficient, self.ring)
        return result

    def roots_in_field(self) -> List[Any]:
        """All roots in a *finite* coefficient field found by exhaustive search."""
        if not self.ring.is_field() or not hasattr(self.ring, "elements"):
            raise TypeError("roots_in_field requires a finite field coefficient ring")
        return [a for a in self.ring.elements() if self.ring.is_zero(self.evaluate(a))]

    # -- storage accounting --------------------------------------------------------
    def storage_bits(self) -> int:
        """Bits required to store the coefficient vector (see §5 of the paper)."""
        if self.is_zero():
            return self.ring.element_bits(self.ring.zero)
        return sum(self.ring.element_bits(c) for c in self.coeffs)

    # -- conversions / equality ------------------------------------------------------
    def to_list(self) -> List[Any]:
        """Coefficients in ascending degree order as a mutable list."""
        return list(self.coeffs)

    def map_ring(self, ring: CoefficientRing) -> "Polynomial":
        """Re-interpret the coefficients in another ring (e.g. ``Z`` -> ``F_p``)."""
        return Polynomial([ring.coerce(c) for c in self.coeffs], ring)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self.ring == other.ring and self.coeffs == other.coeffs

    def __hash__(self) -> int:
        return hash((self.ring, self.coeffs))

    def __bool__(self) -> bool:
        return not self.is_zero()

    # -- pretty printing ------------------------------------------------------------
    def __repr__(self) -> str:
        return f"Polynomial({list(self.coeffs)!r}, ring={self.ring.name})"

    def __str__(self) -> str:
        return self.pretty()

    def pretty(self, variable: str = "x") -> str:
        """Render like the paper's figures, e.g. ``3x^3 + 3x^2 + 3x + 3``."""
        if self.is_zero():
            return "0"
        parts: List[str] = []
        for degree in range(self.degree, -1, -1):
            c = self.coefficient(degree)
            if self.ring.is_zero(c):
                continue
            rendered = self.ring.format_element(c)
            negative = rendered.startswith("-")
            magnitude = rendered[1:] if negative else rendered
            if degree == 0:
                term = magnitude
            else:
                coeff_part = "" if magnitude == "1" else magnitude
                power = variable if degree == 1 else f"{variable}^{degree}"
                term = f"{coeff_part}{power}"
            if not parts:
                parts.append(("-" if negative else "") + term)
            else:
                parts.append(("- " if negative else "+ ") + term)
        return " ".join(parts)


def poly_gcd(a: Polynomial, b: Polynomial) -> Polynomial:
    """Monic greatest common divisor of two polynomials over a *field*."""
    if a.ring != b.ring:
        raise ValueError("polynomials must share a coefficient ring")
    if not a.ring.is_field():
        raise TypeError("poly_gcd requires a field coefficient ring")
    while not b.is_zero():
        a, b = b, a % b
    if a.is_zero():
        return a
    # Normalise to a monic polynomial.
    return a * a.ring.invert(a.leading_coefficient)


def is_irreducible_mod_p(poly: Polynomial, p: int) -> bool:
    """Rabin's irreducibility test for a polynomial over ``F_p``.

    ``poly`` may be given over any ring whose elements coerce to integers;
    it is reduced modulo ``p`` first.  A polynomial ``f`` of degree ``n`` is
    irreducible over ``F_p`` iff ``x^(p^n) ≡ x (mod f)`` and for every prime
    divisor ``q`` of ``n`` we have ``gcd(x^(p^(n/q)) - x, f) = 1``.
    """
    from .fp import PrimeField
    from .primes import prime_factors

    field = PrimeField(p)
    f = Polynomial([int(c) for c in poly.coeffs], field)
    n = f.degree
    if n <= 0:
        return False
    if n == 1:
        return True

    x = Polynomial.x(field)

    def _pow_x_mod(exponent: int) -> Polynomial:
        result = Polynomial.one(field)
        base = x % f
        while exponent:
            if exponent & 1:
                result = (result * base) % f
            base = (base * base) % f
            exponent >>= 1
        return result

    for q in prime_factors(n):
        h = _pow_x_mod(p ** (n // q)) - x
        if not poly_gcd(h % f, f).is_constant():
            return False
    return (_pow_x_mod(p ** n) - x) % f == Polynomial.zero(field)
