"""Primality testing and prime generation.

The encoding ring ``F_p[x]/(x^{p-1} - 1)`` of the paper requires a prime
``p`` strictly larger than the number of distinct tag names; the
``Z[x]/(r(x))`` ring requires an irreducible ``r``.  This module provides
the deterministic Miller--Rabin test used to pick such primes, a simple
sieve for small-prime enumeration, and helpers to recognise prime powers
``q = p**e`` (the paper states the general case for prime powers but gives
proofs for primes).
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Tuple

from .modint import is_perfect_power

__all__ = [
    "is_prime",
    "next_prime",
    "previous_prime",
    "random_prime",
    "primes_below",
    "prime_factors",
    "factorize",
    "is_prime_power",
    "smallest_prime_at_least",
]

# Deterministic Miller-Rabin witness sets (Sinclair / Jaeschke bounds).
_DETERMINISTIC_BASES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
_DETERMINISTIC_LIMIT = 3_317_044_064_679_887_385_961_981

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97,
)


def _miller_rabin_witness(n: int, a: int) -> bool:
    """Return True when ``a`` witnesses the compositeness of ``n``."""
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    x = pow(a, d, n)
    if x in (1, n - 1):
        return False
    for _ in range(r - 1):
        x = x * x % n
        if x == n - 1:
            return False
    return True


def is_prime(n: int, rounds: int = 32, rng: Optional[random.Random] = None) -> bool:
    """Miller--Rabin primality test.

    Deterministic for ``n`` below ~3.3e24, probabilistic with ``rounds``
    random bases beyond that.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    if n < _DETERMINISTIC_LIMIT:
        bases: Tuple[int, ...] = _DETERMINISTIC_BASES
    else:
        rng = rng or random.Random(0xC0FFEE ^ n)
        bases = tuple(rng.randrange(2, n - 1) for _ in range(rounds))
    return not any(_miller_rabin_witness(n, a % n) for a in bases if a % n > 1)


def next_prime(n: int) -> int:
    """Smallest prime strictly greater than ``n``."""
    candidate = max(n + 1, 2)
    if candidate == 2:
        return 2
    if candidate % 2 == 0:
        candidate += 1
    while not is_prime(candidate):
        candidate += 2
    return candidate


def smallest_prime_at_least(n: int) -> int:
    """Smallest prime greater than or equal to ``n``."""
    if n <= 2:
        return 2
    return n if is_prime(n) else next_prime(n)


def previous_prime(n: int) -> int:
    """Largest prime strictly smaller than ``n``; raises for ``n <= 2``."""
    if n <= 2:
        raise ValueError("there is no prime below 2")
    candidate = n - 1
    if candidate == 2:
        return 2
    if candidate % 2 == 0:
        candidate -= 1
    while candidate > 2 and not is_prime(candidate):
        candidate -= 2
    return candidate


def random_prime(bits: int, rng: Optional[random.Random] = None) -> int:
    """Random prime with exactly ``bits`` bits (``bits >= 2``)."""
    if bits < 2:
        raise ValueError("bits must be at least 2")
    rng = rng or random.Random()
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_prime(candidate):
            return candidate


def primes_below(limit: int) -> List[int]:
    """All primes strictly below ``limit`` (sieve of Eratosthenes)."""
    if limit <= 2:
        return []
    sieve = bytearray([1]) * limit
    sieve[0] = sieve[1] = 0
    for i in range(2, int(limit ** 0.5) + 1):
        if sieve[i]:
            sieve[i * i:limit:i] = bytearray(len(range(i * i, limit, i)))
    return [i for i in range(limit) if sieve[i]]


def factorize(n: int) -> List[Tuple[int, int]]:
    """Prime factorisation of ``n`` as a list of ``(prime, exponent)`` pairs.

    Trial division followed by Pollard's rho; adequate for the moduli sizes
    used in this library (at most a few hundred bits).
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if n == 1:
        return []
    factors: dict = {}

    def _record(p: int) -> None:
        factors[p] = factors.get(p, 0) + 1

    def _pollard_rho(m: int) -> int:
        if m % 2 == 0:
            return 2
        rng = random.Random(m)
        while True:
            x = rng.randrange(2, m)
            y, c, d = x, rng.randrange(1, m), 1
            while d == 1:
                x = (x * x + c) % m
                y = (y * y + c) % m
                y = (y * y + c) % m
                d = _gcd(abs(x - y), m)
            if d != m:
                return d

    def _gcd(a: int, b: int) -> int:
        while b:
            a, b = b, a % b
        return a

    stack = [n]
    while stack:
        m = stack.pop()
        if m == 1:
            continue
        if is_prime(m):
            _record(m)
            continue
        # Strip small factors first.
        reduced = m
        for p in _SMALL_PRIMES:
            while reduced % p == 0:
                _record(p)
                reduced //= p
        if reduced == 1:
            continue
        if is_prime(reduced):
            _record(reduced)
            continue
        d = _pollard_rho(reduced)
        stack.append(d)
        stack.append(reduced // d)
    return sorted(factors.items())


def prime_factors(n: int) -> List[int]:
    """Distinct prime factors of ``n`` in increasing order."""
    return [p for p, _ in factorize(n)]


def is_prime_power(q: int) -> Optional[Tuple[int, int]]:
    """Return ``(p, e)`` when ``q == p**e`` for a prime ``p``, else ``None``."""
    if q < 2:
        return None
    base, exponent = is_perfect_power(q)
    if is_prime(base):
        return base, exponent
    return None
