"""Algebraic substrate: modular arithmetic, fields, polynomials and the
two encoding rings of the paper (``F_p[x]/(x^{p-1}-1)`` and ``Z[x]/(r(x))``).
"""

from .fp import PrimeField
from .fpe import ExtensionField, find_irreducible_polynomial
from .interpolate import lagrange_evaluate_at, lagrange_interpolate
from .kernels import FpKernel, ZKernel, kernels_enabled, use_kernels
from .modint import crt, crt_pair, egcd, modinv, modpow
from .poly import Polynomial, is_irreducible_mod_p, poly_gcd
from .primes import (
    factorize,
    is_prime,
    is_prime_power,
    next_prime,
    prime_factors,
    previous_prime,
    primes_below,
    random_prime,
    smallest_prime_at_least,
)
from .quotient import (
    EncodingRing,
    FpQuotientRing,
    IntQuotientRing,
    default_int_modulus,
)
from .rings import CoefficientRing, IntegerRing, ZZ
from .vkernels import (
    VecFpKernel,
    fits_native_width,
    numpy_or_none,
    use_vector_kernels,
    vector_kernel_for,
    vector_kernels_enabled,
)

__all__ = [
    "CoefficientRing",
    "IntegerRing",
    "ZZ",
    "FpKernel",
    "ZKernel",
    "VecFpKernel",
    "kernels_enabled",
    "use_kernels",
    "fits_native_width",
    "numpy_or_none",
    "use_vector_kernels",
    "vector_kernel_for",
    "vector_kernels_enabled",
    "PrimeField",
    "ExtensionField",
    "find_irreducible_polynomial",
    "Polynomial",
    "poly_gcd",
    "is_irreducible_mod_p",
    "lagrange_interpolate",
    "lagrange_evaluate_at",
    "egcd",
    "modinv",
    "modpow",
    "crt",
    "crt_pair",
    "is_prime",
    "next_prime",
    "previous_prime",
    "random_prime",
    "primes_below",
    "prime_factors",
    "factorize",
    "is_prime_power",
    "smallest_prime_at_least",
    "EncodingRing",
    "FpQuotientRing",
    "IntQuotientRing",
    "default_int_modulus",
]
