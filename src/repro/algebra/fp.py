"""Prime fields ``F_p``.

The field is represented by a :class:`PrimeField` context object whose
elements are plain integers in ``[0, p)``.  This is the coefficient domain
of the paper's ``F_p[x]/(x^{p-1} - 1)`` encoding ring and the share domain
of Shamir secret sharing (:mod:`repro.sharing.shamir`).
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional

from .kernels import FpKernel, kernels_enabled
from .modint import modinv
from .primes import is_prime
from .rings import CoefficientRing
from .vkernels import vector_kernel_for, vector_kernels_enabled

__all__ = ["PrimeField"]


class PrimeField(CoefficientRing):
    """The finite field ``F_p`` for a prime ``p``.

    Elements are integers reduced into ``[0, p)``.  The class implements the
    :class:`~repro.algebra.rings.CoefficientRing` interface so generic
    polynomial code works over it unchanged.
    """

    def __init__(self, p: int, check_prime: bool = True) -> None:
        if p < 2:
            raise ValueError("field characteristic must be at least 2")
        if check_prime and not is_prime(p):
            raise ValueError(f"{p} is not prime; use ExtensionField for prime powers")
        self.p = p
        self.name = f"F_{p}"
        self._kernel = FpKernel(p)
        self._vkernel = vector_kernel_for(p)

    # -- constants ---------------------------------------------------------
    @property
    def zero(self) -> int:
        return 0

    @property
    def one(self) -> int:
        return 1 % self.p

    # -- arithmetic --------------------------------------------------------
    def add(self, a: int, b: int) -> int:
        return (a + b) % self.p

    def sub(self, a: int, b: int) -> int:
        return (a - b) % self.p

    def neg(self, a: int) -> int:
        return (-a) % self.p

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.p

    def invert(self, a: int) -> int:
        return modinv(a, self.p)

    def exact_divide(self, a: int, b: int) -> int:
        if b % self.p == 0:
            return None
        return (a * modinv(b, self.p)) % self.p

    def pow(self, a: int, exponent: int) -> int:
        """``a ** exponent`` in the field (negative exponents allowed)."""
        if exponent < 0:
            a = self.invert(a)
            exponent = -exponent
        return pow(a % self.p, exponent, self.p)

    # -- structure ---------------------------------------------------------
    def canonical(self, a: int) -> int:
        return int(a) % self.p

    def is_field(self) -> bool:
        return True

    def kernel(self) -> Optional[FpKernel]:
        """Fastest available kernel tier: vectorized → flat → None.

        The vectorized tier is advertised only when numpy imported, ``p``
        fits the native limb (both decided at construction) and both the
        :func:`use_kernels` and :func:`use_vector_kernels` switches are on;
        otherwise the flat :class:`FpKernel` (or, with kernels disabled
        entirely, the generic reference path) applies.
        """
        if not kernels_enabled():
            return None
        if self._vkernel is not None and vector_kernels_enabled():
            return self._vkernel
        return self._kernel

    def order(self) -> int:
        """Number of elements in the field."""
        return self.p

    def elements(self) -> Iterable[int]:
        """Iterate over all field elements (only sensible for small ``p``)."""
        return range(self.p)

    def multiplicative_order(self, a: int) -> int:
        """Order of ``a`` in the multiplicative group ``F_p^*``."""
        a %= self.p
        if a == 0:
            raise ValueError("0 has no multiplicative order")
        order = 1
        current = a
        while current != 1:
            current = current * a % self.p
            order += 1
        return order

    def primitive_root(self) -> int:
        """Smallest generator of ``F_p^*`` (brute force; fine for small p)."""
        from .primes import prime_factors

        if self.p == 2:
            return 1
        group_order = self.p - 1
        factors = prime_factors(group_order)
        for candidate in range(2, self.p):
            if all(pow(candidate, group_order // q, self.p) != 1 for q in factors):
                return candidate
        raise RuntimeError("no primitive root found (p is not prime?)")

    # -- auxiliary ----------------------------------------------------------
    def random_element(self, rng: random.Random) -> int:
        return rng.randrange(self.p)

    def random_nonzero(self, rng: random.Random) -> int:
        if self.p == 2:
            return 1
        return rng.randrange(1, self.p)

    def element_bits(self, a: int) -> int:
        return max(1, (self.p - 1).bit_length())

    def format_element(self, a: int) -> str:
        return str(a % self.p)

    # -- equality ------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return other is self or (isinstance(other, PrimeField) and other.p == self.p)

    def __hash__(self) -> int:
        return hash(("PrimeField", self.p))
