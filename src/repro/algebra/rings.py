"""Coefficient-ring abstraction.

The paper's encoding works over two quotient rings with different
coefficient domains:

* ``F_p[x]/(x^{p-1} - 1)`` -- coefficients in the prime field ``F_p``;
* ``Z[x]/(r(x))``          -- coefficients in the ring of integers ``Z``.

Polynomials (:mod:`repro.algebra.poly`) are generic over a *coefficient
ring* object implementing the small interface defined here.  The two
concrete coefficient rings are :class:`IntegerRing` and
:class:`~repro.algebra.fp.PrimeField`; the optional extension field
``F_{p^e}`` lives in :mod:`repro.algebra.fpe`.
"""

from __future__ import annotations

import abc
import random
from typing import TYPE_CHECKING, Any, Optional

from .kernels import Z_KERNEL, kernels_enabled

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .kernels import FpKernel, ZKernel

__all__ = ["CoefficientRing", "IntegerRing", "ZZ"]


class CoefficientRing(abc.ABC):
    """Abstract interface of a commutative coefficient ring.

    Elements are plain Python values (integers for ``Z`` and ``F_p``,
    tuples of integers for ``F_{p^e}``); the ring object supplies the
    operations.  Keeping elements as primitive values keeps polynomial
    arithmetic fast and the whole library picklable.
    """

    #: Human readable name, e.g. ``"Z"`` or ``"F_5"``.
    name: str = "ring"

    # -- constants ---------------------------------------------------------
    @property
    @abc.abstractmethod
    def zero(self) -> Any:
        """Additive identity."""

    @property
    @abc.abstractmethod
    def one(self) -> Any:
        """Multiplicative identity."""

    # -- arithmetic --------------------------------------------------------
    @abc.abstractmethod
    def add(self, a: Any, b: Any) -> Any:
        """Sum ``a + b``."""

    @abc.abstractmethod
    def sub(self, a: Any, b: Any) -> Any:
        """Difference ``a - b``."""

    @abc.abstractmethod
    def neg(self, a: Any) -> Any:
        """Additive inverse ``-a``."""

    @abc.abstractmethod
    def mul(self, a: Any, b: Any) -> Any:
        """Product ``a * b``."""

    def invert(self, a: Any) -> Any:
        """Multiplicative inverse; raise :class:`ZeroDivisionError` if none."""
        raise ZeroDivisionError(f"{a!r} has no inverse in {self.name}")

    def exact_divide(self, a: Any, b: Any) -> Optional[Any]:
        """Return ``a / b`` when the division is exact in the ring, else None."""
        try:
            return self.mul(a, self.invert(b))
        except ZeroDivisionError:
            return None

    # -- structure ---------------------------------------------------------
    @abc.abstractmethod
    def canonical(self, a: Any) -> Any:
        """Canonical representative of ``a`` (e.g. reduce modulo ``p``)."""

    def coerce(self, value: Any) -> Any:
        """Coerce a Python integer (or already-canonical element) into the ring."""
        return self.canonical(value)

    def is_zero(self, a: Any) -> bool:
        """True when ``a`` equals the additive identity."""
        return self.canonical(a) == self.zero

    def eq(self, a: Any, b: Any) -> bool:
        """Ring-level equality of two elements."""
        return self.canonical(a) == self.canonical(b)

    def is_field(self) -> bool:
        """True when every non-zero element is invertible."""
        return False

    # -- fast path ---------------------------------------------------------
    def kernel(self) -> Optional[Any]:
        """The ring's flat coefficient kernel, or ``None``.

        When a ring returns a kernel (:mod:`repro.algebra.kernels`),
        :class:`~repro.algebra.poly.Polynomial` dispatches its arithmetic
        to it instead of the generic per-element path.  The default is
        ``None``: the generic implementation is the reference semantics
        and any ring works without a kernel.
        """
        return None

    # -- auxiliary ---------------------------------------------------------
    @abc.abstractmethod
    def random_element(self, rng: random.Random) -> Any:
        """Uniform-ish random element (used for secret-sharing shares)."""

    @abc.abstractmethod
    def element_bits(self, a: Any) -> int:
        """Number of bits needed to store ``a`` (storage accounting, §5)."""

    def format_element(self, a: Any) -> str:
        """Human readable rendering of ``a``."""
        return str(a)

    # -- dunder sugar ------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"


class IntegerRing(CoefficientRing):
    """The ring of integers ``Z`` with arbitrary-precision arithmetic.

    Used as the coefficient domain of ``Z[x]/(r(x))``.  Random elements are
    drawn from a bounded symmetric interval: the paper never prescribes a
    distribution, it only needs shares that hide the original coefficients,
    and the interval must be large compared to the coefficients that occur.
    """

    name = "Z"

    def __init__(self, random_bound: int = 2 ** 64) -> None:
        if random_bound < 2:
            raise ValueError("random_bound must be at least 2")
        self.random_bound = random_bound

    @property
    def zero(self) -> int:
        return 0

    @property
    def one(self) -> int:
        return 1

    def add(self, a: int, b: int) -> int:
        return a + b

    def sub(self, a: int, b: int) -> int:
        return a - b

    def neg(self, a: int) -> int:
        return -a

    def mul(self, a: int, b: int) -> int:
        return a * b

    def invert(self, a: int) -> int:
        if a in (1, -1):
            return a
        raise ZeroDivisionError(f"{a} is not a unit in Z")

    def exact_divide(self, a: int, b: int) -> Optional[int]:
        if b == 0:
            return None
        q, r = divmod(a, b)
        return q if r == 0 else None

    def canonical(self, a: int) -> int:
        return int(a)

    def kernel(self) -> Optional["ZKernel"]:
        return Z_KERNEL if kernels_enabled() else None

    def random_element(self, rng: random.Random) -> int:
        return rng.randint(-self.random_bound, self.random_bound)

    def element_bits(self, a: int) -> int:
        # Sign bit plus magnitude; zero still occupies one bit.
        return max(1, int(a).bit_length()) + 1

    def __eq__(self, other: object) -> bool:
        return other is self or isinstance(other, IntegerRing)

    def __hash__(self) -> int:
        return hash("IntegerRing")


#: Shared default instance of the integer ring.
ZZ = IntegerRing()
