"""Lagrange interpolation over a field.

Used by Shamir secret sharing (:mod:`repro.sharing.shamir`) to reconstruct
a secret from ``t`` shares, and by the secure multi-party computation
substrate (:mod:`repro.smc`) to recombine the shared function result
(§3 of the paper).
"""

from __future__ import annotations

from typing import Any, Sequence, Tuple

from .poly import Polynomial
from .rings import CoefficientRing

__all__ = ["lagrange_interpolate", "lagrange_evaluate_at"]


def _check_points(points: Sequence[Tuple[Any, Any]], field: CoefficientRing) -> None:
    if not points:
        raise ValueError("at least one interpolation point is required")
    if not field.is_field():
        raise TypeError("Lagrange interpolation requires a field")
    xs = [field.canonical(x) for x, _ in points]
    if len(set(xs)) != len(xs):
        raise ValueError("interpolation points must have distinct x coordinates")


def lagrange_interpolate(points: Sequence[Tuple[Any, Any]],
                         field: CoefficientRing) -> Polynomial:
    """The unique polynomial of degree ``< len(points)`` through ``points``."""
    _check_points(points, field)
    result = Polynomial.zero(field)
    for i, (xi, yi) in enumerate(points):
        xi = field.canonical(xi)
        numerator = Polynomial.one(field)
        denominator = field.one
        for j, (xj, _) in enumerate(points):
            if i == j:
                continue
            xj = field.canonical(xj)
            numerator = numerator * Polynomial((field.neg(xj), field.one), field)
            denominator = field.mul(denominator, field.sub(xi, xj))
        weight = field.mul(field.canonical(yi), field.invert(denominator))
        result = result + numerator * weight
    return result


def lagrange_evaluate_at(points: Sequence[Tuple[Any, Any]], point: Any,
                         field: CoefficientRing) -> Any:
    """Evaluate the interpolating polynomial at ``point`` without building it.

    The common case in secret sharing is ``point == 0`` (the secret is the
    constant term); evaluating directly avoids constructing the polynomial.
    """
    _check_points(points, field)
    point = field.canonical(point)
    accumulator = field.zero
    for i, (xi, yi) in enumerate(points):
        xi = field.canonical(xi)
        weight = field.one
        for j, (xj, _) in enumerate(points):
            if i == j:
                continue
            xj = field.canonical(xj)
            weight = field.mul(weight, field.sub(point, xj))
            weight = field.mul(weight, field.invert(field.sub(xi, xj)))
        accumulator = field.add(accumulator, field.mul(field.canonical(yi), weight))
    return accumulator
