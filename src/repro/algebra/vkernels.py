"""Native-width vectorized kernels: the array tier of the polynomial layer.

:mod:`repro.algebra.kernels` moved coefficient arithmetic from per-element
ring dispatch to flat Python lists.  This module adds one more tier for the
``F_p`` domain: when numpy is importable and ``p`` is small enough that all
intermediate products fit in a signed 64-bit limb, :class:`VecFpKernel`
replaces the per-coefficient Python-int loops with a handful of array ops —
``np.convolve`` for products, a matrix/vector pass for batched evaluation.

Tier selection stays inside the existing dispatch:
:meth:`~repro.algebra.fp.PrimeField.kernel` returns the vectorized kernel
only when :func:`~repro.algebra.kernels.kernels_enabled` is true, numpy is
present, :func:`vector_kernels_enabled` is true, and
:func:`fits_native_width` holds for ``p``.  Every other case falls back to
:class:`~repro.algebra.kernels.FpKernel` (or the generic reference path), so
numpy never becomes a hard dependency and the pure-Python path remains the
bit-identity reference.

Overflow discipline (all bounds are strict, checked per call):

* convolution — a column of ``a * b`` is a sum of at most ``min(len)``
  products of residues ``< p``.  If ``min(len) * (p-1)^2 < 2^63`` a single
  ``np.convolve`` is exact; otherwise the shorter operand is split into
  chunks small enough that each partial convolution is exact, each chunk is
  reduced mod ``p`` and the (tiny, ``< chunks * p``) reduced partials are
  summed — exact for every ``p`` this kernel accepts.
* batched evaluation — with a shared power table the dot product needs
  ``len * (p-1)^2 < 2^63``; when that fails the kernel falls back to a
  column-wise Horner sweep whose accumulator is bounded by
  ``(p-1)*point + (p-1) < p^2 + p``, which :func:`fits_native_width`
  guarantees fits.

Outputs are converted back to Python ints (``ndarray.tolist()``) so results
are indistinguishable — by value, type and hash — from the flat tier.

Setting the environment variable ``REPRO_DISABLE_NUMPY`` to a non-empty
value before import makes the module behave exactly as if numpy were not
installed; CI uses it to prove the fallback path stays green.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence

from .kernels import FpKernel, _school_mul, _trim

try:  # pragma: no cover - exercised via the REPRO_DISABLE_NUMPY CI leg
    if os.environ.get("REPRO_DISABLE_NUMPY"):
        raise ImportError("numpy disabled by REPRO_DISABLE_NUMPY")
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None  # type: ignore[assignment]

__all__ = [
    "VecFpKernel",
    "fits_native_width",
    "numpy_or_none",
    "use_vector_kernels",
    "vector_kernel_for",
    "vector_kernels_enabled",
    "NATIVE_LIMB_BITS",
    "VECTOR_MIN_COEFFS",
]

#: Width of the native limb the vectorized tier accumulates in.  numpy has
#: no arbitrary precision: every intermediate must stay below ``2^63``.
NATIVE_LIMB_BITS = 63

#: Operand length below which the flat tier's list comprehensions beat the
#: fixed cost of materialising ndarrays (~1 microsecond per array op).
VECTOR_MIN_COEFFS = 16

_INT64_LIMIT = 1 << NATIVE_LIMB_BITS

_VECTOR_ENABLED = True


def numpy_or_none():
    """The numpy module, or None when absent (or disabled via env var)."""
    return _np


def vector_kernels_enabled() -> bool:
    """True when prime fields should advertise the vectorized tier."""
    return _VECTOR_ENABLED


@contextmanager
def use_vector_kernels(enabled: bool) -> Iterator[None]:
    """Temporarily enable/disable the vectorized tier only.

    ``with use_vector_kernels(False): ...`` pins dispatch to the flat
    :class:`FpKernel`/:class:`ZKernel` tier while leaving
    :func:`kernels_enabled` untouched — how the benchmarks isolate the
    array speedup from the flat-kernel speedup.
    """
    global _VECTOR_ENABLED
    previous = _VECTOR_ENABLED
    _VECTOR_ENABLED = enabled
    try:
        yield
    finally:
        _VECTOR_ENABLED = previous


def fits_native_width(p: int) -> bool:
    """True when every ``F_p`` intermediate fits a signed 64-bit limb.

    The binding constraint is the Horner step ``acc * point + c`` with
    ``acc, point, c < p``: it needs ``(p-1)^2 + (p-1) < 2^63``, i.e.
    ``p`` below roughly ``2^31.5``.  Larger primes stay on the flat
    bigint tier.
    """
    return p > 1 and (p - 1) * (p - 1) + (p - 1) < _INT64_LIMIT


class VecFpKernel(FpKernel):
    """Array arithmetic on coefficients in ``[0, p)`` with ``p`` native-width.

    Same contract as :class:`FpKernel` — read-only sequences of canonical
    residues in, trimmed lists of canonical residues (plain Python ints)
    out — so :meth:`Polynomial._from_canonical` wraps results unchanged and
    the two tiers are bit-identical by construction.  Operands shorter than
    :data:`VECTOR_MIN_COEFFS` delegate to the flat tier, where list
    comprehensions still win.
    """

    __slots__ = ()

    def __init__(self, p: int) -> None:
        if _np is None:
            raise RuntimeError("VecFpKernel requires numpy")
        if not fits_native_width(p):
            raise ValueError(f"p={p} exceeds the native 64-bit limb width")
        super().__init__(p)

    # -- elementwise ops -------------------------------------------------------

    def add(self, a: Sequence[int], b: Sequence[int]) -> List[int]:
        if max(len(a), len(b)) < VECTOR_MIN_COEFFS:
            return super().add(a, b)
        p = self.p
        if len(a) < len(b):
            a, b = b, a
        out = _np.asarray(a, dtype=_np.int64)
        if b:
            out = out.copy()
            out[:len(b)] += _np.asarray(b, dtype=_np.int64)
            out[:len(b)] %= p
        out = out.tolist()
        return _trim(out) if len(a) == len(b) else out

    def sub(self, a: Sequence[int], b: Sequence[int]) -> List[int]:
        if max(len(a), len(b)) < VECTOR_MIN_COEFFS:
            return super().sub(a, b)
        p = self.p
        n = max(len(a), len(b))
        av = _np.zeros(n, dtype=_np.int64)
        if a:
            av[:len(a)] = a
        if b:
            av[:len(b)] -= _np.asarray(b, dtype=_np.int64)
            av[:len(b)] %= p
        out = av.tolist()
        return _trim(out) if len(a) == len(b) else out

    def neg(self, a: Sequence[int]) -> List[int]:
        if len(a) < VECTOR_MIN_COEFFS:
            return super().neg(a)
        av = _np.asarray(a, dtype=_np.int64)
        return ((-av) % self.p).tolist()

    def scalar_mul(self, a: Sequence[int], scalar: int) -> List[int]:
        p = self.p
        scalar %= p
        if not scalar:
            return []
        if len(a) < VECTOR_MIN_COEFFS:
            return super().scalar_mul(a, scalar)
        av = _np.asarray(a, dtype=_np.int64)
        return _trim(((av * scalar) % p).tolist())

    def derivative(self, a: Sequence[int]) -> List[int]:
        if len(a) < VECTOR_MIN_COEFFS:
            return super().derivative(a)
        p = self.p
        if (len(a) - 1) * (p - 1) >= _INT64_LIMIT:  # pragma: no cover
            return super().derivative(a)
        av = _np.asarray(a[1:], dtype=_np.int64)
        av *= _np.arange(1, len(a), dtype=_np.int64)
        return _trim((av % p).tolist())

    # -- convolution -----------------------------------------------------------

    def mul(self, a: Sequence[int], b: Sequence[int]) -> List[int]:
        if not a or not b:
            return []
        if min(len(a), len(b)) < VECTOR_MIN_COEFFS:
            return _trim([c % self.p for c in _school_mul(a, b)])
        p = self.p
        av = _np.asarray(a, dtype=_np.int64)
        bv = _np.asarray(b, dtype=_np.int64)
        return _trim(self._convolve_mod(av, bv).tolist())

    def _convolve_mod(self, av, bv):
        """Exact modular convolution of two residue arrays.

        A convolution column is a sum of at most ``min(len)`` products of
        residues ``< p``.  If that bound fits the limb a single
        ``np.convolve`` is exact; otherwise the shorter operand is split
        into limb-safe chunks, each partial convolution reduced mod ``p``
        before accumulation (the sum of reduced partials is ``< chunks * p``,
        far below the limb for any native-width ``p``).
        """
        p = self.p
        if len(av) < len(bv):
            av, bv = bv, av
        per_term = (p - 1) * (p - 1)
        if len(bv) * per_term < _INT64_LIMIT:
            return _np.convolve(av, bv) % p
        step = max(1, (_INT64_LIMIT - 1) // per_term)
        out = _np.zeros(len(av) + len(bv) - 1, dtype=_np.int64)
        for start in range(0, len(bv), step):
            chunk = bv[start:start + step]
            out[start:start + len(av) + len(chunk) - 1] += (
                _np.convolve(av, chunk) % p)
        out %= p
        return out

    # -- batched evaluation ----------------------------------------------------

    def evaluate_many(self, seqs: Sequence[Sequence[int]],
                      point: int) -> List[int]:
        """Evaluate many coefficient vectors at one point, batched.

        Pads the vectors into one ``(n, longest)`` int64 matrix and hands it
        to :meth:`evaluate_matrix`; tiny batches keep the flat tier's shared
        power table, which beats the matrix setup cost.
        """
        longest = 0
        for s in seqs:
            if len(s) > longest:
                longest = len(s)
        if len(seqs) * longest < 4 * VECTOR_MIN_COEFFS:
            return super().evaluate_many(seqs, point)
        matrix = _np.zeros((len(seqs), longest), dtype=_np.int64)
        for i, s in enumerate(seqs):
            if s:
                matrix[i, :len(s)] = s
        return self.evaluate_matrix(matrix, point)

    def evaluate_matrix(self, matrix, point: int) -> List[int]:
        """Evaluate every row of an int64 residue matrix at ``point``.

        This is the zero-copy entry used by the page pipeline: rows arrive
        straight from :func:`repro.net.pages.decode_coefficients_batch`
        without ever becoming Python lists.  When the dot product against a
        power table is provably exact (``cols * (p-1)^2 < 2^63``) the whole
        batch is one matmul; otherwise a column-wise Horner sweep reduces
        after every step, exact for any native-width ``p``.
        """
        p = self.p
        point %= p
        rows, cols = matrix.shape
        if cols == 0:
            return [0] * rows
        if cols * (p - 1) * (p - 1) < _INT64_LIMIT:
            powers = _np.empty(cols, dtype=_np.int64)
            value = 1 % p
            for i in range(cols):
                powers[i] = value
                value = value * point % p
            return ((matrix @ powers) % p).tolist()
        acc = _np.zeros(rows, dtype=_np.int64)
        for j in range(cols - 1, -1, -1):
            acc *= point
            acc += matrix[:, j]
            acc %= p
        return acc.tolist()


def vector_kernel_for(p: int) -> Optional[VecFpKernel]:
    """A :class:`VecFpKernel` for ``p``, or None when the tier is unavailable.

    Availability is static per prime (numpy importable, ``p`` native-width);
    the dynamic switches (:func:`kernels_enabled`,
    :func:`vector_kernels_enabled`) are consulted at dispatch time by
    :meth:`PrimeField.kernel`, not here.
    """
    if _np is None or not fits_native_width(p):
        return None
    return VecFpKernel(p)
