"""The two encoding rings of the paper.

Section 4.1 introduces two finite rings in which the polynomial tree is
stored so that degrees stay bounded:

* :class:`FpQuotientRing` — ``F_p[x]/(x^{p-1} - 1)`` for a prime ``p``:
  coefficients are reduced modulo ``p`` and exponents modulo ``p - 1``
  (because ``x^{p-1} ≡ 1`` by Fermat's little theorem, Lemma 1).
* :class:`IntQuotientRing` — ``Z[x]/(r(x))`` for a monic irreducible
  ``r``: polynomials are reduced modulo ``r`` and keep unbounded integer
  coefficients.

Both expose the same :class:`EncodingRing` interface used by the encoder,
the sharing layer and the query protocol, including the Theorem 1/2 tag
recovery (``recover_tag``) and the equation-system verification of
eq. (2)–(3) (``consistency_check``).
"""

from __future__ import annotations

import abc
import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import AlgebraError, TagRecoveryError
from .fp import PrimeField
from .kernels import _trim, kernels_enabled
from .poly import Polynomial, is_irreducible_mod_p
from .rings import CoefficientRing, IntegerRing, ZZ

__all__ = [
    "EncodingRing",
    "FpQuotientRing",
    "IntQuotientRing",
    "default_int_modulus",
]


class EncodingRing(abc.ABC):
    """A quotient polynomial ring used to encode XML trees.

    Elements are :class:`~repro.algebra.poly.Polynomial` instances over the
    ring's coefficient ring, already reduced to canonical form.
    """

    #: Human-readable name of the ring, e.g. ``"F_5[x]/(x^4 - 1)"``.
    name: str = "encoding ring"

    #: Coefficient ring of the reduced polynomials.
    coefficient_ring: CoefficientRing

    # -- canonical elements --------------------------------------------------
    @property
    def zero(self) -> Polynomial:
        """The zero element (cached; Polynomial values are immutable)."""
        cached = self.__dict__.get("_zero")
        if cached is None:
            cached = Polynomial.zero(self.coefficient_ring)
            self.__dict__["_zero"] = cached
        return cached

    @property
    def one(self) -> Polynomial:
        """The unit element (cached; Polynomial values are immutable)."""
        cached = self.__dict__.get("_one")
        if cached is None:
            cached = Polynomial.one(self.coefficient_ring)
            self.__dict__["_one"] = cached
        return cached

    @property
    @abc.abstractmethod
    def degree_bound(self) -> int:
        """Strict upper bound on the degree of reduced elements."""

    # -- reduction & arithmetic ----------------------------------------------
    @abc.abstractmethod
    def reduce(self, poly: Polynomial) -> Polynomial:
        """Reduce an arbitrary polynomial into canonical form."""

    def is_canonical(self, poly: Polynomial) -> bool:
        """True when ``poly`` is already a reduced ring element.

        Canonical elements live over the ring's coefficient ring and stay
        below the degree bound; :meth:`reduce` is the identity on them, so
        callers holding the output of a ring operation can skip re-reducing.
        """
        return (poly.ring == self.coefficient_ring
                and len(poly.coeffs) <= self.degree_bound)

    def coerce(self, poly: Polynomial) -> Polynomial:
        """Reduce ``poly`` after mapping its coefficients into the ring."""
        return self.reduce(poly.map_ring(self.coefficient_ring))

    def from_tag_value(self, value: int) -> Polynomial:
        """The linear factor ``x - value`` encoding a single tag (§4.1)."""
        return self.reduce(Polynomial.linear_root(value, self.coefficient_ring))

    def from_coefficients(self, coeffs: Sequence[Any]) -> Polynomial:
        """Build an element from a coefficient vector (ascending degree)."""
        return self.reduce(Polynomial(coeffs, self.coefficient_ring))

    def add(self, a: Polynomial, b: Polynomial) -> Polynomial:
        """Sum of two ring elements."""
        return self.reduce(a + b)

    def sub(self, a: Polynomial, b: Polynomial) -> Polynomial:
        """Difference of two ring elements."""
        return self.reduce(a - b)

    def neg(self, a: Polynomial) -> Polynomial:
        """Additive inverse."""
        return self.reduce(-a)

    def mul(self, a: Polynomial, b: Polynomial) -> Polynomial:
        """Product of two ring elements (reduced)."""
        return self.reduce(a * b)

    def product(self, elements: Sequence[Polynomial]) -> Polynomial:
        """Product of a sequence of elements (the empty product is 1)."""
        result = self.one
        for element in elements:
            result = self.mul(result, element)
        return result

    def is_zero(self, a: Polynomial) -> bool:
        """True for the zero element."""
        return self.reduce(a).is_zero()

    def eq(self, a: Polynomial, b: Polynomial) -> bool:
        """Ring equality."""
        return self.reduce(a) == self.reduce(b)

    # -- randomness ------------------------------------------------------------
    def random_element(self, rng: random.Random) -> Polynomial:
        """Uniform-ish random reduced element (used for client shares, §4.2)."""
        ring = self.coefficient_ring
        coeffs = [ring.random_element(rng) for _ in range(self.degree_bound)]
        if ring.kernel() is not None:
            # random_element already yields canonical coefficients; skip the
            # per-element re-canonicalisation and the no-op reduce.
            return Polynomial._from_canonical(_trim(coeffs), ring)
        return self.reduce(Polynomial(coeffs, ring))

    def random_element_from_stream(self, stream: Any) -> Polynomial:
        """Uniform-ish random reduced element drawn from a PRG byte stream.

        Same distribution as :meth:`random_element` but sampled in bulk
        from a :class:`repro.prg.SeededStream` — the share-regeneration hot
        path of :class:`repro.core.share_tree.ClientShareGenerator`.  The
        default adapter seeds a stdlib ``Random`` from the stream; concrete
        rings override it with direct rejection sampling.
        """
        rng = random.Random(int.from_bytes(stream.read(32), "big"))
        return self.random_element(rng)

    # -- query evaluation (§4.3) -------------------------------------------------
    @abc.abstractmethod
    def evaluation_modulus(self, point: int) -> Optional[int]:
        """Modulus for evaluations at ``point`` (``None`` means no reduction)."""

    def evaluate(self, element: Polynomial, point: int) -> int:
        """Evaluate ``element`` at ``point`` in the evaluation domain.

        For ``F_p`` rings this is ordinary evaluation in ``F_p``; for
        ``Z[x]/(r)`` the value is only defined modulo ``r(point)``
        (cf. figure 6 where everything is computed modulo ``r(2) = 5``).
        """
        value = element.evaluate(point)
        modulus = self.evaluation_modulus(point)
        if modulus is None:
            return int(value)
        return int(value) % modulus

    def evaluate_many(self, elements: Sequence[Polynomial],
                      point: int) -> List[int]:
        """Evaluate many ring elements at one query point in a single pass.

        The hot path of the §4.3 protocol: every descent round evaluates a
        whole frontier of node shares at the same point.  With a kernel the
        power table of the point is shared across all elements; without one
        this is equivalent to calling :meth:`evaluate` per element.
        """
        if not elements:
            return []
        modulus = self.evaluation_modulus(point)
        kernel = self.coefficient_ring.kernel()
        if kernel is not None:
            coerced = self.coefficient_ring.coerce(point)
            values = kernel.evaluate_many([e.coeffs for e in elements], coerced)
        else:
            values = [int(e.evaluate(point)) for e in elements]
        if modulus is None:
            return [int(v) for v in values]
        return [int(v) % modulus for v in values]

    def evaluation_add(self, a: int, b: int, point: int) -> int:
        """Add two evaluation values in the evaluation domain at ``point``."""
        modulus = self.evaluation_modulus(point)
        total = a + b
        return total if modulus is None else total % modulus

    def evaluation_is_zero(self, value: int, point: int) -> bool:
        """True when an evaluation value means 'the factor is present'."""
        modulus = self.evaluation_modulus(point)
        return value == 0 if modulus is None else value % modulus == 0

    # -- Theorem 1 / Theorem 2 ------------------------------------------------------
    def recover_tag(self, element: Polynomial,
                    children: Sequence[Polynomial]) -> int:
        """Recover the mapped tag value ``t`` of a node.

        Given the node polynomial ``f`` and its children ``q_1..q_n``,
        solves ``f ≡ (x - t)·∏ q_i`` for ``t`` (eq. (1)–(3)).  Theorems 1
        and 2 guarantee uniqueness; inconsistent inputs raise
        :class:`~repro.errors.TagRecoveryError`.
        """
        product = self.product(list(children))
        solutions = self._tag_equations(element, children, product=product)
        candidate: Optional[int] = None
        for numerator, denominator in solutions:
            if self.coefficient_ring.is_zero(denominator):
                continue
            value = self.coefficient_ring.exact_divide(numerator, denominator)
            if value is None:
                continue
            candidate = self._tag_to_int(value)
            break
        if candidate is None:
            raise TagRecoveryError(
                "no non-trivial equation available to solve for the tag value")
        if not self.verify_tag(element, children, candidate, product=product):
            raise TagRecoveryError(
                "coefficient equations are inconsistent; the node polynomial does "
                "not factor as (x - t) times the product of its children")
        return candidate

    def verify_tag(self, element: Polynomial, children: Sequence[Polynomial],
                   tag_value: int,
                   product: Optional[Polynomial] = None) -> bool:
        """Check *all* equations of eq. (3) for a claimed tag value.

        ``product`` may pass in the (reduced) product of the children when
        the caller already computed it.
        """
        if product is None:
            product = self.product(list(children))
        reconstructed = self.mul(product, self.from_tag_value(tag_value))
        return self.eq(reconstructed, element)

    def consistency_check(self, element: Polynomial,
                          children: Sequence[Polynomial]) -> List[Tuple[Any, Any]]:
        """The coefficient equation system of eq. (2)–(3).

        Returns a list of ``(numerator, denominator)`` pairs, one per
        coefficient, such that each non-trivial pair must satisfy
        ``t = numerator / denominator`` for the same ``t``.
        """
        return self._tag_equations(element, children)

    def _tag_equations(self, element: Polynomial,
                       children: Sequence[Polynomial],
                       product: Optional[Polynomial] = None
                       ) -> List[Tuple[Any, Any]]:
        ring = self.coefficient_ring
        if product is None:
            product = self.product(list(children))
        x = self.reduce(Polynomial.x(ring))
        x_times_product = self.mul(product, x)
        # t * product = x*product - f, coefficient-wise in the quotient ring.
        difference = self.sub(x_times_product, element)
        zero = ring.zero
        diff_coeffs = difference.coeffs
        prod_coeffs = product.coeffs
        return [
            (diff_coeffs[degree] if degree < len(diff_coeffs) else zero,
             prod_coeffs[degree] if degree < len(prod_coeffs) else zero)
            for degree in range(self.degree_bound)
        ]

    def _tag_to_int(self, value: Any) -> int:
        return int(value)

    # -- storage accounting (§5) ------------------------------------------------------
    @abc.abstractmethod
    def element_storage_bits(self, element: Polynomial) -> int:
        """Measured storage of one element in bits."""

    # -- misc -----------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"


class FpQuotientRing(EncodingRing):
    """The ring ``F_p[x]/(x^{p-1} - 1)`` for a prime ``p``.

    Coefficients live in ``F_p``; exponents are reduced modulo ``p - 1``
    because ``x^{p-1} ≡ 1`` (Lemma 1/Fermat).  Tag values must lie in
    ``{1, ..., p-2}``: value ``0`` would introduce the factor ``x`` whose
    evaluation at ``0`` is degenerate, and value ``p-1`` would create the
    zero divisor highlighted after Lemma 3 (strict mode; the paper's own
    example violates this, so enforcement is optional in the mapping layer).
    """

    def __init__(self, p: int) -> None:
        self.field = PrimeField(p)
        self.p = p
        self.name = f"F_{p}[x]/(x^{p - 1} - 1)"
        self.coefficient_ring = self.field

    @property
    def degree_bound(self) -> int:
        return self.p - 1

    def reduce(self, poly: Polynomial) -> Polynomial:
        if not kernels_enabled():
            return self._reduce_generic(poly)
        n = self.p - 1
        if poly.ring == self.field and len(poly.coeffs) <= n:
            # Already canonical: coefficients are reduced residues and the
            # degree is below the bound, so folding would be the identity.
            return poly
        p = self.p
        acc = [0] * n
        for exponent, coefficient in enumerate(poly.coeffs):
            coefficient = int(coefficient) % p
            if coefficient:
                acc[exponent if exponent < n else exponent % n] += coefficient
        return Polynomial._from_canonical(_trim([c % p for c in acc]), self.field)

    def _reduce_generic(self, poly: Polynomial) -> Polynomial:
        """Reference reduction: exponent folding via generic ring calls."""
        coeffs = [self.field.zero] * (self.p - 1)
        for exponent, coefficient in enumerate(poly.coeffs):
            coefficient = self.field.canonical(coefficient)
            if coefficient == 0:
                continue
            folded = exponent if exponent < self.p - 1 else exponent % (self.p - 1)
            coeffs[folded] = self.field.add(coeffs[folded], coefficient)
        return Polynomial(coeffs, self.field)

    def random_element_from_stream(self, poly_stream: Any) -> Polynomial:
        coeffs = poly_stream.residues(self.p - 1, self.p)
        return Polynomial._from_canonical(_trim(coeffs), self.field)

    def evaluation_modulus(self, point: int) -> int:
        return self.p

    def element_storage_bits(self, element: Polynomial) -> int:
        # Every element is stored as p-1 coefficients of log2(p) bits each,
        # matching the n*(p-1)*log p storage formula of §5.
        return (self.p - 1) * self.field.element_bits(0)

    def modulus_polynomial(self) -> Polynomial:
        """The modulus ``x^{p-1} - 1`` as a polynomial over ``F_p``."""
        coeffs = [self.field.neg(self.field.one)] + [0] * (self.p - 2) + [self.field.one]
        return Polynomial(coeffs, self.field)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FpQuotientRing) and other.p == self.p

    def __hash__(self) -> int:
        return hash(("FpQuotientRing", self.p))


class IntQuotientRing(EncodingRing):
    """The ring ``Z[x]/(r(x))`` for a monic irreducible ``r``.

    Elements are integer polynomials of degree below ``deg r``.  Their
    coefficients grow with the size of the encoded tree (the paper's
    ``n²(d+1) log p`` storage bound).  Query evaluations at a point ``a``
    are taken modulo ``r(a)`` (figure 6).
    """

    def __init__(self, modulus: Polynomial,
                 check_irreducible: bool = True,
                 random_bound: int = 2 ** 32) -> None:
        if modulus.ring != ZZ and not isinstance(modulus.ring, IntegerRing):
            modulus = Polynomial([int(c) for c in modulus.coeffs], ZZ)
        if modulus.degree < 1:
            raise AlgebraError("the modulus r(x) must have degree at least 1")
        if not modulus.is_monic():
            raise AlgebraError("the modulus r(x) must be monic")
        if check_irreducible and not self._probably_irreducible(modulus):
            raise AlgebraError(f"{modulus} does not look irreducible over Q")
        self.modulus = modulus
        self.coefficient_ring = IntegerRing(random_bound=random_bound)
        self.name = f"Z[x]/({modulus.pretty()})"
        # Precomputed remainders x^k mod r(x) for k >= deg r, extended on
        # demand: row i holds the length-(deg r) coefficient vector of
        # x^(deg r + i) mod r.  Folding with these rows turns reduction into
        # a linear pass instead of repeated divmod.
        self._power_rows: List[List[int]] = []
        self._eval_moduli: Dict[int, int] = {}

    @staticmethod
    def _probably_irreducible(modulus: Polynomial) -> bool:
        """Heuristic irreducibility check over ``Q`` for a monic integer poly.

        Degree 1 is always irreducible.  For higher degrees we accept the
        polynomial if it is irreducible modulo some small prime that does not
        divide the leading coefficient — a sufficient condition.  Degree 2 and
        3 polynomials are additionally accepted when they have no rational
        (hence integer, by monicity) roots.
        """
        degree = modulus.degree
        if degree == 1:
            return True
        for p in (2, 3, 5, 7, 11, 13, 17, 19, 23):
            if is_irreducible_mod_p(modulus, p):
                return True
        if degree in (2, 3):
            constant = abs(int(modulus.constant_term))
            candidates = {1, -1}
            for divisor in range(1, constant + 1):
                if constant % divisor == 0:
                    candidates.update({divisor, -divisor})
            if constant == 0:
                return False
            return all(modulus.evaluate(c) != 0 for c in candidates)
        return False

    @property
    def degree_bound(self) -> int:
        return self.modulus.degree

    def _power_row(self, k: int) -> List[int]:
        """Coefficient vector of ``x^k mod r(x)`` for ``k >= deg r``."""
        d = self.modulus.degree
        rows = self._power_rows
        if not rows:
            rows.append([-int(c) for c in self.modulus.coeffs[:d]])
        low = self.modulus.coeffs
        while len(rows) <= k - d:
            prev = rows[-1]
            top = prev[d - 1]
            row = [0] + prev[:d - 1]
            if top:
                for j in range(d):
                    row[j] -= top * int(low[j])
            rows.append(row)
        return rows[k - d]

    def reduce(self, poly: Polynomial) -> Polynomial:
        if poly.ring != self.coefficient_ring:
            poly = Polynomial([int(c) for c in poly.coeffs], self.coefficient_ring)
        d = self.modulus.degree
        if poly.degree < d:
            return poly
        if not kernels_enabled():
            modulus = Polynomial(list(self.modulus.coeffs), self.coefficient_ring)
            return poly % modulus
        coeffs = poly.coeffs
        out = list(coeffs[:d])
        self._power_row(len(coeffs) - 1)  # extend the table in one go
        rows = self._power_rows
        for k in range(d, len(coeffs)):
            c = coeffs[k]
            if c:
                row = rows[k - d]
                for j in range(d):
                    out[j] += c * row[j]
        return Polynomial._from_canonical(_trim(out), self.coefficient_ring)

    def random_element_from_stream(self, poly_stream: Any) -> Polynomial:
        bound = self.coefficient_ring.random_bound
        draws = poly_stream.residues(self.modulus.degree, 2 * bound + 1)
        coeffs = _trim([v - bound for v in draws])
        return Polynomial._from_canonical(coeffs, self.coefficient_ring)

    def evaluation_modulus(self, point: int) -> int:
        value = self._eval_moduli.get(point)
        if value is None:
            value = abs(int(self.modulus.evaluate(point)))
            if value <= 1:
                raise AlgebraError(
                    f"evaluation point {point} gives |r({point})| = {value}; query "
                    "evaluations would be degenerate — choose a different mapping value")
            # Points come from the (bounded) tag mapping in normal use; the
            # cap only guards long-lived rings fed adversarial point streams.
            if len(self._eval_moduli) < 4096:
                self._eval_moduli[point] = value
        return value

    def element_storage_bits(self, element: Polynomial) -> int:
        degree_slots = self.modulus.degree
        if element.is_zero():
            return degree_slots * 2
        return sum(self.coefficient_ring.element_bits(element.coefficient(i))
                   for i in range(degree_slots))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IntQuotientRing) and other.modulus == self.modulus

    def __hash__(self) -> int:
        return hash(("IntQuotientRing", self.modulus.coeffs))


def default_int_modulus(degree: int = 2) -> Polynomial:
    """A convenient monic irreducible modulus of the requested degree.

    Degree 2 returns the paper's ``x² + 1``; other degrees use cyclotomic-like
    choices that are irreducible over ``Q``.
    """
    if degree < 1:
        raise ValueError("degree must be at least 1")
    if degree == 1:
        return Polynomial([0, 1], ZZ)  # x itself (rarely useful, but valid)
    if degree == 2:
        return Polynomial([1, 0, 1], ZZ)  # x^2 + 1
    # x^degree + x + 1 is irreducible for many degrees; fall back to searching.
    candidate = Polynomial([1, 1] + [0] * (degree - 2) + [1], ZZ)
    for p in (2, 3, 5, 7, 11, 13):
        if is_irreducible_mod_p(candidate, p):
            return candidate
    # Search x^degree + a x + b for small a, b.
    for b in range(1, 50):
        for a in range(0, 50):
            candidate = Polynomial([b, a] + [0] * (degree - 2) + [1], ZZ)
            for p in (2, 3, 5, 7, 11, 13):
                if is_irreducible_mod_p(candidate, p):
                    return candidate
    raise AlgebraError(f"could not find an irreducible modulus of degree {degree}")
