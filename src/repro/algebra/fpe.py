"""Extension fields ``F_{p^e}``.

The paper states its construction for prime powers ``q = p^e`` but only
proves the prime case.  For completeness the library ships a small
extension-field implementation: elements are tuples of ``e`` integers
(coefficients over ``F_p`` of a residue polynomial modulo an irreducible
modulus).  The encoding scheme itself defaults to prime fields; the
extension field is mainly exercised by tests and by users who want
``q = p^e`` tag spaces.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import AlgebraError
from .fp import PrimeField
from .kernels import kernels_enabled
from .poly import Polynomial, is_irreducible_mod_p, poly_gcd
from .primes import is_prime
from .rings import CoefficientRing

__all__ = ["ExtensionField", "find_irreducible_polynomial"]


def find_irreducible_polynomial(p: int, degree: int,
                                rng: Optional[random.Random] = None) -> Polynomial:
    """A monic irreducible polynomial of the given degree over ``F_p``."""
    if degree < 1:
        raise ValueError("degree must be at least 1")
    field = PrimeField(p)
    if degree == 1:
        return Polynomial([0, 1], field)
    rng = rng or random.Random(0x5EED ^ (p << 8) ^ degree)
    # Try a few structured candidates first for reproducibility.
    structured = [
        Polynomial([1] + [0] * (degree - 1) + [1], field),          # x^d + 1
        Polynomial([1, 1] + [0] * (degree - 2) + [1], field),       # x^d + x + 1
        Polynomial([field.p - 1, 1] + [0] * (degree - 2) + [1], field),
    ]
    for candidate in structured:
        if candidate.degree == degree and is_irreducible_mod_p(candidate, p):
            return candidate
    for _ in range(4096):
        coeffs = [rng.randrange(p) for _ in range(degree)] + [1]
        candidate = Polynomial(coeffs, field)
        if candidate.degree == degree and is_irreducible_mod_p(candidate, p):
            return candidate
    raise AlgebraError(f"could not find an irreducible polynomial of degree {degree} over F_{p}")


class ExtensionField(CoefficientRing):
    """The finite field ``F_{p^e}`` as ``F_p[y]/(m(y))``.

    Elements are tuples of ``e`` integers in ``[0, p)`` holding the
    coefficients of the residue polynomial in ascending degree order.
    """

    def __init__(self, p: int, e: int,
                 modulus: Optional[Polynomial] = None) -> None:
        if not is_prime(p):
            raise ValueError(f"{p} is not prime")
        if e < 1:
            raise ValueError("the extension degree must be at least 1")
        self.p = p
        self.e = e
        self.base = PrimeField(p)
        if modulus is None:
            modulus = find_irreducible_polynomial(p, e)
        if modulus.degree != e:
            raise ValueError("modulus degree must equal the extension degree")
        if not is_irreducible_mod_p(modulus, p):
            raise AlgebraError(f"{modulus} is not irreducible over F_{p}")
        self.modulus = Polynomial([int(c) % p for c in modulus.coeffs], self.base)
        self.name = f"F_{p}^{e}" if e > 1 else f"F_{p}"
        # Remainders y^k mod m(y) for k in [e, 2e-2]: the degrees produced by
        # multiplying two residues.  With them, field multiplication is one
        # convolution plus a linear folding pass instead of a Polynomial
        # divmod per product.  The modulus need not be monic: dividing the
        # low coefficients by the leading one gives y^e = -low/lead.
        self._mul_rows: List[Tuple[int, ...]] = []
        if e > 1:
            lead_inv = self.base.invert(self.modulus.coeffs[e])
            low = [(int(c) * lead_inv) % p for c in self.modulus.coeffs[:e]]
            row = [(-c) % p for c in low]
            self._mul_rows.append(tuple(row))
            for _ in range(e - 2):
                top = row[e - 1]
                row = [0] + row[:e - 1]
                for j in range(e):
                    row[j] = (row[j] - top * low[j]) % p
                self._mul_rows.append(tuple(row))

    # -- element plumbing ------------------------------------------------------
    def _as_tuple(self, value) -> Tuple[int, ...]:
        if isinstance(value, tuple):
            padded = list(value) + [0] * (self.e - len(value))
            return tuple(int(c) % self.p for c in padded[: self.e])
        if isinstance(value, (list,)):
            return self._as_tuple(tuple(value))
        # Plain integers embed as constants.
        return tuple([int(value) % self.p] + [0] * (self.e - 1))

    def _to_poly(self, value: Tuple[int, ...]) -> Polynomial:
        return Polynomial(list(value), self.base)

    def _from_poly(self, poly: Polynomial) -> Tuple[int, ...]:
        reduced = poly % self.modulus
        coeffs = list(reduced.coeffs) + [0] * (self.e - len(reduced.coeffs))
        return tuple(coeffs[: self.e])

    # -- constants ---------------------------------------------------------------
    @property
    def zero(self) -> Tuple[int, ...]:
        return tuple([0] * self.e)

    @property
    def one(self) -> Tuple[int, ...]:
        return tuple([1 % self.p] + [0] * (self.e - 1))

    # -- arithmetic -----------------------------------------------------------------
    def add(self, a, b) -> Tuple[int, ...]:
        a, b = self._as_tuple(a), self._as_tuple(b)
        return tuple((x + y) % self.p for x, y in zip(a, b))

    def sub(self, a, b) -> Tuple[int, ...]:
        a, b = self._as_tuple(a), self._as_tuple(b)
        return tuple((x - y) % self.p for x, y in zip(a, b))

    def neg(self, a) -> Tuple[int, ...]:
        return tuple((-x) % self.p for x in self._as_tuple(a))

    def mul(self, a, b) -> Tuple[int, ...]:
        a, b = self._as_tuple(a), self._as_tuple(b)
        if not kernels_enabled():
            return self._from_poly(self._to_poly(a) * self._to_poly(b))
        p, e = self.p, self.e
        if e == 1:
            return ((a[0] * b[0]) % p,)
        conv = [0] * (2 * e - 1)
        for i, x in enumerate(a):
            if x:
                for j, y in enumerate(b):
                    conv[i + j] += x * y
        out = conv[:e]
        for k in range(e, 2 * e - 1):
            c = conv[k]
            if c:
                row = self._mul_rows[k - e]
                for j in range(e):
                    out[j] += c * row[j]
        return tuple(v % p for v in out)

    def invert(self, a) -> Tuple[int, ...]:
        a = self._as_tuple(a)
        if all(c == 0 for c in a):
            raise ZeroDivisionError("0 has no inverse in the extension field")
        # Extended Euclid over F_p[y].
        r0, r1 = self.modulus, self._to_poly(a)
        s0, s1 = Polynomial.zero(self.base), Polynomial.one(self.base)
        while not r1.is_zero():
            quotient, remainder = r0.divmod(r1)
            r0, r1 = r1, remainder
            s0, s1 = s1, s0 - quotient * s1
        if r0.degree != 0:
            raise ZeroDivisionError("element shares a factor with the modulus")
        scale = self.base.invert(r0.constant_term)
        return self._from_poly(s0 * scale)

    def exact_divide(self, a, b):
        try:
            return self.mul(a, self.invert(b))
        except ZeroDivisionError:
            return None

    def pow(self, a, exponent: int) -> Tuple[int, ...]:
        """``a ** exponent`` (negative exponents use the inverse)."""
        if exponent < 0:
            a = self.invert(a)
            exponent = -exponent
        result = self.one
        base = self._as_tuple(a)
        while exponent:
            if exponent & 1:
                result = self.mul(result, base)
            base = self.mul(base, base)
            exponent >>= 1
        return result

    # -- structure -------------------------------------------------------------------
    def canonical(self, a) -> Tuple[int, ...]:
        return self._as_tuple(a)

    def is_field(self) -> bool:
        return True

    def order(self) -> int:
        """Number of elements ``p^e``."""
        return self.p ** self.e

    def elements(self) -> Iterator[Tuple[int, ...]]:
        """Iterate over all field elements (only sensible for tiny fields)."""
        def _rec(prefix: List[int]) -> Iterator[Tuple[int, ...]]:
            if len(prefix) == self.e:
                yield tuple(prefix)
                return
            for value in range(self.p):
                yield from _rec(prefix + [value])

        return _rec([])

    # -- auxiliary ----------------------------------------------------------------------
    def random_element(self, rng: random.Random) -> Tuple[int, ...]:
        return tuple(rng.randrange(self.p) for _ in range(self.e))

    def element_bits(self, a) -> int:
        return self.e * max(1, (self.p - 1).bit_length())

    def format_element(self, a) -> str:
        a = self._as_tuple(a)
        if all(c == 0 for c in a[1:]):
            return str(a[0])
        return "(" + ",".join(str(c) for c in a) + ")"

    def from_int(self, value: int) -> Tuple[int, ...]:
        """Embed an integer by its base-``p`` digits (a bijection onto the field)."""
        digits = []
        v = int(value) % self.order()
        for _ in range(self.e):
            digits.append(v % self.p)
            v //= self.p
        return tuple(digits)

    def to_int(self, a) -> int:
        """Inverse of :meth:`from_int`."""
        a = self._as_tuple(a)
        return sum(c * self.p ** i for i, c in enumerate(a))

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ExtensionField) and other.p == self.p
                and other.e == self.e and other.modulus == self.modulus)

    def __hash__(self) -> int:
        return hash(("ExtensionField", self.p, self.e, self.modulus.coeffs))
