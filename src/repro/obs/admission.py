"""Per-tenant token-bucket quotas and weighted fair-share admission.

The serving engine (``net/engine.py``) used to expose raw admission
hooks (PR 6): arbitrary callables deciding shed-or-serve per request.
This module replaces that with a declarative control plane:

* :class:`TokenBucket` — the classic leaky-bucket rate limiter with a
  guaranteed refill rate and a burst ceiling.
* :class:`FairShareAdmission` — a per-tenant map of token buckets plus
  a shared overflow pool.  A tenant whose guaranteed bucket is empty
  may borrow from the pool; borrowing is weighted, so when the pool is
  contended a tenant with weight 2 can draw twice the share of a
  tenant with weight 1 before being shed.

Both classes take an injectable ``clock`` so tests and chaos harnesses
can drive them deterministically.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

__all__ = ["TokenBucket", "FairShareAdmission", "TenantQuota"]


class TokenBucket:
    """A monotonic-clock token bucket.

    ``rate`` tokens accrue per second up to ``burst`` capacity.  The
    bucket starts full.  :meth:`try_acquire` either consumes a token
    and returns ``None`` or leaves state untouched and returns the
    seconds until a token will be available (a retry-after hint).
    """

    __slots__ = ("rate", "burst", "_tokens", "_stamp", "_clock", "_lock")

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        """Create a full bucket refilling at ``rate``/s up to ``burst``."""
        if rate <= 0:
            raise ValueError("token bucket rate must be positive")
        if burst <= 0:
            raise ValueError("token bucket burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._clock = clock
        self._stamp = clock()
        self._lock = threading.Lock()

    def _refill_locked(self) -> None:
        now = self._clock()
        elapsed = now - self._stamp
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._stamp = now

    def try_acquire(self, tokens: float = 1.0) -> Optional[float]:
        """Consume ``tokens`` and return None, or return retry-after seconds."""
        with self._lock:
            self._refill_locked()
            if self._tokens >= tokens:
                self._tokens -= tokens
                return None
            deficit = tokens - self._tokens
            return deficit / self.rate

    @property
    def available(self) -> float:
        """Tokens currently available (after refill)."""
        with self._lock:
            self._refill_locked()
            return self._tokens


class TenantQuota:
    """One tenant's quota state: guaranteed bucket, weight, borrow ledger."""

    __slots__ = ("tenant", "bucket", "weight", "borrowed", "admitted", "shed")

    def __init__(self, tenant: str, bucket: TokenBucket, weight: float) -> None:
        """Bind a tenant name to its guaranteed bucket and fair-share weight."""
        self.tenant = tenant
        self.bucket = bucket
        self.weight = float(weight)
        self.borrowed = 0.0
        self.admitted = 0
        self.shed = 0


class FairShareAdmission:
    """Weighted fair-share admission over per-tenant token buckets.

    Each tenant gets a guaranteed :class:`TokenBucket`.  When a tenant's
    own bucket is empty, it may draw from the shared overflow pool (if
    one is configured) — but only while its *borrow share* is within its
    weight fraction: a tenant may hold at most
    ``weight / total_weight`` of all outstanding borrowed tokens, so a
    heavy tenant cannot starve light ones out of the pool.  Borrow
    ledgers decay at the pool refill rate, mirroring the pool itself.

    Tenants without a configured quota are admitted unconditionally
    (quota-less deployments behave exactly as before this class
    existed), unless a ``default_quota`` is set.
    """

    __slots__ = ("_tenants", "_pool", "_default", "_clock", "_lock",
                 "_ledger_stamp", "_pool_rate")

    def __init__(
        self,
        pool_rate: Optional[float] = None,
        pool_burst: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        """Create an admission controller, optionally with an overflow pool."""
        self._tenants: Dict[str, TenantQuota] = {}
        self._default: Optional[TenantQuota] = None
        self._clock = clock
        self._lock = threading.Lock()
        self._ledger_stamp = clock()
        self._pool: Optional[TokenBucket] = None
        self._pool_rate = 0.0
        if pool_rate is not None:
            burst = pool_burst if pool_burst is not None else pool_rate
            self._pool = TokenBucket(pool_rate, burst, clock)
            self._pool_rate = float(pool_rate)

    def set_pool(self, rate: float, burst: Optional[float] = None) -> None:
        """Configure (or replace) the shared overflow pool after construction."""
        pool = TokenBucket(rate, burst if burst is not None else rate, self._clock)
        with self._lock:
            self._pool = pool
            self._pool_rate = float(rate)

    def set_quota(
        self,
        tenant: str,
        rate: float,
        burst: Optional[float] = None,
        weight: float = 1.0,
    ) -> None:
        """Configure (or replace) a tenant's guaranteed quota and weight."""
        if weight <= 0:
            raise ValueError("tenant weight must be positive")
        bucket = TokenBucket(rate, burst if burst is not None else rate, self._clock)
        with self._lock:
            self._tenants[tenant] = TenantQuota(tenant, bucket, weight)

    def set_default_quota(
        self, rate: float, burst: Optional[float] = None, weight: float = 1.0
    ) -> None:
        """Quota applied to tenants that have no explicit configuration."""
        bucket = TokenBucket(rate, burst if burst is not None else rate, self._clock)
        with self._lock:
            self._default = TenantQuota("*", bucket, weight)

    def clear_quota(self, tenant: str) -> None:
        """Remove a tenant's quota (it becomes unlimited again)."""
        with self._lock:
            self._tenants.pop(tenant, None)

    def quotas(self) -> Dict[str, TenantQuota]:
        """Snapshot of configured tenant quotas (shared objects)."""
        with self._lock:
            return dict(self._tenants)

    def _decay_ledgers_locked(self) -> None:
        now = self._clock()
        elapsed = now - self._ledger_stamp
        self._ledger_stamp = now
        if elapsed <= 0 or self._pool_rate <= 0:
            return
        decay = elapsed * self._pool_rate
        for quota in self._tenants.values():
            quota.borrowed = max(0.0, quota.borrowed - decay)

    def try_admit(self, tenant: str) -> Optional[float]:
        """Admit one request for ``tenant``.

        Returns ``None`` on admission or a retry-after hint in seconds
        when the request should be shed.
        """
        with self._lock:
            quota = self._tenants.get(tenant)
            if quota is None:
                quota = self._default
            if quota is None:
                return None  # unlimited tenant
            self._decay_ledgers_locked()
            retry_after = quota.bucket.try_acquire()
            if retry_after is None:
                quota.admitted += 1
                return None
            pool_hint = self._try_borrow_locked(quota)
            if pool_hint is None:
                quota.admitted += 1
                return None
            quota.shed += 1
            return min(retry_after, pool_hint)

    def _try_borrow_locked(self, quota: TenantQuota) -> Optional[float]:
        if self._pool is None:
            return float("inf")
        total_weight = sum(q.weight for q in self._tenants.values())
        if quota is self._default or total_weight <= 0:
            share_cap = self._pool.burst
        else:
            outstanding = sum(q.borrowed for q in self._tenants.values())
            share_cap = (quota.weight / total_weight) * max(
                self._pool.burst, outstanding + 1.0
            )
            if quota.borrowed + 1.0 > share_cap:
                # Over fair share of the contended pool: shed, and let the
                # ledger decay bring the tenant back under its cap.
                return max((quota.borrowed + 1.0 - share_cap) / self._pool_rate,
                           1.0 / self._pool_rate)
        hint = self._pool.try_acquire()
        if hint is None:
            quota.borrowed += 1.0
            return None
        return hint

    def ledger(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant accounting view (admitted/shed/borrowed/available)."""
        with self._lock:
            self._decay_ledgers_locked()
            out: Dict[str, Dict[str, float]] = {}
            for tenant, quota in self._tenants.items():
                out[tenant] = {
                    "admitted": quota.admitted,
                    "shed": quota.shed,
                    "borrowed": quota.borrowed,
                    "available": quota.bucket.available,
                    "weight": quota.weight,
                }
            return out
