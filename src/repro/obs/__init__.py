"""Observability and admission control plane for the serving stack.

One :class:`MetricsRegistry` per serving stack is the single source of
truth for operational accounting: request counters with per-document
and per-kind labels, queue-depth gauges, and fixed-bucket latency
histograms with p50/p95/p99 snapshots.  ``net/`` components emit into
the registry; ``cli stats``, the in-band ``stats``/``health`` wire
messages, and the ``serve --metrics-port`` scrape endpoint read from
it.  :class:`FairShareAdmission` layers per-tenant token-bucket quotas
with weighted borrowing from a shared pool on top of the same numbers.
"""

from .admission import FairShareAdmission, TenantQuota, TokenBucket
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    labels_key,
)
from .scrape import MetricsServer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsServer",
    "DEFAULT_LATENCY_BUCKETS",
    "labels_key",
    "FairShareAdmission",
    "TenantQuota",
    "TokenBucket",
]
