"""Structured metrics: counters, gauges, and fixed-bucket latency histograms.

This module is the accounting backbone for every layer of the serving
stack.  A :class:`MetricsRegistry` hands out named instruments keyed by a
metric name plus a set of label dimensions (``tenant``, ``document``,
``kind`` ...).  Instruments are cheap: a counter is one integer behind a
lock, a histogram is a fixed array of bucket counts.  Nothing allocates
on the hot path after the first call for a given label set.

Design constraints inherited from the rest of the repository:

* Exact reconciliation.  The serving layer asserts accounting
  invariants (``admitted == completed + shed + failed``), so counters
  must not drop increments under concurrency.  Each instrument guards
  its state with its own small lock rather than relying on GIL
  scheduling accidents.
* Deterministic snapshots.  ``snapshot()`` and ``render_text()`` emit
  label sets in sorted order so benchmark payloads and scrape output
  are stable across runs.
* Histogram percentiles are bucket-quantised (the upper bound of the
  bucket containing the requested rank) but clamped to the observed
  ``[min, max]`` range, so a single-sample histogram reports the exact
  sample and the overflow bucket reports the true maximum.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "labels_key",
]

LabelKey = Tuple[Tuple[str, str], ...]


def labels_key(labels: Mapping[str, str]) -> LabelKey:
    """Canonicalise a label mapping into a hashable, sorted tuple."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _default_latency_buckets() -> Tuple[float, ...]:
    """Exponential upper bounds from 100us to ~10s (4 per decade)."""
    bounds: List[float] = []
    bound = 1e-4
    while bound <= 10.0:
        bounds.append(bound)
        bound *= 1.7782794100389228  # 10 ** 0.25
    return tuple(bounds)


DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = _default_latency_buckets()


class Counter:
    """A monotonically increasing integer counter."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str = "", labels: Optional[Mapping[str, str]] = None) -> None:
        """Create a counter, optionally bound to a name and label set."""
        self.name = name
        self.labels: Dict[str, str] = dict(labels or {})
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        with self._lock:
            self._value += amount

    def set(self, value: int) -> None:
        """Force the counter to ``value`` (used by view-style adapters)."""
        with self._lock:
            self._value = int(value)

    @property
    def value(self) -> int:
        """Current count."""
        with self._lock:
            return self._value

    def reset(self) -> None:
        """Zero the counter."""
        self.set(0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.labels!r}, value={self.value})"


class Gauge:
    """A value that can go up and down (queue depth, inflight requests)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str = "", labels: Optional[Mapping[str, str]] = None) -> None:
        """Create a gauge, optionally bound to a name and label set."""
        self.name = name
        self.labels: Dict[str, str] = dict(labels or {})
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (default 1) to the gauge."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        """Subtract ``amount`` (default 1) from the gauge."""
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        """Current gauge value."""
        with self._lock:
            return self._value

    def reset(self) -> None:
        """Zero the gauge."""
        self.set(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, {self.labels!r}, value={self.value})"


class Histogram:
    """Fixed-bucket histogram with quantised percentile snapshots.

    Buckets are defined by a sorted tuple of upper bounds; observations
    above the last bound land in an implicit overflow bucket.  The
    histogram additionally tracks count, sum, min, and max so snapshots
    can clamp quantised percentiles to the observed range.
    """

    __slots__ = ("name", "labels", "bounds", "_counts", "_count", "_sum",
                 "_min", "_max", "_lock")

    def __init__(
        self,
        name: str = "",
        labels: Optional[Mapping[str, str]] = None,
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        """Create a histogram with the given bucket upper bounds."""
        self.name = name
        self.labels: Dict[str, str] = dict(labels or {})
        bounds = tuple(buckets) if buckets is not None else DEFAULT_LATENCY_BUCKETS
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram bucket bounds must be sorted ascending")
        if len(bounds) == 0:
            raise ValueError("histogram requires at least one bucket bound")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 overflow bucket
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = self._bucket_index(value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    def _bucket_index(self, value: float) -> int:
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    @property
    def count(self) -> int:
        """Number of observations recorded."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        with self._lock:
            return self._sum

    def percentile(self, p: float) -> Optional[float]:
        """Quantised percentile ``p`` in [0, 100]; None with no samples."""
        with self._lock:
            return self._percentile_locked(p)

    def _percentile_locked(self, p: float) -> Optional[float]:
        if self._count == 0:
            return None
        rank = max(1, int(round(p / 100.0 * self._count + 0.5)))
        rank = min(rank, self._count)
        running = 0
        chosen = len(self._counts) - 1
        for index, bucket_count in enumerate(self._counts):
            running += bucket_count
            if running >= rank:
                chosen = index
                break
        if chosen >= len(self.bounds):
            # Overflow bucket: the best upper bound we know is the max.
            value = self._max if self._max is not None else self.bounds[-1]
        else:
            value = self.bounds[chosen]
        # Clamp quantisation error to the observed range.
        if self._min is not None:
            value = max(value, self._min)
        if self._max is not None:
            value = min(value, self._max)
        return value

    def snapshot(self) -> Dict[str, Optional[float]]:
        """Count/sum/min/max plus p50/p95/p99 in one consistent view."""
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "p50": self._percentile_locked(50.0),
                "p95": self._percentile_locked(95.0),
                "p99": self._percentile_locked(99.0),
            }

    def reset(self) -> None:
        """Discard all observations."""
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = None
            self._max = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, {self.labels!r}, count={self.count})"


class MetricsRegistry:
    """Get-or-create factory and snapshot surface for all instruments.

    Instruments are keyed by ``(name, sorted(labels))``.  Creation takes
    the registry lock once; subsequent lookups with the same key return
    the cached instrument, so hot paths should hold on to the instrument
    rather than re-resolving it per call (every ``net/`` call site does).
    """

    __slots__ = ("_lock", "_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        """Create an empty registry."""
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    def counter(self, name: str, **labels: str) -> Counter:
        """Return the counter for ``name`` + ``labels``, creating it once."""
        key = (name, labels_key(labels))
        with self._lock:
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = Counter(name, labels)
                self._counters[key] = instrument
            return instrument

    def gauge(self, name: str, **labels: str) -> Gauge:
        """Return the gauge for ``name`` + ``labels``, creating it once."""
        key = (name, labels_key(labels))
        with self._lock:
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = Gauge(name, labels)
                self._gauges[key] = instrument
            return instrument

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None, **labels: str
    ) -> Histogram:
        """Return the histogram for ``name`` + ``labels``, creating it once."""
        key = (name, labels_key(labels))
        with self._lock:
            instrument = self._histograms.get(key)
            if instrument is None:
                instrument = Histogram(name, labels, buckets)
                self._histograms[key] = instrument
            return instrument

    def counters(self, name: Optional[str] = None) -> List[Counter]:
        """All counters, optionally filtered by metric name."""
        with self._lock:
            return [c for (n, _), c in sorted(self._counters.items())
                    if name is None or n == name]

    def gauges(self, name: Optional[str] = None) -> List[Gauge]:
        """All gauges, optionally filtered by metric name."""
        with self._lock:
            return [g for (n, _), g in sorted(self._gauges.items())
                    if name is None or n == name]

    def histograms(self, name: Optional[str] = None) -> List[Histogram]:
        """All histograms, optionally filtered by metric name."""
        with self._lock:
            return [h for (n, _), h in sorted(self._histograms.items())
                    if name is None or n == name]

    def counter_total(self, name: str, **labels: str) -> int:
        """Sum of all counters named ``name`` whose labels include ``labels``."""
        wanted = set(labels_key(labels))
        return sum(c.value for c in self.counters(name)
                   if wanted <= set(labels_key(c.labels)))

    def snapshot(self) -> Dict[str, List[Dict[str, object]]]:
        """A JSON-friendly dump of every instrument, sorted and labelled."""
        out: Dict[str, List[Dict[str, object]]] = {
            "counters": [], "gauges": [], "histograms": [],
        }
        for counter in self.counters():
            out["counters"].append({
                "name": counter.name, "labels": dict(counter.labels),
                "value": counter.value,
            })
        for gauge in self.gauges():
            out["gauges"].append({
                "name": gauge.name, "labels": dict(gauge.labels),
                "value": gauge.value,
            })
        for histogram in self.histograms():
            entry: Dict[str, object] = {
                "name": histogram.name, "labels": dict(histogram.labels),
            }
            entry.update(histogram.snapshot())
            out["histograms"].append(entry)
        return out

    def render_text(self) -> str:
        """Prometheus-style plaintext exposition of the registry."""
        lines: List[str] = []
        for counter in self.counters():
            lines.append(_format_sample(counter.name, counter.labels, counter.value))
        for gauge in self.gauges():
            lines.append(_format_sample(gauge.name, gauge.labels, gauge.value))
        for histogram in self.histograms():
            snap = histogram.snapshot()
            lines.append(_format_sample(
                histogram.name + "_count", histogram.labels, snap["count"]))
            lines.append(_format_sample(
                histogram.name + "_sum", histogram.labels, snap["sum"]))
            for quantile in ("p50", "p95", "p99"):
                value = snap[quantile]
                if value is None:
                    continue
                labels = dict(histogram.labels)
                labels["quantile"] = quantile
                lines.append(_format_sample(histogram.name, labels, value))
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Reset every instrument in place (instruments stay registered)."""
        for counter in self.counters():
            counter.reset()
        for gauge in self.gauges():
            gauge.reset()
        for histogram in self.histograms():
            histogram.reset()


def _format_sample(name: str, labels: Mapping[str, str], value: object) -> str:
    if labels:
        rendered = ",".join(
            f'{key}="{_escape_label(str(val))}"'
            for key, val in sorted(labels.items())
        )
        return f"{name}{{{rendered}}} {value}"
    return f"{name} {value}"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
