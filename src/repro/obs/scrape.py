"""Plaintext metrics scrape endpoint over stdlib ``http.server``.

``serve --metrics-port N`` boots a :class:`MetricsServer` next to the
search transport.  It exposes two routes:

* ``GET /metrics`` — Prometheus-style plaintext rendering of the
  registry (see :meth:`repro.obs.metrics.MetricsRegistry.render_text`).
* ``GET /health`` — a one-line liveness probe with the health payload
  supplied by the serving layer.

The server runs on a daemon thread and holds no references into the
request path; scraping never takes engine locks beyond the per-metric
locks inside the registry.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional

from .metrics import MetricsRegistry

__all__ = ["MetricsServer"]


class _ScrapeHandler(BaseHTTPRequestHandler):
    """Request handler for /metrics and /health."""

    # Set by MetricsServer before the server starts.
    registry: MetricsRegistry
    health: Callable[[], Dict[str, object]]

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        """Serve /metrics (plaintext) or /health (JSON)."""
        if self.path.split("?", 1)[0] == "/metrics":
            body = self.registry.render_text().encode("utf-8")
            self._reply(200, body, "text/plain; version=0.0.4; charset=utf-8")
        elif self.path.split("?", 1)[0] == "/health":
            payload = self.health()
            status = 200 if payload.get("status") == "ok" else 503
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            self._reply(status, body, "application/json")
        else:
            self._reply(404, b"not found\n", "text/plain")

    def _reply(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        """Silence per-request logging (scrapes are high-frequency)."""


class MetricsServer:
    """Daemon-thread HTTP server exposing a registry for scraping."""

    def __init__(
        self,
        registry: MetricsRegistry,
        port: int = 0,
        host: str = "127.0.0.1",
        health: Optional[Callable[[], Dict[str, object]]] = None,
    ) -> None:
        """Bind the scrape server; port 0 picks an ephemeral port."""
        handler = type(
            "_BoundScrapeHandler",
            (_ScrapeHandler,),
            {
                "registry": registry,
                "health": staticmethod(health or (lambda: {"status": "ok"})),
            },
        )
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The bound TCP port."""
        return self._httpd.server_address[1]

    def start(self) -> "MetricsServer":
        """Start serving on a daemon thread; returns self for chaining."""
        thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="metrics-scrape",
            daemon=True,
        )
        thread.start()
        self._thread = thread
        return self

    def stop(self) -> None:
        """Shut the server down and join the serving thread."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        """Context-manager entry: start the server."""
        return self.start()

    def __exit__(self, *exc: object) -> None:
        """Context-manager exit: stop the server."""
        self.stop()
