"""Experiment tooling: storage accounting (§5), bandwidth measurements,
leakage auditing and plain-text result tables."""

from .bandwidth import (
    BandwidthRow,
    measure_download_all_bandwidth,
    measure_lookup_bandwidth,
)
from .leakage import LeakageReport, audit_server_view, share_value_histogram
from .storage import (
    StorageRow,
    fp_storage_formula_bits,
    int_storage_formula_bits,
    plaintext_storage_formula_bits,
    storage_report,
)
from .tables import format_ratio, format_table, rows_from_dicts

__all__ = [
    "StorageRow",
    "storage_report",
    "plaintext_storage_formula_bits",
    "fp_storage_formula_bits",
    "int_storage_formula_bits",
    "BandwidthRow",
    "measure_lookup_bandwidth",
    "measure_download_all_bandwidth",
    "LeakageReport",
    "audit_server_view",
    "share_value_histogram",
    "format_table",
    "format_ratio",
    "rows_from_dicts",
]
