"""Small text-table helpers used by benchmarks, examples and EXPERIMENTS.md.

The benchmark harnesses print the same rows/series the paper reports (or
implies); a uniform plain-text table keeps that output readable both on a
terminal and when pasted into the experiment log.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence

__all__ = ["format_table", "format_ratio", "rows_from_dicts"]


def _render_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]],
                 title: str = "") -> str:
    """Render a fixed-width text table."""
    rendered_rows = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def _line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(_line([str(h) for h in headers]))
    parts.append("-+-".join("-" * width for width in widths))
    parts.extend(_line(row) for row in rendered_rows)
    return "\n".join(parts)


def format_ratio(numerator: float, denominator: float) -> str:
    """Human-readable ratio such as ``12.3x`` (safe for zero denominators)."""
    if denominator == 0:
        return "inf" if numerator else "1.0x"
    return f"{numerator / denominator:.1f}x"


def rows_from_dicts(records: Sequence[Dict[str, Any]],
                    columns: Sequence[str]) -> List[List[Any]]:
    """Project a list of dictionaries onto a fixed column order."""
    return [[record.get(column, "") for column in columns] for record in records]
