"""Storage accounting (the §5 analysis of the paper).

The paper compares three representations of a tree with ``n`` elements and
``p`` distinct tag names (``d`` is the degree of ``r(x)``):

=========================  =====================================
representation             storage order (bits)
=========================  =====================================
unencrypted                ``n · log p``
``Z[x]/(r(x))``            ``n(d+1)·log(pⁿ) = n²(d+1)·log p``
``F_p[x]/(x^{p-1} − 1)``   ``n·(p−1)·log p``
=========================  =====================================

This module computes both the analytic formulas and the *measured* sizes
of concrete encodings so experiment E8 can put them side by side.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from ..algebra.quotient import EncodingRing, FpQuotientRing, IntQuotientRing
from ..core.encoder import PolynomialTree, encode_document
from ..core.mapping import TagMapping
from ..xmltree import XmlDocument

__all__ = [
    "plaintext_storage_formula_bits",
    "fp_storage_formula_bits",
    "int_storage_formula_bits",
    "StorageRow",
    "storage_report",
]


def plaintext_storage_formula_bits(element_count: int, tag_count: int) -> float:
    """Unencrypted storage, ``n·log₂ p`` bits."""
    return element_count * math.log2(max(2, tag_count))


def fp_storage_formula_bits(element_count: int, prime: int) -> float:
    """``F_p`` ring storage, ``n·(p−1)·log₂ p`` bits."""
    return element_count * (prime - 1) * math.log2(prime)


def int_storage_formula_bits(element_count: int, tag_count: int,
                             modulus_degree: int) -> float:
    """``Z[x]/(r)`` ring storage, ``n²·(d+1)·log₂ p`` bits.

    The quadratic factor reflects the coefficient growth: a node polynomial
    is a product of up to ``n`` linear factors with values bounded by ``p``,
    so its coefficients need on the order of ``n·log p`` bits each.
    """
    return (element_count ** 2) * (modulus_degree + 1) * math.log2(max(2, tag_count))


class StorageRow:
    """One representation's storage figures for one document."""

    __slots__ = ("representation", "element_count", "tag_count",
                 "measured_bits", "formula_bits")

    def __init__(self, representation: str, element_count: int, tag_count: int,
                 measured_bits: float, formula_bits: float) -> None:
        self.representation = representation
        self.element_count = element_count
        self.tag_count = tag_count
        self.measured_bits = measured_bits
        self.formula_bits = formula_bits

    @property
    def overhead_vs_formula(self) -> float:
        """Measured / formula ratio (≈1 means the formula predicts well)."""
        if self.formula_bits == 0:
            return float("inf")
        return self.measured_bits / self.formula_bits

    def as_dict(self) -> Dict[str, float]:
        """Dictionary form for tabular reporting."""
        return {
            "representation": self.representation,
            "n": self.element_count,
            "tags": self.tag_count,
            "measured_bits": self.measured_bits,
            "formula_bits": self.formula_bits,
            "measured/formula": self.overhead_vs_formula,
        }


def storage_report(document: XmlDocument, mapping: TagMapping,
                   fp_ring: Optional[FpQuotientRing] = None,
                   int_ring: Optional[IntQuotientRing] = None) -> List[StorageRow]:
    """Measured-vs-formula storage rows for the requested representations."""
    n = document.size()
    tag_count = len(document.distinct_tags())
    rows = [StorageRow("plaintext", n, tag_count,
                       measured_bits=n * max(1, math.ceil(math.log2(max(2, tag_count)))),
                       formula_bits=plaintext_storage_formula_bits(n, tag_count))]
    if fp_ring is not None:
        tree = encode_document(document, mapping, fp_ring)
        rows.append(StorageRow(
            f"F_{fp_ring.p}[x]/(x^{fp_ring.p - 1}-1)", n, tag_count,
            measured_bits=tree.storage_bits(),
            formula_bits=fp_storage_formula_bits(n, fp_ring.p)))
    if int_ring is not None:
        tree = encode_document(document, mapping, int_ring)
        rows.append(StorageRow(
            f"Z[x]/({int_ring.modulus.pretty()})", n, tag_count,
            measured_bits=tree.storage_bits(),
            formula_bits=int_storage_formula_bits(n, tag_count,
                                                  int_ring.modulus.degree)))
    return rows
