"""Leakage audit: what does the server actually observe?

The paper's security claim is informal ("without the server learning
anything about the data or the query").  The reproduction makes the
honest-but-curious server's view explicit and auditable:

* the server's static view: the public tree structure and its share
  polynomials — the latter are distributed like uniformly random ring
  elements, independent of the data, because they are one-time-padded by
  the client's random shares;
* the per-query view: the query *point* (not the tag name — the mapping is
  private), the nodes it was asked to evaluate, and the prune notices,
  i.e. the access pattern.

The audit is used by tests (share randomisation sanity checks) and by the
security example; it also documents the known leakage (access pattern and
query-point repetition) that later literature exploited — see
EXPERIMENTS.md.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence, Union

from ..core.query import LocalServerAdapter
from ..core.share_tree import ServerShareTree
from ..net.server import SearchServer

__all__ = ["LeakageReport", "audit_server_view", "share_value_histogram"]


class LeakageReport:
    """Summary of the information visible to the server."""

    __slots__ = ("node_count", "structure_known", "distinct_points_seen",
                 "point_frequencies", "evaluation_requests", "pruned_nodes",
                 "polynomials_served", "tag_names_seen", "plaintext_seen")

    def __init__(self, node_count: int, structure_known: bool,
                 point_frequencies: Dict[int, int], evaluation_requests: int,
                 pruned_nodes: int, polynomials_served: int) -> None:
        self.node_count = node_count
        #: The tree shape is public by design.
        self.structure_known = structure_known
        self.distinct_points_seen = len(point_frequencies)
        #: How often each query point recurred (query-pattern leakage).
        self.point_frequencies = dict(point_frequencies)
        self.evaluation_requests = evaluation_requests
        self.pruned_nodes = pruned_nodes
        self.polynomials_served = polynomials_served
        #: The protocol never carries tag names or plaintext values.
        self.tag_names_seen = 0
        self.plaintext_seen = 0

    def as_dict(self) -> Dict[str, int]:
        """Dictionary form for tabular reporting."""
        return {
            "node_count": self.node_count,
            "structure_known": int(self.structure_known),
            "distinct_points_seen": self.distinct_points_seen,
            "evaluation_requests": self.evaluation_requests,
            "pruned_nodes": self.pruned_nodes,
            "polynomials_served": self.polynomials_served,
            "tag_names_seen": self.tag_names_seen,
            "plaintext_seen": self.plaintext_seen,
        }

    def __repr__(self) -> str:
        return (f"LeakageReport(points={self.distinct_points_seen}, "
                f"evaluations={self.evaluation_requests}, pruned={self.pruned_nodes})")


def audit_server_view(server: Union[SearchServer, LocalServerAdapter]) -> LeakageReport:
    """Build a :class:`LeakageReport` from a server's recorded observations."""
    if isinstance(server, SearchServer):
        observations = server.observations
        points = Counter(observations.points_seen)
        return LeakageReport(
            node_count=server.share_tree.node_count(),
            structure_known=True,
            point_frequencies=dict(points),
            evaluation_requests=len(observations.evaluated_nodes),
            pruned_nodes=len(observations.pruned_nodes),
            polynomials_served=len(observations.polynomials_served),
        )
    if isinstance(server, LocalServerAdapter):
        points = Counter(server.observed_points)
        return LeakageReport(
            node_count=server.share_tree.node_count(),
            structure_known=True,
            point_frequencies=dict(points),
            evaluation_requests=server.evaluation_requests,
            pruned_nodes=len(server.observed_prunes),
            polynomials_served=0,
        )
    raise TypeError("audit_server_view expects a SearchServer or LocalServerAdapter")


def share_value_histogram(share_tree: ServerShareTree,
                          coefficient_index: int = 0) -> Dict[int, int]:
    """Histogram of one coefficient across all server shares.

    For the ``F_p`` ring a healthy sharing has this histogram close to
    uniform over ``F_p`` regardless of the underlying document — the
    statistical sanity check used by the property-based tests.
    """
    histogram: Counter = Counter()
    for node_id in share_tree.node_ids():
        value = share_tree.share_of(node_id).coefficient(coefficient_index)
        histogram[int(value)] += 1
    return dict(histogram)
