"""Bandwidth and round-trip measurements over the instrumented channel.

Experiment E10 compares, per query:

* the scheme with full (untrusted) verification,
* the scheme with the constant-only (trusted server) optimisation the
  paper describes at the end of §4.3,
* the scheme without verification traffic,
* the download-everything baseline.

Everything is measured in actual wire bytes of the message encoding, so
the comparison is between self-consistent quantities.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..baselines.download_all import DownloadAllClient
from ..core.query import VerificationMode
from ..core.scheme import ClientContext
from ..core.share_tree import ServerShareTree
from ..net.client import connect_in_process
from ..prg import DeterministicPRG
from ..xmltree import XmlDocument

__all__ = ["BandwidthRow", "measure_lookup_bandwidth", "measure_download_all_bandwidth"]


class BandwidthRow:
    """Bytes and round trips of one query execution in one mode."""

    __slots__ = ("mode", "tag", "bytes_to_server", "bytes_to_client", "round_trips",
                 "matches")

    def __init__(self, mode: str, tag: str, bytes_to_server: int,
                 bytes_to_client: int, round_trips: int, matches: int) -> None:
        self.mode = mode
        self.tag = tag
        self.bytes_to_server = bytes_to_server
        self.bytes_to_client = bytes_to_client
        self.round_trips = round_trips
        self.matches = matches

    @property
    def total_bytes(self) -> int:
        """Bytes in both directions."""
        return self.bytes_to_server + self.bytes_to_client

    def as_dict(self) -> Dict[str, Union[str, int]]:
        """Dictionary form for tabular reporting."""
        return {
            "mode": self.mode,
            "tag": self.tag,
            "bytes_to_server": self.bytes_to_server,
            "bytes_to_client": self.bytes_to_client,
            "total_bytes": self.total_bytes,
            "round_trips": self.round_trips,
            "matches": self.matches,
        }


def measure_lookup_bandwidth(client: ClientContext, share_tree: ServerShareTree,
                             tag: str,
                             modes: Optional[List[VerificationMode]] = None
                             ) -> List[BandwidthRow]:
    """Run ``//tag`` once per verification mode over a fresh channel each time."""
    modes = modes or [VerificationMode.FULL, VerificationMode.CONSTANT_ONLY,
                      VerificationMode.NONE]
    rows: List[BandwidthRow] = []
    for mode in modes:
        adapter, _, channel = connect_in_process(share_tree)
        outcome = client.lookup(adapter, tag, verification=mode)
        stats = channel.stats
        rows.append(BandwidthRow(
            mode=f"scheme/{mode.value}",
            tag=tag,
            bytes_to_server=stats.bytes_to_server,
            bytes_to_client=stats.bytes_to_client,
            round_trips=stats.round_trips,
            matches=len(outcome.all_answers()),
        ))
    return rows


def measure_download_all_bandwidth(document: XmlDocument, tag: str,
                                   seed: bytes = b"download-all") -> BandwidthRow:
    """The download-everything baseline for the same lookup."""
    baseline_client = DownloadAllClient(DeterministicPRG(seed))
    server = baseline_client.outsource(document)
    result = baseline_client.lookup(server, tag)
    return BandwidthRow(
        mode="baseline/download-all",
        tag=tag,
        bytes_to_server=result.stats.bytes_to_server,
        bytes_to_client=result.stats.bytes_to_client,
        round_trips=result.stats.round_trips,
        matches=len(result.matches),
    )
