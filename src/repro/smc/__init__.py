"""Secure multi-party computation substrate (the §3 voting protocols)."""

from .voting import ProtocolTranscript, SecureSummation, SecureVeto, VotingParty

__all__ = ["VotingParty", "ProtocolTranscript", "SecureSummation", "SecureVeto"]
