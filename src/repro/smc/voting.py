"""Secure multi-party computation substrate (§3 of the paper).

The paper motivates its searching scheme by secure multi-party computation
and walks through one concrete protocol: every party ``P_i`` shares its
private input ``x_i`` with a random degree-``t`` polynomial ``g_i`` with
``g_i(0) = x_i`` and sends ``g_i(j)`` to party ``P_j``; each party then
locally sums the shares it received, and any ``t`` collaborating parties
interpolate ``h = Σ g_i`` to learn ``f(x_1..x_n) = h(0) = Σ x_i`` — the
majority-vote function.  The veto variant computes ``Π x_i`` instead.

This module implements both, with explicit message accounting so the
benchmarks can report communication costs as a function of the number of
parties (experiment E12 in DESIGN.md).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..algebra.fp import PrimeField
from ..algebra.interpolate import lagrange_evaluate_at
from ..algebra.poly import Polynomial
from ..errors import SharingError, ThresholdError

__all__ = ["VotingParty", "ProtocolTranscript", "SecureSummation", "SecureVeto"]


class ProtocolTranscript:
    """Message accounting for one protocol run."""

    __slots__ = ("messages_sent", "field_elements_sent", "rounds")

    def __init__(self) -> None:
        self.messages_sent = 0
        self.field_elements_sent = 0
        self.rounds = 0

    def record(self, messages: int, field_elements: int) -> None:
        """Record one communication round."""
        self.messages_sent += messages
        self.field_elements_sent += field_elements
        self.rounds += 1

    def as_dict(self) -> Dict[str, int]:
        """Dictionary form for tabular reporting."""
        return {
            "messages_sent": self.messages_sent,
            "field_elements_sent": self.field_elements_sent,
            "rounds": self.rounds,
        }

    def __repr__(self) -> str:
        return (f"ProtocolTranscript(messages={self.messages_sent}, "
                f"elements={self.field_elements_sent}, rounds={self.rounds})")


class VotingParty:
    """One party: holds a private input and the shares received from others."""

    def __init__(self, index: int, private_input: int, field: PrimeField) -> None:
        if index <= 0:
            raise SharingError("party indices must be positive")
        self.index = index
        self.private_input = field.canonical(private_input)
        self.field = field
        #: Shares g_i(self.index) received from every party i (including self).
        self.received_shares: Dict[int, int] = {}

    # -- phase 1: input sharing ---------------------------------------------------
    def sharing_polynomial(self, degree: int, rng: random.Random) -> Polynomial:
        """Random polynomial ``g_i`` of the given degree with ``g_i(0) = x_i``."""
        coefficients = [self.private_input]
        coefficients += [self.field.random_element(rng) for _ in range(degree)]
        return Polynomial(coefficients, self.field)

    def receive_share(self, from_party: int, value: int) -> None:
        """Store the share ``g_{from_party}(self.index)``."""
        self.received_shares[from_party] = self.field.canonical(value)

    # -- phase 2: local computation ---------------------------------------------------
    def local_sum(self) -> int:
        """The party's share ``h(j) = Σ_i g_i(j)`` of the sum function."""
        total = self.field.zero
        for value in self.received_shares.values():
            total = self.field.add(total, value)
        return total

    def local_product(self) -> int:
        """The party's share ``Π_i g_i(j)`` of the product (veto) function."""
        result = self.field.one
        for value in self.received_shares.values():
            result = self.field.mul(result, value)
        return result

    def __repr__(self) -> str:
        return f"VotingParty(index={self.index})"


class _BaseProtocol:
    """Shared plumbing of the two §3 protocols."""

    def __init__(self, field: PrimeField, threshold: int,
                 inputs: Sequence[int], rng: Optional[random.Random] = None) -> None:
        if threshold < 1:
            raise ThresholdError("the threshold must be at least 1")
        if len(inputs) < threshold:
            raise ThresholdError("cannot have fewer parties than the threshold")
        if len(inputs) >= field.p:
            raise ThresholdError("the field is too small for this many parties")
        self.field = field
        self.threshold = threshold
        self.rng = rng or random.Random(0xB411077)
        self.parties = [VotingParty(i + 1, value, field)
                        for i, value in enumerate(inputs)]
        self.transcript = ProtocolTranscript()

    @property
    def party_count(self) -> int:
        """Number of participating parties."""
        return len(self.parties)

    def _distribute_inputs(self) -> None:
        """Phase 1: every party shares its input with every other party."""
        degree = self.threshold - 1
        messages = 0
        elements = 0
        for sender in self.parties:
            polynomial = sender.sharing_polynomial(degree, self.rng)
            for receiver in self.parties:
                receiver.receive_share(sender.index, polynomial.evaluate(receiver.index))
                if receiver.index != sender.index:
                    messages += 1
                    elements += 1
        self.transcript.record(messages, elements)

    def _collect(self, local_values: Dict[int, int],
                 collaborators: int) -> List[Tuple[int, int]]:
        """Phase 3: ``collaborators`` parties pool their local results."""
        if collaborators > len(local_values):
            raise ThresholdError("not enough parties to collaborate")
        selected = sorted(local_values.items())[:collaborators]
        # Every collaborating party sends its single result value to the others.
        self.transcript.record(messages=collaborators * (collaborators - 1),
                               field_elements=collaborators * (collaborators - 1))
        return selected


class SecureSummation(_BaseProtocol):
    """The majority-vote protocol: ``f(x_1..x_n) = Σ x_i`` (mod p)."""

    def run(self, collaborators: Optional[int] = None) -> int:
        """Execute the protocol and return the (shared, then opened) sum."""
        collaborators = collaborators if collaborators is not None else self.threshold
        if collaborators < self.threshold:
            raise ThresholdError(
                f"at least {self.threshold} collaborating parties are required")
        self._distribute_inputs()
        local = {party.index: party.local_sum() for party in self.parties}
        points = self._collect(local, collaborators)
        return lagrange_evaluate_at(points[: self.threshold], 0, self.field)

    def expected_result(self) -> int:
        """The plaintext sum (for tests and benchmarks)."""
        total = self.field.zero
        for party in self.parties:
            total = self.field.add(total, party.private_input)
        return total


class SecureVeto(_BaseProtocol):
    """The veto protocol: ``f(x_1..x_n) = Π x_i`` (mod p).

    Multiplying two degree-``(t-1)`` sharings yields a degree-``2(t-1)``
    sharing, so the product is computed pairwise with a BGW-style *degree
    reduction* after every multiplication: each party re-shares its product
    share with a fresh degree-``(t-1)`` polynomial and the parties locally
    recombine the sub-shares with the Lagrange weights for 0.  This needs
    ``n ≥ 2t - 1`` parties.  With ``threshold=1`` the protocol degenerates
    to the naive local product (no reduction rounds), which matches the
    paper's simple description.
    """

    def __init__(self, field: PrimeField, threshold: int,
                 inputs: Sequence[int], rng: Optional[random.Random] = None) -> None:
        super().__init__(field, threshold, inputs, rng)
        self.product_degree = 2 * (threshold - 1)
        if self.product_degree + 1 > len(inputs):
            raise ThresholdError(
                "degree reduction after a multiplication needs at least "
                f"{self.product_degree + 1} parties (2·threshold − 1) but only "
                f"{len(inputs)} participate")

    def _lagrange_weights_at_zero(self, indices: Sequence[int]) -> Dict[int, int]:
        weights: Dict[int, int] = {}
        for i in indices:
            weight = self.field.one
            for j in indices:
                if i == j:
                    continue
                weight = self.field.mul(weight, self.field.mul(
                    self.field.neg(j), self.field.invert(self.field.sub(i, j))))
            weights[i] = weight
        return weights

    def _degree_reduce(self, shares: Dict[int, int]) -> Dict[int, int]:
        """One BGW degree-reduction round on a degree-``2(t-1)`` sharing."""
        degree = self.threshold - 1
        indices = sorted(shares)[: self.product_degree + 1]
        weights = self._lagrange_weights_at_zero(indices)
        # Every party re-shares its (product) share; sub_shares[j][i] is the
        # sub-share party i receives from party j.
        sub_shares: Dict[int, Dict[int, int]] = {}
        messages = 0
        for j in indices:
            coefficients = [shares[j]] + [self.field.random_element(self.rng)
                                          for _ in range(degree)]
            polynomial = Polynomial(coefficients, self.field)
            sub_shares[j] = {party.index: polynomial.evaluate(party.index)
                             for party in self.parties}
            messages += len(self.parties) - 1
        self.transcript.record(messages, messages)
        reduced: Dict[int, int] = {}
        for party in self.parties:
            total = self.field.zero
            for j in indices:
                total = self.field.add(total, self.field.mul(
                    weights[j], sub_shares[j][party.index]))
            reduced[party.index] = total
        return reduced

    def run(self, collaborators: Optional[int] = None) -> int:
        """Execute the veto protocol and return the opened product."""
        collaborators = collaborators if collaborators is not None else self.threshold
        if collaborators < self.threshold:
            raise ThresholdError(
                f"at least {self.threshold} collaborating parties are required")
        self._distribute_inputs()
        # Start from the sharing of x_1 and fold in x_2 .. x_n one at a time.
        current = {party.index: party.received_shares[self.parties[0].index]
                   for party in self.parties}
        for sender in self.parties[1:]:
            multiplied = {party.index: self.field.mul(
                current[party.index], party.received_shares[sender.index])
                for party in self.parties}
            if self.threshold > 1:
                current = self._degree_reduce(multiplied)
            else:
                current = multiplied
        points = self._collect(current, collaborators)
        return lagrange_evaluate_at(points[: self.threshold], 0, self.field)

    def expected_result(self) -> int:
        """The plaintext product (for tests and benchmarks)."""
        result = self.field.one
        for party in self.parties:
            result = self.field.mul(result, party.private_input)
        return result
