"""Abstract syntax for the XPath subset used by the paper.

The paper's queries are pure location paths over element tags, such as
``//client`` (element lookup, §4.3) and ``//a/b//c/d/e`` (advanced
querying).  The subset implemented here is:

``('/' | '//') step ( ('/' | '//') step )*``

where every *step* is a tag name or the wildcard ``*``; ``/`` selects
children and ``//`` selects descendants.
"""

from __future__ import annotations

import enum
from typing import List, Sequence, Tuple

__all__ = ["Axis", "Step", "LocationPath"]


class Axis(enum.Enum):
    """Navigation axis of a step."""

    CHILD = "/"
    DESCENDANT = "//"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Step:
    """One location step: an axis plus a tag test (``*`` matches any tag)."""

    __slots__ = ("axis", "tag")

    WILDCARD = "*"

    def __init__(self, axis: Axis, tag: str) -> None:
        if not isinstance(axis, Axis):
            raise TypeError("axis must be an Axis")
        if not tag:
            raise ValueError("step tag must be non-empty (use '*' for a wildcard)")
        self.axis = axis
        self.tag = tag

    def is_wildcard(self) -> bool:
        """True when the step matches any tag."""
        return self.tag == self.WILDCARD

    def matches_tag(self, tag: str) -> bool:
        """Tag test for a concrete element tag."""
        return self.is_wildcard() or self.tag == tag

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Step):
            return NotImplemented
        return self.axis == other.axis and self.tag == other.tag

    def __hash__(self) -> int:
        return hash((self.axis, self.tag))

    def __repr__(self) -> str:
        return f"Step({self.axis.name}, {self.tag!r})"

    def __str__(self) -> str:
        return f"{self.axis.value}{self.tag}"


class LocationPath:
    """A parsed query: an ordered sequence of steps."""

    __slots__ = ("steps",)

    def __init__(self, steps: Sequence[Step]) -> None:
        if not steps:
            raise ValueError("a location path needs at least one step")
        self.steps: Tuple[Step, ...] = tuple(steps)

    # -- inspection -------------------------------------------------------------
    @property
    def length(self) -> int:
        """Number of steps."""
        return len(self.steps)

    def tags(self) -> List[str]:
        """Tags of all non-wildcard steps, in query order (with repeats)."""
        return [step.tag for step in self.steps if not step.is_wildcard()]

    def distinct_tags(self) -> List[str]:
        """Distinct non-wildcard tags, sorted."""
        return sorted(set(self.tags()))

    def is_single_descendant_lookup(self) -> bool:
        """True for the paper's simple element lookup ``//tag``."""
        return (len(self.steps) == 1
                and self.steps[0].axis is Axis.DESCENDANT
                and not self.steps[0].is_wildcard())

    def has_wildcards(self) -> bool:
        """True when any step is a wildcard."""
        return any(step.is_wildcard() for step in self.steps)

    # -- equality / printing -------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LocationPath):
            return NotImplemented
        return self.steps == other.steps

    def __hash__(self) -> int:
        return hash(self.steps)

    def __repr__(self) -> str:
        return f"LocationPath({list(self.steps)!r})"

    def __str__(self) -> str:
        return "".join(str(step) for step in self.steps)
