"""Reference XPath evaluation over plaintext element trees.

This evaluator provides the *ground truth* for every query: the encrypted
search protocol (:mod:`repro.core.query`) and all baselines are checked
against it in the tests, and the plaintext baseline
(:mod:`repro.baselines.plaintext`) simply wraps it.
"""

from __future__ import annotations

from typing import Iterable, List, Set, Union

from ..xmltree import XmlDocument, XmlElement
from .ast import Axis, LocationPath, Step
from .parser import parse_xpath

__all__ = ["evaluate_xpath", "element_matches_path"]


def _initial_candidates(root: XmlElement, step: Step) -> List[XmlElement]:
    if step.axis is Axis.DESCENDANT:
        return [node for node in root.iter() if step.matches_tag(node.tag)]
    # A leading child step anchors at the document root element itself.
    return [root] if step.matches_tag(root.tag) else []


def _advance(candidates: Iterable[XmlElement], step: Step) -> List[XmlElement]:
    seen: Set[int] = set()
    result: List[XmlElement] = []
    for node in candidates:
        if step.axis is Axis.CHILD:
            pool: Iterable[XmlElement] = node.children
        else:
            pool = node.descendants()
        for candidate in pool:
            if step.matches_tag(candidate.tag) and id(candidate) not in seen:
                seen.add(id(candidate))
                result.append(candidate)
    return result


def evaluate_xpath(document: Union[XmlDocument, XmlElement],
                   query: Union[str, LocationPath]) -> List[XmlElement]:
    """All elements selected by ``query``, in document order.

    ``query`` may be a string (parsed with :func:`parse_xpath`) or an
    already-parsed :class:`LocationPath`.
    """
    root = document.root if isinstance(document, XmlDocument) else document
    path = parse_xpath(query) if isinstance(query, str) else query

    candidates = _initial_candidates(root, path.steps[0])
    for step in path.steps[1:]:
        if not candidates:
            return []
        candidates = _advance(candidates, step)

    # Restore document order: pre-order position in the tree.
    order = {id(node): index for index, node in enumerate(root.iter())}
    return sorted(candidates, key=lambda node: order[id(node)])


def element_matches_path(element: XmlElement,
                         query: Union[str, LocationPath]) -> bool:
    """True when ``element`` is in the result set of ``query`` over its tree."""
    root = element.root()
    return any(node is element for node in evaluate_xpath(root, query))
