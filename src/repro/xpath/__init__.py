"""XPath subset: parsing, plaintext evaluation and encrypted query planning."""

from .ast import Axis, LocationPath, Step
from .evaluator import element_matches_path, evaluate_xpath
from .parser import parse_xpath
from .plan import PlannedStep, TagQueryPlan, compile_plan

__all__ = [
    "Axis",
    "Step",
    "LocationPath",
    "parse_xpath",
    "evaluate_xpath",
    "element_matches_path",
    "PlannedStep",
    "TagQueryPlan",
    "compile_plan",
]
