"""Parser for the XPath subset (location paths over tag names)."""

from __future__ import annotations

from typing import List

from ..errors import XPathSyntaxError
from .ast import Axis, LocationPath, Step

__all__ = ["parse_xpath"]

_NAME_START = set("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz_")
_NAME_CHARS = _NAME_START | set("0123456789-._:")


def parse_xpath(query: str) -> LocationPath:
    """Parse a query string such as ``//a/b//c`` into a :class:`LocationPath`.

    Raises :class:`~repro.errors.XPathSyntaxError` for anything outside the
    supported subset (predicates, attributes, functions, absolute text
    matches, ...).
    """
    if not isinstance(query, str):
        raise XPathSyntaxError("the query must be a string")
    text = query.strip()
    if not text:
        raise XPathSyntaxError("empty query")
    if not text.startswith("/"):
        # A bare relative path like "a/b" is treated as "//a/b", which matches
        # the informal usage in the paper's prose.
        text = "//" + text

    steps: List[Step] = []
    position = 0
    length = len(text)
    while position < length:
        if text.startswith("//", position):
            axis = Axis.DESCENDANT
            position += 2
        elif text.startswith("/", position):
            axis = Axis.CHILD
            position += 1
        else:
            raise XPathSyntaxError(
                f"expected '/' or '//' at offset {position} in {query!r}")
        if position >= length:
            raise XPathSyntaxError(f"dangling axis at the end of {query!r}")
        if text[position] == "*":
            steps.append(Step(axis, Step.WILDCARD))
            position += 1
            continue
        if text[position] not in _NAME_START:
            raise XPathSyntaxError(
                f"unsupported token {text[position]!r} at offset {position} in {query!r}")
        start = position
        while position < length and text[position] in _NAME_CHARS:
            position += 1
        name = text[start:position]
        if position < length and text[position] not in "/":
            raise XPathSyntaxError(
                f"unsupported syntax after step {name!r} in {query!r} "
                "(predicates, attributes and functions are not part of the subset)")
        steps.append(Step(axis, name))
    if not steps:
        raise XPathSyntaxError(f"no steps found in {query!r}")
    return LocationPath(steps)
