"""Query plans for encrypted evaluation.

The encrypted search protocol cannot look at tag names directly; it can
only test, per node, whether the factor ``(x - map(tag))`` divides the node
polynomial — i.e. whether *some* descendant-or-self carries that tag
(§4.3).  A :class:`TagQueryPlan` captures what the client needs for this:

* the ordered steps with their axes (structure navigation is public);
* per step, the remaining multiset of tags that must still appear strictly
  below a candidate — this powers the paper's "advanced querying" strategy
  where a whole suffix of the query is tested against one polynomial.

Wildcard steps contribute structure but no containment test.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

from ..errors import QueryError
from .ast import Axis, LocationPath, Step
from .parser import parse_xpath

__all__ = ["PlannedStep", "TagQueryPlan", "compile_plan"]


class PlannedStep:
    """A step annotated with the tag requirements of the remaining suffix."""

    __slots__ = ("axis", "tag", "remaining_tags")

    def __init__(self, axis: Axis, tag: str, remaining_tags: Tuple[str, ...]) -> None:
        self.axis = axis
        self.tag = tag
        #: Tags of this step and every later step (wildcards excluded) — all
        #: of them must be roots of a candidate node's polynomial.
        self.remaining_tags = remaining_tags

    def is_wildcard(self) -> bool:
        """True when the step matches any tag."""
        return self.tag == Step.WILDCARD

    def __repr__(self) -> str:
        return (f"PlannedStep({self.axis.name}, {self.tag!r}, "
                f"remaining={list(self.remaining_tags)!r})")


class TagQueryPlan:
    """Compiled form of a location path for encrypted evaluation."""

    __slots__ = ("path", "steps", "all_tags")

    def __init__(self, path: LocationPath, steps: Sequence[PlannedStep]) -> None:
        self.path = path
        self.steps: Tuple[PlannedStep, ...] = tuple(steps)
        self.all_tags: Tuple[str, ...] = tuple(
            sorted({step.tag for step in steps if not step.is_wildcard()}))

    @property
    def length(self) -> int:
        """Number of steps in the plan."""
        return len(self.steps)

    def is_simple_lookup(self) -> bool:
        """True for the basic ``//tag`` element lookup."""
        return self.path.is_single_descendant_lookup()

    def distinct_tag_count(self) -> int:
        """Number of distinct tags the client must map to query points."""
        return len(self.all_tags)

    def __repr__(self) -> str:
        return f"TagQueryPlan({str(self.path)!r}, steps={len(self.steps)})"


def compile_plan(query: Union[str, LocationPath]) -> TagQueryPlan:
    """Compile a query string or parsed path into a :class:`TagQueryPlan`."""
    path = parse_xpath(query) if isinstance(query, str) else query
    if not isinstance(path, LocationPath):
        raise QueryError("query must be a string or a LocationPath")
    steps: List[PlannedStep] = []
    for index, step in enumerate(path.steps):
        remaining = tuple(s.tag for s in path.steps[index:] if not s.is_wildcard())
        steps.append(PlannedStep(step.axis, step.tag, remaining))
    return TagQueryPlan(path, steps)
