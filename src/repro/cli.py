"""Command-line interface to the scheme.

A small operational tool so the library can be driven without writing
Python: outsource an XML file, inspect what the server would store, run
queries against a stored server file, and decode results.  The client's
secrets (seed + mapping) live in a separate JSON file that never needs to
leave the client machine; the server file contains only what the untrusted
server is allowed to see.

Usage::

    python -m repro.cli outsource data.xml --server-out server.json \
        --client-out client.json --seed my-secret
    python -m repro.cli query server.json client.json "//client/name"
    python -m repro.cli lookup server.json client.json client --mode none
    python -m repro.cli inspect server.json
    python -m repro.cli decode server.json client.json 3
    python -m repro.cli bench --quick --out BENCH_1.json
    python -m repro.cli bench --concurrency 16 --out BENCH_3.json
    python -m repro.cli bench --updates --out BENCH_4.json
    python -m repro.cli bench --ops --out BENCH_7.json
    python -m repro.cli serve server.json --port 9653 --async \
        --metrics-port 9100 --quota docs=50:100:2 --shared-pool 25
    python -m repro.cli stats --port 9653 --json
    python -m repro.cli edit client.json rename 5 --tag price --port 9653
    python -m repro.cli edit client.json insert 2 --xml "<note/>" --port 9653
    python -m repro.cli migrate-store server.db
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
from typing import List, Optional, Sequence

from . import __version__
from .core import (
    AdvancedStrategy,
    ClientContext,
    VerificationMode,
    choose_fp_ring,
    choose_int_ring,
    outsource_document,
)
from .errors import ReproError
from .net import (
    SQLiteShareStore,
    open_share_store,
    ring_to_dict,
    save_share_tree,
)
from .xmltree import parse_document

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Searchable secret-shared XML outsourcing "
                    "(Brinkman/Doumen/Jonker, SDM 2004 reproduction)")
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    outsource = commands.add_parser(
        "outsource", help="encode, split and store an XML document")
    outsource.add_argument("xml_file", help="path to the plaintext XML document")
    outsource.add_argument("--server-out", required=True,
                           help="where to write the server's share tree (JSON)")
    outsource.add_argument("--client-out", required=True,
                           help="where to write the client's secret state (JSON)")
    outsource.add_argument("--seed", default=None,
                           help="client seed (hex or passphrase); random if omitted")
    outsource.add_argument("--ring", choices=["fp", "int"], default="fp",
                           help="encoding ring: F_p[x]/(x^(p-1)-1) or Z[x]/(x^2+1)")
    outsource.add_argument("--store", choices=["json", "sqlite"], default="json",
                           help="server-side backend: one JSON blob (loaded "
                                "whole) or a durable SQLite file with lazy "
                                "share loading (default: json)")
    outsource.add_argument("--allow-p-minus-one", action="store_true",
                           help="allow mapping values equal to p-1 (paper's example)")

    lookup = commands.add_parser("lookup", help="run the element lookup //tag")
    lookup.add_argument("server_file")
    lookup.add_argument("client_file")
    lookup.add_argument("tag")
    lookup.add_argument("--mode", choices=[m.value for m in VerificationMode],
                        default=VerificationMode.FULL.value,
                        help="verification mode (default: full)")

    query = commands.add_parser("query", help="run an XPath-subset query")
    query.add_argument("server_file")
    query.add_argument("client_file")
    query.add_argument("xpath")
    query.add_argument("--strategy", choices=[s.value for s in AdvancedStrategy],
                       default=AdvancedStrategy.SINGLE_PASS.value)

    inspect = commands.add_parser(
        "inspect", help="show what the (untrusted) server stores")
    inspect.add_argument("server_file")

    decode = commands.add_parser(
        "decode", help="recover the tag path of a node id from the shares")
    decode.add_argument("server_file")
    decode.add_argument("client_file")
    decode.add_argument("node_id", type=int)

    serve = commands.add_parser(
        "serve", help="host a stored server file over TCP (framed wire "
                      "protocol; see docs/protocol.md)")
    serve.add_argument("server_file")
    serve.add_argument("--host", default="127.0.0.1",
                       help="interface to bind (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=9653,
                       help="TCP port; 0 picks a free one (default: 9653)")
    serve.add_argument("--async", dest="use_async", action="store_true",
                       help="use the asyncio transport with coalesced "
                            "frontier rounds instead of a thread per session")
    serve.add_argument("--document-id", default=None,
                       help="host the document under this id "
                            "(default: the v1-compatible default document)")
    serve.add_argument("--metrics-port", type=int, default=None, metavar="PORT",
                       help="also serve plaintext /metrics and /health on "
                            "this HTTP port (0 picks a free one)")
    serve.add_argument("--quota", action="append", default=[],
                       metavar="DOC=RATE[:BURST[:WEIGHT]]",
                       help="per-tenant admission quota: requests/second, "
                            "optional burst size and fair-share weight "
                            "(repeatable, one per document id)")
    serve.add_argument("--shared-pool", default=None, metavar="RATE[:BURST]",
                       help="shared overflow pool tenants may borrow from "
                            "in proportion to their weights")

    edit = commands.add_parser(
        "edit", help="edit a *served* document over the wire (v3 update "
                     "protocol with transparent conflict rebase)")
    edit.add_argument("client_file",
                      help="the client secret state written by `outsource`")
    edit.add_argument("operation", choices=["insert", "delete", "rename"],
                      help="which mutation to apply")
    edit.add_argument("node_id", type=int,
                      help="target node: the insert parent, the root of the "
                           "subtree to delete, or the node to rename")
    edit.add_argument("--xml", default=None,
                      help="plaintext subtree to insert (insert only)")
    edit.add_argument("--tag", default=None,
                      help="the new tag name (rename only)")
    edit.add_argument("--host", default="127.0.0.1",
                      help="server host (default: 127.0.0.1)")
    edit.add_argument("--port", type=int, default=9653,
                      help="server TCP port (default: 9653)")
    edit.add_argument("--document-id", default=None,
                      help="address this hosted document id "
                           "(default: the server's default document)")
    edit.add_argument("--max-rebases", type=int, default=4,
                      help="conflict rounds to absorb by refetch-and-rebase "
                           "before giving up (default: 4)")

    stats = commands.add_parser(
        "stats", help="query a running server's metrics snapshot over the "
                      "wire (v3 stats probe)")
    stats.add_argument("--host", default="127.0.0.1",
                       help="server host (default: 127.0.0.1)")
    stats.add_argument("--port", type=int, default=9653,
                       help="server TCP port (default: 9653)")
    stats.add_argument("--document-id", default=None,
                       help="filter the snapshot to this tenant's view "
                            "(default: the whole-server view)")
    stats.add_argument("--health", action="store_true",
                       help="fetch the health summary instead of metrics")
    stats.add_argument("--json", dest="as_json", action="store_true",
                       help="print the raw JSON payload")

    migrate = commands.add_parser(
        "migrate-store",
        help="migrate a legacy share-store-sqlite-v1 file (JSON coefficient "
             "rows) to the v2 format (binary coefficient pages + write-ahead "
             "update log), losslessly and atomically")
    migrate.add_argument("server_file", help="path to the v1 SQLite store")

    bench = commands.add_parser(
        "bench", help="run the quick kernel benchmark suite and write a "
                      "JSON perf snapshot")
    bench.add_argument("--out", default=None,
                       help="snapshot path (default: BENCH_1.json, or "
                            "BENCH_2.json with --serving)")
    bench.add_argument("--quick", action="store_true",
                       help="smaller sizes/degrees for a fast smoke run")
    bench.add_argument("--repeat", type=int, default=3,
                       help="timing repetitions per measurement (default: 3)")
    bench.add_argument("--serving", action="store_true",
                       help="run the serving-engine benchmark (multi-document, "
                            "concurrency, batched vs v1 protocol) instead of "
                            "the kernel suite")
    bench.add_argument("--concurrency", type=int, default=None, metavar="N",
                       help="run the BENCH_3 concurrent-throughput benchmark "
                            "(sync threaded vs async coalesced serving) with "
                            "up to N sessions instead of the kernel suite")
    bench.add_argument("--updates", action="store_true",
                       help="run the BENCH_4 dynamic-update benchmark "
                            "(crash-safe batches on the durable store, "
                            "insert/delete latency scaling, binary-page vs "
                            "JSON-row file size) instead of the kernel suite")
    bench.add_argument("--faults", action="store_true",
                       help="run the BENCH_5 fault-tolerance benchmark "
                            "(lookup availability and latency percentiles "
                            "under injected connection resets, truncated "
                            "frames, busy shedding and store failures) "
                            "instead of the kernel suite")
    bench.add_argument("--fault-seed", type=int, default=0, metavar="SEED",
                       help="seed of the BENCH_5 fault plans (default: 0)")
    bench.add_argument("--kernels", action="store_true",
                       help="run the BENCH_6 vectorized-kernel benchmark "
                            "(array tier vs flat kernels vs generic reference "
                            "for multiplication, batched store evaluation and "
                            "end-to-end lookups, plus adaptive speculation "
                            "depth) instead of the default suite")
    bench.add_argument("--ops", action="store_true",
                       help="run the BENCH_7 control-plane benchmark "
                            "(per-session latency percentiles under "
                            "concurrency, coalescing tick-size sweep, quota "
                            "enforcement overhead, WAL write overhead) "
                            "instead of the kernel suite")
    return parser


def _load_client(path: str, server_tree) -> ClientContext:
    with open(path, "r", encoding="utf-8") as handle:
        state = json.load(handle)
    if state.get("ring") != ring_to_dict(server_tree.ring):
        raise ReproError("the client state was created for a different ring "
                         "than the server file")
    return ClientContext.from_secret_state(server_tree.ring, state["secrets"])


def _seed_bytes(seed: Optional[str]):
    if seed is None:
        return None
    try:
        return bytes.fromhex(seed)
    except ValueError:
        return seed.encode("utf-8")


def _cmd_outsource(args: argparse.Namespace) -> int:
    with open(args.xml_file, "r", encoding="utf-8") as handle:
        document = parse_document(handle.read())
    strict = not args.allow_p_minus_one
    ring = (choose_fp_ring(document, strict=strict) if args.ring == "fp"
            else choose_int_ring(2))
    client, server_tree, _ = outsource_document(
        document, ring=ring, seed=_seed_bytes(args.seed), strict=strict)

    if args.store == "sqlite":
        store = SQLiteShareStore.from_tree(args.server_out, server_tree)
        size = store.file_bytes()
        store.close()
    else:
        size = save_share_tree(server_tree, args.server_out)
    with open(args.client_out, "w", encoding="utf-8") as handle:
        json.dump({"ring": ring_to_dict(ring), "secrets": client.secret_state()},
                  handle, indent=2)

    print(f"outsourced {document.size()} elements "
          f"({len(document.distinct_tags())} distinct tags) in ring {ring.name}")
    print(f"server share tree: {args.server_out} ({size} bytes)")
    print(f"client secret state: {args.client_out} (keep this private)")
    return 0


def _cmd_lookup(args: argparse.Namespace) -> int:
    server_tree = open_share_store(args.server_file)
    client = _load_client(args.client_file, server_tree)
    outcome = client.lookup(server_tree, args.tag,
                            verification=VerificationMode(args.mode))
    print(f"//{args.tag}: {len(outcome.matches)} match(es)")
    for node_id in outcome.matches:
        print(f"  node {node_id}: {client.tag_path_of(server_tree, node_id)}")
    if outcome.unverified_candidates:
        print(f"  unverified candidates: {outcome.unverified_candidates}")
    stats = outcome.stats
    print(f"  evaluated {stats.nodes_evaluated}/{server_tree.node_count()} nodes, "
          f"pruned {stats.nodes_pruned}, {stats.round_trips} round trips")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    server_tree = open_share_store(args.server_file)
    client = _load_client(args.client_file, server_tree)
    result = client.xpath(server_tree, args.xpath,
                          strategy=AdvancedStrategy(args.strategy))
    print(f"{args.xpath}: {len(result.matches)} match(es)")
    for node_id in result.matches:
        print(f"  node {node_id}: {client.tag_path_of(server_tree, node_id)}")
    print(f"  evaluations: {result.stats.evaluations}, "
          f"round trips: {result.stats.round_trips}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    server_tree = open_share_store(args.server_file)
    print(f"backend:     {type(server_tree).__name__}")
    print(f"ring:        {server_tree.ring.name}")
    print(f"nodes:       {server_tree.node_count()}")
    print(f"storage:     {server_tree.storage_bits()} bits "
          f"({server_tree.storage_bits() // 8} bytes of share polynomials)")
    depths = [server_tree.depth_of(node_id) for node_id in server_tree.node_ids()]
    print(f"tree height: {max(depths) if depths else 0}")
    print("note: the server sees structure and share polynomials only; "
          "tag names, the mapping and the seed never appear in this file")
    return 0


def _cmd_decode(args: argparse.Namespace) -> int:
    server_tree = open_share_store(args.server_file)
    client = _load_client(args.client_file, server_tree)
    print(client.tag_path_of(server_tree, args.node_id))
    return 0


def _cmd_edit(args: argparse.Namespace) -> int:
    from .net import RemoteUpdatableTree, connect_socket, ring_from_dict
    from .xmltree import parse_element

    if args.operation == "insert" and not args.xml:
        raise ReproError("insert needs --xml with the subtree to add")
    if args.operation == "rename" and not args.tag:
        raise ReproError("rename needs --tag with the new tag name")

    # The ring travels inside the client state, so editing needs no local
    # copy of the server file — only the live session.
    with open(args.client_file, "r", encoding="utf-8") as handle:
        state = json.load(handle)
    ring = ring_from_dict(state["ring"])
    client = ClientContext.from_secret_state(ring, state["secrets"])

    adapter, channel = connect_socket(args.host, args.port, ring,
                                      document_id=args.document_id)
    try:
        editor = RemoteUpdatableTree(adapter, client.mapping,
                                     client.share_generator,
                                     max_rebases=args.max_rebases)
        if args.operation == "insert":
            report = editor.insert_subtree(args.node_id,
                                           parse_element(args.xml))
        elif args.operation == "delete":
            report = editor.delete_subtree(args.node_id)
        else:
            report = editor.rename_node(args.node_id, args.tag)
    finally:
        channel.close()

    summary = ", ".join(f"{key}={value}"
                        for key, value in report.as_dict().items())
    print(f"committed: {summary}")
    if editor.rebases:
        print(f"rebased {editor.rebases} time(s) around concurrent writers")
    return 0


def _parse_quota_spec(spec: str) -> tuple:
    """``DOC=RATE[:BURST[:WEIGHT]]`` -> (document, rate, burst, weight)."""
    document, sep, numbers = spec.partition("=")
    if not sep or not document:
        raise ReproError(f"malformed --quota {spec!r}: expected "
                         "DOC=RATE[:BURST[:WEIGHT]]")
    parts = numbers.split(":")
    if not 1 <= len(parts) <= 3:
        raise ReproError(f"malformed --quota {spec!r}: expected "
                         "DOC=RATE[:BURST[:WEIGHT]]")
    try:
        rate = float(parts[0])
        burst = float(parts[1]) if len(parts) > 1 else None
        weight = float(parts[2]) if len(parts) > 2 else 1.0
    except ValueError as exc:
        raise ReproError(f"malformed --quota {spec!r}: {exc}") from None
    return document, rate, burst, weight


def _parse_pool_spec(spec: str) -> tuple:
    """``RATE[:BURST]`` -> (rate, burst)."""
    parts = spec.split(":")
    if not 1 <= len(parts) <= 2:
        raise ReproError(f"malformed --shared-pool {spec!r}: expected "
                         "RATE[:BURST]")
    try:
        return float(parts[0]), float(parts[1]) if len(parts) > 1 else None
    except ValueError as exc:
        raise ReproError(f"malformed --shared-pool {spec!r}: {exc}") from None


def _cmd_serve(args: argparse.Namespace) -> int:
    from .net import SearchServer, ThreadedSearchServer, start_async_server
    from .obs import MetricsServer

    store = open_share_store(args.server_file)
    if args.document_id is None:
        server = SearchServer(store)
    else:
        server = SearchServer()
        server.add_document(args.document_id, store)
    for spec in args.quota:
        document, rate, burst, weight = _parse_quota_spec(spec)
        server.registry.configure_quota(document, rate, burst=burst,
                                        weight=weight)
    if args.shared_pool is not None:
        rate, burst = _parse_pool_spec(args.shared_pool)
        server.registry.configure_shared_pool(rate, burst=burst)
    transport = "async (coalesced)" if args.use_async else "threaded"
    metrics_server = None
    try:
        if args.metrics_port is not None:
            metrics_server = MetricsServer(server.metrics,
                                           port=args.metrics_port,
                                           host=args.host,
                                           health=server.health).start()
        if args.use_async:
            handle = start_async_server(server, host=args.host, port=args.port)
            host, port = args.host, handle.port
        else:
            threaded = ThreadedSearchServer(server, host=args.host,
                                            port=args.port).start()
            host, port = threaded.address
        print(f"serving {args.server_file} on {host}:{port} "
              f"[{transport} transport, {store.node_count()} nodes]")
        if metrics_server is not None:
            print(f"metrics on http://{args.host}:{metrics_server.port}"
                  f"/metrics (health on /health)")
        if args.quota:
            print(f"admission quotas on {len(args.quota)} tenant(s)"
                  + (", shared overflow pool enabled"
                     if args.shared_pool is not None else ""))
        print("press Ctrl-C to stop")
        try:
            while True:
                threading.Event().wait(3600)
        except KeyboardInterrupt:
            pass
        finally:
            if args.use_async:
                handle.stop()
            else:
                threaded.stop()
    finally:
        if metrics_server is not None:
            metrics_server.stop()
        store.close()
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from .net.channel import SocketChannel
    from .net.messages import (
        HealthRequest,
        HealthResponse,
        StatsRequest,
        StatsResponse,
    )

    # The stats/health probes are hello-exempt, so the CLI needs no ring
    # and no negotiation — one framed request over a raw socket channel.
    channel = SocketChannel(args.host, args.port)
    try:
        if args.health:
            request = HealthRequest()
        else:
            request = StatsRequest()
        if args.document_id is not None:
            request.for_document(args.document_id)
        response = channel.request(request)
    finally:
        channel.close()

    if args.health:
        if not isinstance(response, HealthResponse):
            raise ReproError(f"unexpected response {response.kind!r}")
        payload = {"status": response.status, **response.detail}
        if args.as_json:
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            for key in sorted(payload):
                print(f"{key}: {payload[key]}")
        return 0 if response.status == "ok" else 1

    if not isinstance(response, StatsResponse):
        raise ReproError(f"unexpected response {response.kind!r}")
    if args.as_json:
        print(json.dumps(response.metrics, indent=2, sort_keys=True))
        return 0
    accounting = response.metrics.get("accounting", {})
    if accounting:
        summary = ", ".join(f"{key}={accounting[key]}"
                            for key in sorted(accounting))
        print(f"accounting: {summary}")
    quota = response.metrics.get("quota")
    if quota:
        print(f"quota: {json.dumps(quota, sort_keys=True)}")
    instruments = response.metrics.get("instruments", {})
    for section in ("counters", "gauges"):
        for entry in instruments.get(section, []):
            labels = ",".join(f"{k}={v}"
                              for k, v in sorted(entry.get("labels", {}).items()))
            suffix = f"{{{labels}}}" if labels else ""
            print(f"{entry['name']}{suffix} {entry['value']}")
    for entry in instruments.get("histograms", []):
        labels = ",".join(f"{k}={v}"
                          for k, v in sorted(entry.get("labels", {}).items()))
        suffix = f"{{{labels}}}" if labels else ""
        print(f"{entry['name']}{suffix} count={entry['count']} "
              f"p50={entry['p50']} p95={entry['p95']} p99={entry['p99']}")
    return 0


def _cmd_migrate_store(args: argparse.Namespace) -> int:
    from .net import migrate_share_store

    stats = migrate_share_store(args.server_file)
    if stats["before_bytes"] == stats["after_bytes"]:
        print(f"{args.server_file}: already in the current format "
              f"({stats['nodes']} nodes, {stats['before_bytes']} bytes)")
    else:
        ratio = stats["before_bytes"] / max(stats["after_bytes"], 1)
        note = (f"{ratio:.2f}x smaller" if ratio >= 1 else
                "larger — SQLite page granularity dominates tiny stores")
        print(f"migrated {args.server_file}: {stats['nodes']} nodes, "
              f"{stats['before_bytes']} -> {stats['after_bytes']} bytes "
              f"({note})")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import (
        format_concurrency_summary,
        format_fault_summary,
        format_kernel_summary,
        format_ops_summary,
        format_serving_summary,
        format_summary,
        format_update_summary,
        run_benchmarks,
        run_concurrency_benchmarks,
        run_fault_benchmarks,
        run_kernel_benchmarks,
        run_ops_benchmarks,
        run_serving_benchmarks,
        run_update_benchmarks,
        write_snapshot,
    )

    selected = [flag for flag, on in
                (("--serving", args.serving),
                 ("--concurrency", args.concurrency is not None),
                 ("--updates", args.updates),
                 ("--faults", args.faults),
                 ("--kernels", args.kernels),
                 ("--ops", args.ops)) if on]
    if len(selected) > 1:
        print(f"error: {' and '.join(selected)} select different benchmark "
              "suites; pass one of them", file=sys.stderr)
        return 2
    if args.ops:
        results = run_ops_benchmarks(quick=args.quick)
        out = args.out or "BENCH_7.json"
        write_snapshot(results, out)
        print(format_ops_summary(results))
    elif args.kernels:
        results = run_kernel_benchmarks(quick=args.quick)
        out = args.out or "BENCH_6.json"
        write_snapshot(results, out)
        print(format_kernel_summary(results))
    elif args.faults:
        results = run_fault_benchmarks(quick=args.quick, seed=args.fault_seed)
        out = args.out or "BENCH_5.json"
        write_snapshot(results, out)
        print(format_fault_summary(results))
    elif args.updates:
        results = run_update_benchmarks(quick=args.quick)
        out = args.out or "BENCH_4.json"
        write_snapshot(results, out)
        print(format_update_summary(results))
    elif args.concurrency is not None:
        if args.concurrency < 1:
            print("error: --concurrency needs at least one session",
                  file=sys.stderr)
            return 2
        session_counts = [n for n in (1, 4, 16, 64) if n < args.concurrency]
        session_counts.append(args.concurrency)
        results = run_concurrency_benchmarks(quick=args.quick,
                                             session_counts=session_counts)
        out = args.out or "BENCH_3.json"
        write_snapshot(results, out)
        print(format_concurrency_summary(results))
    elif args.serving:
        results = run_serving_benchmarks(quick=args.quick)
        out = args.out or "BENCH_2.json"
        write_snapshot(results, out)
        print(format_serving_summary(results))
    else:
        results = run_benchmarks(quick=args.quick, repeat=args.repeat)
        out = args.out or "BENCH_1.json"
        write_snapshot(results, out)
        print(format_summary(results))
    print(f"snapshot written to {out}")
    return 0


_HANDLERS = {
    "outsource": _cmd_outsource,
    "lookup": _cmd_lookup,
    "query": _cmd_query,
    "inspect": _cmd_inspect,
    "decode": _cmd_decode,
    "serve": _cmd_serve,
    "stats": _cmd_stats,
    "edit": _cmd_edit,
    "migrate-store": _cmd_migrate_store,
    "bench": _cmd_bench,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point (returns a process exit code)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream pipe closed early (e.g. `... stats | head`); the
        # interpreter would otherwise print a traceback while flushing.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":       # pragma: no cover - exercised via tests of main()
    sys.exit(main())
