"""A small element-tree model for XML documents.

The paper encodes the *element structure* of an XML document (tag names
and parent/child relations); attributes and text content are explicitly
out of scope for the search scheme (§5) but are preserved by the model so
that documents round-trip through the parser and serializer.

The model is deliberately independent from :mod:`xml.etree` so that the
whole substrate is built from scratch, as the reproduction brief requires.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["XmlElement", "XmlDocument", "TreeStatistics"]

_NAME_START = set("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz_:")
_NAME_CHARS = _NAME_START | set("0123456789-.")


def _validate_tag(tag: str) -> str:
    if not tag:
        raise ValueError("tag names must be non-empty")
    if tag[0] not in _NAME_START or any(c not in _NAME_CHARS for c in tag):
        raise ValueError(f"invalid XML tag name: {tag!r}")
    return tag


class XmlElement:
    """One element node: a tag, optional attributes/text and child elements."""

    __slots__ = ("tag", "attributes", "text", "children", "parent")

    def __init__(self, tag: str,
                 attributes: Optional[Dict[str, str]] = None,
                 text: str = "") -> None:
        self.tag = _validate_tag(tag)
        self.attributes: Dict[str, str] = dict(attributes or {})
        self.text = text
        self.children: List["XmlElement"] = []
        self.parent: Optional["XmlElement"] = None

    # -- tree construction ----------------------------------------------------
    def add_child(self, child: "XmlElement") -> "XmlElement":
        """Append ``child`` and return it (enables fluent building)."""
        if not isinstance(child, XmlElement):
            raise TypeError("children must be XmlElement instances")
        child.parent = self
        self.children.append(child)
        return child

    def add(self, tag: str, attributes: Optional[Dict[str, str]] = None,
            text: str = "") -> "XmlElement":
        """Create a child with the given tag and return the new child."""
        return self.add_child(XmlElement(tag, attributes, text))

    def detach(self) -> "XmlElement":
        """Remove this element from its parent and return it."""
        if self.parent is not None:
            self.parent.children.remove(self)
            self.parent = None
        return self

    # -- navigation --------------------------------------------------------------
    def is_leaf(self) -> bool:
        """True when the element has no child elements."""
        return not self.children

    def depth(self) -> int:
        """Distance to the root (the root has depth 0)."""
        depth, node = 0, self
        while node.parent is not None:
            node = node.parent
            depth += 1
        return depth

    def root(self) -> "XmlElement":
        """The root of the tree containing this element."""
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    def path(self) -> Tuple[int, ...]:
        """Child-index path from the root, e.g. ``(0, 2)`` = third child of first child."""
        indices: List[int] = []
        node = self
        while node.parent is not None:
            indices.append(node.parent.children.index(node))
            node = node.parent
        return tuple(reversed(indices))

    def tag_path(self) -> str:
        """Slash-separated tag path from the root, e.g. ``customers/client/name``."""
        parts: List[str] = []
        node: Optional[XmlElement] = self
        while node is not None:
            parts.append(node.tag)
            node = node.parent
        return "/".join(reversed(parts))

    def iter(self) -> Iterator["XmlElement"]:
        """Pre-order traversal of this element and all its descendants."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def iter_postorder(self) -> Iterator["XmlElement"]:
        """Post-order traversal (children before parents)."""
        for child in self.children:
            yield from child.iter_postorder()
        yield self

    def descendants(self) -> Iterator["XmlElement"]:
        """All strict descendants in pre-order."""
        iterator = self.iter()
        next(iterator)  # skip self
        return iterator

    def ancestors(self) -> Iterator["XmlElement"]:
        """All strict ancestors from parent up to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def find_all(self, tag: str) -> List["XmlElement"]:
        """All descendants-or-self with the given tag (document order)."""
        return [node for node in self.iter() if node.tag == tag]

    def descendant_tags(self) -> List[str]:
        """Multiset (as a list) of tags of self and all descendants."""
        return [node.tag for node in self.iter()]

    # -- measurements -----------------------------------------------------------------
    def size(self) -> int:
        """Number of elements in the subtree rooted at this element."""
        return sum(1 for _ in self.iter())

    def height(self) -> int:
        """Height of the subtree (a leaf has height 0)."""
        if not self.children:
            return 0
        return 1 + max(child.height() for child in self.children)

    # -- copying / equality -------------------------------------------------------------
    def clone(self) -> "XmlElement":
        """Deep copy of the subtree rooted at this element."""
        copy = XmlElement(self.tag, dict(self.attributes), self.text)
        for child in self.children:
            copy.add_child(child.clone())
        return copy

    def structurally_equal(self, other: "XmlElement") -> bool:
        """True when both subtrees have identical tags, text, attributes and shape."""
        if (self.tag != other.tag or self.text != other.text
                or self.attributes != other.attributes
                or len(self.children) != len(other.children)):
            return False
        return all(a.structurally_equal(b)
                   for a, b in zip(self.children, other.children))

    def __repr__(self) -> str:
        return f"<XmlElement {self.tag!r} children={len(self.children)}>"


class XmlDocument:
    """An XML document: a single root element plus document-level helpers."""

    def __init__(self, root: XmlElement) -> None:
        if not isinstance(root, XmlElement):
            raise TypeError("the document root must be an XmlElement")
        self.root = root

    # -- whole-document iteration ----------------------------------------------------
    def iter(self) -> Iterator[XmlElement]:
        """Pre-order traversal of every element."""
        return self.root.iter()

    def elements(self) -> List[XmlElement]:
        """All elements in document order."""
        return list(self.iter())

    def size(self) -> int:
        """Total number of elements (the paper's ``n``)."""
        return self.root.size()

    def height(self) -> int:
        """Height of the document tree."""
        return self.root.height()

    def distinct_tags(self) -> List[str]:
        """Sorted list of distinct tag names (the paper's ``p`` lower bound)."""
        return sorted({node.tag for node in self.iter()})

    def tag_counts(self) -> Dict[str, int]:
        """Occurrences of each tag name."""
        counts: Dict[str, int] = {}
        for node in self.iter():
            counts[node.tag] = counts.get(node.tag, 0) + 1
        return counts

    def find_all(self, tag: str) -> List[XmlElement]:
        """All elements with the given tag name."""
        return self.root.find_all(tag)

    def element_by_path(self, path: Sequence[int]) -> XmlElement:
        """Element addressed by a child-index path (inverse of ``XmlElement.path``)."""
        node = self.root
        for index in path:
            node = node.children[index]
        return node

    def statistics(self) -> "TreeStatistics":
        """Summary statistics used by workload generators and benchmarks."""
        elements = self.elements()
        fanouts = [len(e.children) for e in elements if e.children]
        return TreeStatistics(
            element_count=len(elements),
            distinct_tag_count=len(self.distinct_tags()),
            height=self.height(),
            leaf_count=sum(1 for e in elements if e.is_leaf()),
            max_fanout=max(fanouts) if fanouts else 0,
            average_fanout=(sum(fanouts) / len(fanouts)) if fanouts else 0.0,
        )

    def clone(self) -> "XmlDocument":
        """Deep copy of the document."""
        return XmlDocument(self.root.clone())

    def structurally_equal(self, other: "XmlDocument") -> bool:
        """Deep equality of the two documents."""
        return self.root.structurally_equal(other.root)

    def __repr__(self) -> str:
        return f"<XmlDocument root={self.root.tag!r} size={self.size()}>"


class TreeStatistics:
    """Plain record of document shape statistics."""

    __slots__ = ("element_count", "distinct_tag_count", "height", "leaf_count",
                 "max_fanout", "average_fanout")

    def __init__(self, element_count: int, distinct_tag_count: int, height: int,
                 leaf_count: int, max_fanout: int, average_fanout: float) -> None:
        self.element_count = element_count
        self.distinct_tag_count = distinct_tag_count
        self.height = height
        self.leaf_count = leaf_count
        self.max_fanout = max_fanout
        self.average_fanout = average_fanout

    def as_dict(self) -> Dict[str, float]:
        """Dictionary form for tabular reporting."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        fields = ", ".join(f"{name}={getattr(self, name)!r}" for name in self.__slots__)
        return f"TreeStatistics({fields})"
