"""XML substrate: element-tree model, from-scratch parser and serializer."""

from .model import TreeStatistics, XmlDocument, XmlElement
from .parser import parse_document, parse_element
from .serializer import serialize_document, serialize_element

__all__ = [
    "XmlElement",
    "XmlDocument",
    "TreeStatistics",
    "parse_document",
    "parse_element",
    "serialize_document",
    "serialize_element",
]
