"""A from-scratch XML parser for the element subset used by the scheme.

Supported syntax
----------------
* element tags with attributes: ``<tag a="1" b='2'> ... </tag>``
* self-closing elements: ``<tag/>``
* character data (stored as the element's ``text``)
* comments ``<!-- ... -->`` and processing instructions ``<? ... ?>`` (skipped)
* an optional XML declaration and a DOCTYPE line (skipped)
* the five predefined entities ``&amp; &lt; &gt; &quot; &apos;`` and
  numeric character references

Not supported (rejected with :class:`~repro.errors.XmlParseError`):
namespaces beyond treating ``ns:tag`` as an opaque name, CDATA sections,
external entities, and DTD internal subsets.  This is sufficient for the
documents the paper works with and for the synthetic workloads.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import XmlParseError
from .model import XmlDocument, XmlElement

__all__ = ["parse_document", "parse_element"]

_ENTITY_TABLE = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
}

_WHITESPACE = " \t\r\n"


class _Cursor:
    """Simple cursor over the input string with line/column error reporting."""

    __slots__ = ("text", "pos")

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self, length: int = 1) -> str:
        return self.text[self.pos:self.pos + length]

    def advance(self, length: int = 1) -> str:
        chunk = self.text[self.pos:self.pos + length]
        self.pos += length
        return chunk

    def skip_whitespace(self) -> None:
        while not self.eof() and self.text[self.pos] in _WHITESPACE:
            self.pos += 1

    def expect(self, literal: str) -> None:
        if not self.text.startswith(literal, self.pos):
            raise self.error(f"expected {literal!r}")
        self.pos += len(literal)

    def find(self, literal: str) -> int:
        return self.text.find(literal, self.pos)

    def location(self) -> Tuple[int, int]:
        consumed = self.text[: self.pos]
        line = consumed.count("\n") + 1
        column = self.pos - (consumed.rfind("\n") + 1) + 1
        return line, column

    def error(self, message: str) -> XmlParseError:
        line, column = self.location()
        return XmlParseError(f"{message} at line {line}, column {column}")


def _decode_entities(text: str, cursor: _Cursor) -> str:
    if "&" not in text:
        return text
    out: List[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = text.find(";", i + 1)
        if end == -1:
            raise cursor.error("unterminated entity reference")
        name = text[i + 1:end]
        if name.startswith("#x") or name.startswith("#X"):
            out.append(chr(int(name[2:], 16)))
        elif name.startswith("#"):
            out.append(chr(int(name[1:])))
        elif name in _ENTITY_TABLE:
            out.append(_ENTITY_TABLE[name])
        else:
            raise cursor.error(f"unknown entity &{name};")
        i = end + 1
    return "".join(out)


def _parse_name(cursor: _Cursor) -> str:
    start = cursor.pos
    while not cursor.eof() and cursor.peek() not in _WHITESPACE + "/>=":
        cursor.advance()
    name = cursor.text[start:cursor.pos]
    if not name:
        raise cursor.error("expected a name")
    return name


def _parse_attributes(cursor: _Cursor) -> dict:
    attributes = {}
    while True:
        cursor.skip_whitespace()
        if cursor.eof():
            raise cursor.error("unexpected end of input inside a tag")
        if cursor.peek() in "/>":
            return attributes
        name = _parse_name(cursor)
        cursor.skip_whitespace()
        cursor.expect("=")
        cursor.skip_whitespace()
        quote = cursor.peek()
        if quote not in "\"'":
            raise cursor.error("attribute values must be quoted")
        cursor.advance()
        end = cursor.find(quote)
        if end == -1:
            raise cursor.error("unterminated attribute value")
        raw = cursor.text[cursor.pos:end]
        cursor.pos = end + 1
        if name in attributes:
            raise cursor.error(f"duplicate attribute {name!r}")
        attributes[name] = _decode_entities(raw, cursor)


def _skip_misc(cursor: _Cursor) -> None:
    """Skip whitespace, comments, processing instructions, declarations."""
    while True:
        cursor.skip_whitespace()
        if cursor.peek(4) == "<!--":
            end = cursor.find("-->")
            if end == -1:
                raise cursor.error("unterminated comment")
            cursor.pos = end + 3
        elif cursor.peek(2) == "<?":
            end = cursor.find("?>")
            if end == -1:
                raise cursor.error("unterminated processing instruction")
            cursor.pos = end + 2
        elif cursor.peek(9).upper() == "<!DOCTYPE":
            end = cursor.find(">")
            if end == -1:
                raise cursor.error("unterminated DOCTYPE")
            cursor.pos = end + 1
        else:
            return


def _parse_element(cursor: _Cursor) -> XmlElement:
    cursor.expect("<")
    tag = _parse_name(cursor)
    attributes = _parse_attributes(cursor)
    cursor.skip_whitespace()
    if cursor.peek(2) == "/>":
        cursor.advance(2)
        return XmlElement(tag, attributes)
    cursor.expect(">")

    element = XmlElement(tag, attributes)
    text_parts: List[str] = []
    while True:
        if cursor.eof():
            raise cursor.error(f"unexpected end of input inside <{tag}>")
        if cursor.peek(4) == "<!--":
            end = cursor.find("-->")
            if end == -1:
                raise cursor.error("unterminated comment")
            cursor.pos = end + 3
        elif cursor.peek(2) == "</":
            cursor.advance(2)
            closing = _parse_name(cursor)
            cursor.skip_whitespace()
            cursor.expect(">")
            if closing != tag:
                raise cursor.error(
                    f"mismatched closing tag </{closing}> for <{tag}>")
            element.text = _decode_entities("".join(text_parts).strip(), cursor)
            return element
        elif cursor.peek() == "<":
            element.add_child(_parse_element(cursor))
        else:
            start = cursor.pos
            next_tag = cursor.find("<")
            if next_tag == -1:
                raise cursor.error(f"unexpected end of input inside <{tag}>")
            text_parts.append(cursor.text[start:next_tag])
            cursor.pos = next_tag


def parse_element(text: str) -> XmlElement:
    """Parse a single XML element (and its subtree) from a string."""
    cursor = _Cursor(text)
    _skip_misc(cursor)
    if cursor.eof() or cursor.peek() != "<":
        raise cursor.error("expected an element")
    element = _parse_element(cursor)
    _skip_misc(cursor)
    if not cursor.eof():
        raise cursor.error("trailing content after the root element")
    return element


def parse_document(text: str) -> XmlDocument:
    """Parse a complete XML document from a string."""
    return XmlDocument(parse_element(text))
