"""Serialization of the element-tree model back to XML text."""

from __future__ import annotations

from typing import List

from .model import XmlDocument, XmlElement

__all__ = ["serialize_element", "serialize_document"]

_ESCAPES = {
    "&": "&amp;",
    "<": "&lt;",
    ">": "&gt;",
}
_ATTR_ESCAPES = dict(_ESCAPES, **{'"': "&quot;"})


def _escape(text: str, table: dict) -> str:
    return "".join(table.get(ch, ch) for ch in text)


def serialize_element(element: XmlElement, indent: int = 2, _level: int = 0) -> str:
    """Pretty-print an element subtree as XML text.

    ``indent=0`` produces compact single-line output (useful for byte-size
    accounting in the download-all baseline).
    """
    pad = " " * (indent * _level) if indent else ""
    newline = "\n" if indent else ""
    attributes = "".join(
        f' {name}="{_escape(value, _ATTR_ESCAPES)}"'
        for name, value in element.attributes.items()
    )
    if not element.children and not element.text:
        return f"{pad}<{element.tag}{attributes}/>"
    parts: List[str] = [f"{pad}<{element.tag}{attributes}>"]
    if element.text:
        if element.children:
            parts.append(f"{newline}{pad}{_escape(element.text, _ESCAPES)}" if indent
                         else _escape(element.text, _ESCAPES))
        else:
            parts.append(_escape(element.text, _ESCAPES))
    for child in element.children:
        parts.append(newline + serialize_element(child, indent, _level + 1))
    if element.children:
        parts.append(f"{newline}{pad}</{element.tag}>")
    else:
        parts.append(f"</{element.tag}>")
    return "".join(parts)


def serialize_document(document: XmlDocument, indent: int = 2,
                       declaration: bool = True) -> str:
    """Serialize a whole document, optionally with an XML declaration."""
    body = serialize_element(document.root, indent)
    if declaration:
        newline = "\n" if indent else ""
        return f'<?xml version="1.0" encoding="UTF-8"?>{newline}{body}'
    return body
