"""Reproduction of *Using Secret Sharing for Searching in Encrypted Data*
(Brinkman, Doumen, Jonker; Secure Data Management workshop at VLDB 2004).

The package provides:

* :mod:`repro.algebra` — finite fields, polynomials and the two encoding
  rings ``F_p[x]/(x^{p-1}-1)`` and ``Z[x]/(r(x))``;
* :mod:`repro.xmltree` / :mod:`repro.xpath` — a from-scratch XML substrate
  and the XPath subset the paper queries with;
* :mod:`repro.sharing` / :mod:`repro.smc` — additive and Shamir secret
  sharing plus the §3 secure multi-party voting protocols;
* :mod:`repro.core` — the paper's scheme: encoding, sharing, the
  interactive search protocol with dead-branch pruning, verification and
  advanced XPath strategies;
* :mod:`repro.net` — an instrumented client/server transport for
  bandwidth and round-trip measurements;
* :mod:`repro.baselines`, :mod:`repro.workloads`, :mod:`repro.analysis` —
  comparison systems, document generators and experiment tooling.

Quickstart::

    from repro import outsource_document, parse_document

    document = parse_document("<customers><client><name/></client></customers>")
    client, server_tree, _ = outsource_document(document, seed=b"demo-seed")
    outcome = client.lookup(server_tree, "client")
    print(outcome.matches)
"""

from .core import (
    AdvancedStrategy,
    ClientContext,
    TagMapping,
    VerificationMode,
    choose_fp_ring,
    choose_int_ring,
    outsource_document,
)
from .xmltree import XmlDocument, XmlElement, parse_document, serialize_document
from .xpath import evaluate_xpath, parse_xpath

__version__ = "0.1.0"

__all__ = [
    "__version__",
    "outsource_document",
    "ClientContext",
    "TagMapping",
    "VerificationMode",
    "AdvancedStrategy",
    "choose_fp_ring",
    "choose_int_ring",
    "XmlDocument",
    "XmlElement",
    "parse_document",
    "serialize_document",
    "parse_xpath",
    "evaluate_xpath",
]
