"""Exception hierarchy for the reproduction library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class.  Sub-classes mirror the main
subsystems: algebra, encoding/mapping, sharing, the query protocol and the
XML substrate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "AlgebraError",
    "RingMismatchError",
    "MappingError",
    "MappingCapacityError",
    "UnknownTagError",
    "EncodingError",
    "TagRecoveryError",
    "VerificationError",
    "SharingError",
    "ThresholdError",
    "ProtocolError",
    "QueryError",
    "XmlParseError",
    "XPathSyntaxError",
]


class ReproError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class AlgebraError(ReproError):
    """Errors from the algebraic substrate (rings, fields, polynomials)."""


class RingMismatchError(AlgebraError):
    """Two elements from incompatible rings were combined."""


class MappingError(ReproError):
    """Errors related to the private tag-name mapping function."""


class MappingCapacityError(MappingError):
    """The ring is too small for the number of distinct tag names."""


class UnknownTagError(MappingError, KeyError):
    """A tag name was queried that has no assigned mapping value."""


class EncodingError(ReproError):
    """Errors while encoding an XML tree into a polynomial tree."""


class TagRecoveryError(EncodingError):
    """Theorem 1/2 reconstruction failed (inconsistent polynomials)."""


class VerificationError(ReproError):
    """The client could not verify a server-provided answer."""


class SharingError(ReproError):
    """Errors in the secret-sharing layer."""


class ThresholdError(SharingError):
    """Not enough shares to reconstruct a secret, or invalid threshold."""


class ProtocolError(ReproError):
    """Client/server protocol violations (unexpected or malformed messages)."""


class QueryError(ReproError):
    """Errors while planning or executing a query."""


class XmlParseError(ReproError):
    """The from-scratch XML parser rejected its input."""


class XPathSyntaxError(QueryError):
    """The XPath-subset parser rejected a query string."""
