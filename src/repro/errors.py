"""Exception hierarchy for the reproduction library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class.  Sub-classes mirror the main
subsystems: algebra, encoding/mapping, sharing, the query protocol and the
XML substrate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "AlgebraError",
    "RingMismatchError",
    "MappingError",
    "MappingCapacityError",
    "UnknownTagError",
    "EncodingError",
    "TagRecoveryError",
    "VerificationError",
    "SharingError",
    "ThresholdError",
    "ProtocolError",
    "TransportError",
    "TransientServerError",
    "ServerBusyError",
    "RetryExhaustedError",
    "UpdateConflictError",
    "QueryError",
    "XmlParseError",
    "XPathSyntaxError",
]


class ReproError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class AlgebraError(ReproError):
    """Errors from the algebraic substrate (rings, fields, polynomials)."""


class RingMismatchError(AlgebraError):
    """Two elements from incompatible rings were combined."""


class MappingError(ReproError):
    """Errors related to the private tag-name mapping function."""


class MappingCapacityError(MappingError):
    """The ring is too small for the number of distinct tag names."""


class UnknownTagError(MappingError, KeyError):
    """A tag name was queried that has no assigned mapping value."""


class EncodingError(ReproError):
    """Errors while encoding an XML tree into a polynomial tree."""


class TagRecoveryError(EncodingError):
    """Theorem 1/2 reconstruction failed (inconsistent polynomials)."""


class VerificationError(ReproError):
    """The client could not verify a server-provided answer."""


class SharingError(ReproError):
    """Errors in the secret-sharing layer."""


class ThresholdError(SharingError):
    """Not enough shares to reconstruct a secret, or invalid threshold."""


class ProtocolError(ReproError):
    """Client/server protocol violations (unexpected or malformed messages)."""


class TransportError(ProtocolError):
    """The connection itself failed (reset, truncated frame, refused).

    Unlike a plain :class:`ProtocolError` — which means one side violated
    the protocol and retrying would repeat the violation — a transport
    error says nothing about the request, so a resilient client may
    reconnect and replay it.  The failure is *ambiguous*: the server may
    or may not have processed the request before the connection died,
    which is why replayed v2 requests carry idempotency keys.
    """


class TransientServerError(ProtocolError):
    """The server failed to answer but expects to succeed on a retry.

    Carried over the wire as an :class:`~repro.net.messages.ErrorResponse`
    with the ``retryable`` flag, e.g. for a momentary store backend
    failure.  The session itself is healthy; a resilient client retries
    the same request without reconnecting.
    """


class ServerBusyError(TransientServerError):
    """The server shed this request under load (graceful degradation).

    Carried over the wire as a :class:`~repro.net.messages.BusyResponse`;
    ``retry_after_s`` is the server's backoff hint.  Overloaded servers
    answer in-band instead of dropping connections, so sessions (and
    their negotiated protocol state) survive load spikes.
    """

    def __init__(self, message: str = "the server is busy",
                 retry_after_s: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


class RetryExhaustedError(ProtocolError):
    """A resilient client gave up: deadline, attempt cap or budget spent."""


class UpdateConflictError(ProtocolError):
    """A v3 update batch was rejected because its base versions are stale.

    Raised client-side from a
    :class:`~repro.net.messages.ConflictResponse`.  ``conflicts`` names
    the node ids another writer changed first; ``versions`` carries the
    server's current version for each conflicting node that still exists
    (a conflicting id absent from ``versions`` was removed).  Nothing was
    applied server-side — the caller refetches the conflicting subtrees
    and rebase-retries, which :class:`~repro.net.client.RemoteUpdatableTree`
    does automatically up to its rebase cap.
    """

    def __init__(self, message: str, conflicts=(), versions=None) -> None:
        super().__init__(message)
        self.conflicts = sorted(int(n) for n in conflicts)
        self.versions = {int(k): int(v)
                         for k, v in (versions or {}).items()}


class QueryError(ReproError):
    """Errors while planning or executing a query."""


class XmlParseError(ReproError):
    """The from-scratch XML parser rejected its input."""


class XPathSyntaxError(QueryError):
    """The XPath-subset parser rejected a query string."""
