"""The transport-agnostic serving engine and multi-document tenancy.

A production deployment of the scheme hosts many outsourced documents for
many tenants in one server process.  :class:`DocumentRegistry` owns that
mapping: each :class:`HostedDocument` bundles a pluggable
:class:`~repro.net.store.ShareStore` backend with a per-document lock (so
concurrent sessions on *different* documents never contend, and concurrent
sessions on the *same* document serialise store access) and its own
:class:`ServerObservations` ledger — the honest-but-curious view is
accounted per tenant, exactly as the leakage analysis of the source paper
requires.

:class:`ServingCore` is the engine itself: it answers every protocol
message of :mod:`repro.net.messages` against the registry and knows
nothing about transports.  Three transports share it unchanged:

* the in-process :class:`~repro.net.server.SearchServer` (a thin facade
  kept for the historical API),
* the blocking socket server :class:`~repro.net.server.ThreadedSearchServer`
  (thread per session),
* the asyncio transport :class:`~repro.net.aio.AsyncSearchServer`, which
  additionally funnels concurrent frontier requests into
  :meth:`ServingCore.frontier_batch` — one lock acquisition and one
  batched store pass per tick instead of one per session.

The registry is the architectural seam future sharding PRs plug into: a
shard is a registry subset, and a distributed deployment routes
``document_id`` to a registry replica.
"""

from __future__ import annotations

import contextlib
import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import (
    ProtocolError,
    ReproError,
    ServerBusyError,
    TransientServerError,
)
from ..obs import FairShareAdmission, MetricsRegistry
from .messages import (
    SUPPORTED_PROTOCOL_VERSIONS,
    Acknowledgement,
    BlobRequest,
    BlobResponse,
    BusyResponse,
    ChildrenRequest,
    ChildrenResponse,
    ConflictResponse,
    ErrorResponse,
    EvaluateRequest,
    EvaluateResponse,
    FetchConstantsRequest,
    FetchConstantsResponse,
    FetchPolynomialsRequest,
    FetchPolynomialsResponse,
    FrontierRequest,
    FrontierResponse,
    HealthRequest,
    HealthResponse,
    HelloRequest,
    HelloResponse,
    Message,
    PruneNotice,
    StatsRequest,
    StatsResponse,
    StructureRequest,
    StructureResponse,
    UpdateRequest,
    UpdateResponse,
    decode_message,
)
from .store import ShareStore, as_share_store

__all__ = [
    "DEFAULT_DOCUMENT",
    "AdmissionHook",
    "ServerObservations",
    "HostedDocument",
    "DocumentRegistry",
    "ServingCore",
]

#: Document id used when a client does not name one (v1 compatibility).
DEFAULT_DOCUMENT = "default"


class _UpdateConflict(Exception):
    """Internal: abort an update transaction that turned out conflicting.

    Raised *inside* the ``with store.transaction()`` block so the buffered
    batch is discarded without touching the store (application happens on
    clean exit only), then translated into a
    :class:`~repro.net.messages.ConflictResponse`.  Deliberately not a
    :class:`~repro.errors.ReproError`: it must never escape the handler
    as an in-band error.
    """

    def __init__(self, conflicts: Sequence[int]) -> None:
        super().__init__(f"conflicting nodes {sorted(conflicts)}")
        self.conflicts = [int(n) for n in conflicts]


class ServerObservations:
    """Everything an honest-but-curious server learns while answering queries."""

    __slots__ = ("points_seen", "pruned_nodes", "evaluated_nodes",
                 "polynomials_served", "constants_served", "requests_handled")

    def __init__(self) -> None:
        self.points_seen: List[int] = []
        self.pruned_nodes: List[int] = []
        self.evaluated_nodes: List[int] = []
        self.polynomials_served: List[int] = []
        self.constants_served: List[int] = []
        self.requests_handled = 0

    def as_dict(self) -> Dict[str, int]:
        """Counted summary for reports."""
        return {
            "distinct_points_seen": len(set(self.points_seen)),
            "evaluation_requests": len(self.evaluated_nodes),
            "pruned_nodes": len(self.pruned_nodes),
            "polynomials_served": len(self.polynomials_served),
            "constants_served": len(self.constants_served),
            "requests_handled": self.requests_handled,
        }


class HostedDocument:
    """One outsourced document inside a server: store + lock + observations."""

    __slots__ = ("document_id", "store", "lock", "observations",
                 "encrypted_blob", "versions", "update_log")

    def __init__(self, document_id: str, store: ShareStore,
                 encrypted_blob: Optional[bytes] = None) -> None:
        self.document_id = document_id
        self.store = store
        #: Serialises store access; reentrant so a handler may sub-dispatch.
        self.lock = threading.RLock()
        #: What an honest-but-curious server learns about *this* tenant.
        self.observations = ServerObservations()
        #: Optional opaque blob served to download-everything clients.
        self.encrypted_blob = encrypted_blob
        #: Per-node version counters for v3 multi-writer conflict detection.
        #: A node absent from the map is at version 0; every committed
        #: update batch bumps the versions of the nodes it added or
        #: replaced and drops the nodes it removed.  Versions live with
        #: the *hosting*, not the store file — a fresh hosting starts
        #: every node at 0, matching clients that mirror it from scratch.
        self.versions: Dict[int, int] = {}
        #: ``(request_id, operation, op_count)`` per *committed* update
        #: batch, in commit order — the audit trail the chaos suite uses
        #: to prove a replayed update applied at most once.
        self.update_log: List[Tuple[Optional[str], str, int]] = []

    @contextlib.contextmanager
    def transaction(self) -> Iterator[Any]:
        """An atomic update batch against this document, under its lock.

        Yields a :class:`~repro.net.store.StoreTransaction` while holding
        the document lock for the whole batch — the same lock every
        handler and every coalesced :meth:`ServingCore.frontier_batch`
        tick acquires — so concurrent query traffic observes either the
        full pre-batch or the full post-batch store, never a half-applied
        update.  Editors that compute their own polynomials
        (:class:`~repro.core.updates.UpdatableTree`) should instead be
        constructed with ``lock=document.lock`` so their *reads* are
        covered too; this context manager is for callers that already hold
        their inputs.
        """
        with self.lock:
            with self.store.transaction() as txn:
                yield txn

    def __repr__(self) -> str:
        return (f"<HostedDocument {self.document_id!r} "
                f"nodes={self.store.node_count()}>")


#: Per-tenant admission hook: inspect a request *before* it is served and
#: return ``None`` to admit it, or a retry-after hint (seconds, ``0.0`` is
#: valid) to shed it with an in-band busy reply.
AdmissionHook = Callable[["HostedDocument", Message], Optional[float]]


class DocumentRegistry:
    """Thread-safe name → :class:`HostedDocument` mapping.

    The registry also owns the serving stack's control plane: one
    :class:`~repro.obs.MetricsRegistry` (every component of the stack
    emits into it) and one :class:`~repro.obs.FairShareAdmission`
    instance holding per-tenant token-bucket quotas.  The PR 6 admission
    *hooks* are retained for bespoke policies (maintenance drains,
    kind-selective shedding); declarative quotas go through
    :meth:`configure_quota` and are enforced after the hooks.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None,
                 admission: Optional[FairShareAdmission] = None) -> None:
        self._documents: Dict[str, HostedDocument] = {}
        self._lock = threading.Lock()
        # Admission hooks keyed by document id; the ``None`` key is the
        # registry-wide default consulted when no per-tenant hook exists.
        self._admission: Dict[Optional[str], AdmissionHook] = {}
        #: The serving stack's single metrics registry.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Declarative per-tenant quotas (weighted fair-share admission).
        self.quotas = admission if admission is not None else FairShareAdmission()

    def add(self, document_id: str, store: Any,
            encrypted_blob: Optional[bytes] = None) -> HostedDocument:
        """Host a document; ``store`` may be a ShareStore or a ServerShareTree."""
        document = HostedDocument(str(document_id), as_share_store(store),
                                  encrypted_blob=encrypted_blob)
        with self._lock:
            if document.document_id in self._documents:
                raise ProtocolError(
                    f"document {document.document_id!r} is already hosted")
            self._documents[document.document_id] = document
        bind = getattr(document.store, "bind_metrics", None)
        if bind is not None:
            bind(self.metrics, document.document_id)
        return document

    def remove(self, document_id: str) -> HostedDocument:
        """Stop hosting a document (its store is returned, not closed)."""
        with self._lock:
            try:
                return self._documents.pop(document_id)
            except KeyError:
                raise ProtocolError(f"unknown document {document_id!r}") from None

    def get(self, document_id: str) -> HostedDocument:
        """Look up a hosted document; unknown ids are rejected loudly.

        The error names only the requested id — enumerating the hosted
        documents would leak other tenants' identifiers to the client.
        """
        with self._lock:
            document = self._documents.get(document_id)
        if document is None:
            raise ProtocolError(f"unknown document {document_id!r}")
        return document

    def resolve(self, document_id: Optional[str]) -> HostedDocument:
        """Like :meth:`get`, with v1-friendly defaulting for ``None``.

        ``None`` addresses :data:`DEFAULT_DOCUMENT` when hosted, or the
        single hosted document when there is exactly one — so a legacy
        client keeps working against any single-tenant server.
        """
        if document_id is not None:
            return self.get(document_id)
        with self._lock:
            if DEFAULT_DOCUMENT in self._documents:
                return self._documents[DEFAULT_DOCUMENT]
            if len(self._documents) == 1:
                return next(iter(self._documents.values()))
            hosted_count = len(self._documents)
        raise ProtocolError(
            "the request names no document and the server hosts "
            f"{hosted_count} documents; address one explicitly")

    def set_admission_hook(self, hook: Optional[AdmissionHook],
                           document_id: Optional[str] = None) -> None:
        """Install (or with ``None`` remove) an admission hook.

        A hook registered under a ``document_id`` guards that tenant only;
        registered under ``None`` it becomes the registry-wide default for
        tenants without their own hook.  Hooks implement per-tenant
        quotas, maintenance drains, and the like; shedding is graceful —
        the request is answered with a
        :class:`~repro.net.messages.BusyResponse`, the session survives.
        """
        with self._lock:
            if hook is None:
                self._admission.pop(document_id, None)
            else:
                self._admission[document_id] = hook

    def configure_quota(self, document_id: str, rate_per_s: float,
                        burst: Optional[float] = None,
                        weight: float = 1.0) -> None:
        """Give a tenant a guaranteed token-bucket quota and a fair-share weight.

        ``rate_per_s`` requests per second accrue up to ``burst`` (default:
        one second's worth).  When the tenant's own bucket is empty it may
        borrow from the shared pool configured via
        :meth:`configure_shared_pool`, weighted by ``weight``.  Requests
        over quota are shed gracefully with an in-band busy reply carrying
        a retry-after hint.
        """
        self.quotas.set_quota(str(document_id), rate_per_s, burst, weight)

    def configure_shared_pool(self, rate_per_s: float,
                              burst: Optional[float] = None) -> None:
        """Configure the shared overflow pool tenants borrow from."""
        self.quotas.set_pool(rate_per_s, burst)

    def clear_quota(self, document_id: str) -> None:
        """Remove a tenant's quota (it becomes unlimited again)."""
        self.quotas.clear_quota(str(document_id))

    def quota_ledger(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant admitted/shed/borrowed accounting from the quota layer."""
        return self.quotas.ledger()

    def admit(self, document: HostedDocument, message: Message) -> None:
        """Consult admission hooks, then quotas; raises ``ServerBusyError`` to shed."""
        with self._lock:
            hook = self._admission.get(document.document_id,
                                       self._admission.get(None))
        if hook is not None:
            retry_after_s = hook(document, message)
            if retry_after_s is not None:
                raise ServerBusyError(
                    f"document {document.document_id!r} is not admitting "
                    f"{message.kind!r} requests right now",
                    retry_after_s=retry_after_s)
        retry_after_s = self.quotas.try_admit(document.document_id)
        if retry_after_s is not None:
            raise ServerBusyError(
                f"document {document.document_id!r} is over its admission "
                "quota", retry_after_s=retry_after_s)

    def document_ids(self) -> List[str]:
        """All hosted document ids, sorted."""
        with self._lock:
            return sorted(self._documents)

    def total_storage_bits(self) -> int:
        """Aggregate share storage across every hosted document (§5)."""
        with self._lock:
            documents = list(self._documents.values())
        return sum(document.store.storage_bits() for document in documents)

    def __len__(self) -> int:
        with self._lock:
            return len(self._documents)

    def __contains__(self, document_id: str) -> bool:
        with self._lock:
            return document_id in self._documents

    def __repr__(self) -> str:
        return f"<DocumentRegistry documents={self.document_ids()}>"


class ServingCore:
    """Message handlers of the §4.3 server role, shared by every transport.

    The core owns the :class:`DocumentRegistry` and the aggregate
    observation ledger.  All ledgers are double-entry: the per-document
    ledger feeds tenant-level leakage audits, the aggregate
    ``observations`` the whole-server view.

    Transports call :meth:`handle` for one request at a time (the sync
    paths), or :meth:`frontier_batch` with every
    :class:`~repro.net.messages.FrontierRequest` that arrived in the same
    scheduling tick — the batch is answered with **one** lock acquisition
    and **one** batched ``evaluate_many`` pass per distinct query point
    for the whole batch, while staying bit-identical to handling each
    request alone (evaluations are per-share deterministic, so slicing a
    union pass equals a per-request pass).
    """

    #: Retained encoded responses per idempotency key (LRU).
    IDEMPOTENCY_CACHE_SIZE = 4096

    #: Message kinds that address the server, not a document, when
    #: unqualified — they never trigger document resolution for labels.
    CONTROL_KINDS = ("hello", "stats", "health")

    def __init__(self, registry: Optional[DocumentRegistry] = None,
                 idempotency_cache_size: int = IDEMPOTENCY_CACHE_SIZE) -> None:
        self.registry = registry if registry is not None else DocumentRegistry()
        #: The serving stack's single metrics registry (owned by the
        #: document registry so stores, transports, and the engine all
        #: emit into one place).
        self.metrics = self.registry.metrics
        self._inflight = self.metrics.gauge("server_inflight_requests")
        #: Aggregate honest-but-curious view across every hosted document.
        self.observations = ServerObservations()
        # The aggregate ledger is shared by every session and document;
        # per-document ledgers are written under the same lock because a
        # handler may update both in one go.
        self._observations_lock = threading.Lock()
        # Idempotency cache: (document_id, request_id) -> encoded response.
        # A request replayed after an ambiguous transport failure is
        # answered from here bit-identically, without touching the store
        # or the observation ledgers a second time.  Encoded bytes (not
        # message objects) are retained so the replay's wire bytes equal
        # the lost original's exactly.  Only successful responses are
        # cached — a transient failure must be re-attempted on replay.
        self._idempotency_cache_size = int(idempotency_cache_size)
        self._idempotent: "OrderedDict[Tuple[Optional[str], str], bytes]" = (
            OrderedDict())
        self._idempotent_lock = threading.Lock()

    # -- idempotency ---------------------------------------------------------------
    def _idempotent_lookup(self, message: Message) -> Optional[Message]:
        """The cached response to a replayed request, decoded, if any."""
        if message.request_id is None or not self._idempotency_cache_size:
            return None
        key = (message.document_id, message.request_id)
        with self._idempotent_lock:
            encoded = self._idempotent.get(key)
            if encoded is None:
                return None
            self._idempotent.move_to_end(key)
        return decode_message(encoded)

    def _idempotent_store(self, message: Message, response: Message) -> None:
        if message.request_id is None or not self._idempotency_cache_size:
            return
        if isinstance(response, (ErrorResponse, BusyResponse)):
            return
        key = (message.document_id, message.request_id)
        with self._idempotent_lock:
            self._idempotent[key] = response.encode()
            self._idempotent.move_to_end(key)
            while len(self._idempotent) > self._idempotency_cache_size:
                self._idempotent.popitem(last=False)

    @staticmethod
    def error_response(exc: ReproError) -> Message:
        """The in-band reply for a failed request, preserving its class.

        Busy shedding travels as a :class:`~repro.net.messages.BusyResponse`
        with the retry-after hint, transient failures as a *retryable*
        :class:`~repro.net.messages.ErrorResponse`, everything else as a
        plain error — so resilient clients reconstruct the exception
        taxonomy of :mod:`repro.errors` across the wire.
        """
        if isinstance(exc, ServerBusyError):
            return BusyResponse(retry_after_s=exc.retry_after_s)
        return ErrorResponse(str(exc),
                             retryable=isinstance(exc, TransientServerError))

    # -- accounting ----------------------------------------------------------------
    def _document_label(self, message: Message) -> str:
        """The ``document`` label a request's metrics are filed under."""
        if message.document_id is not None:
            return message.document_id
        if message.kind in self.CONTROL_KINDS:
            return "-"
        try:
            return self.registry.resolve(None).document_id
        except ReproError:
            return DEFAULT_DOCUMENT

    def _request_admitted(self, kind: str, document: str) -> None:
        self.metrics.counter("server_requests_total",
                             document=document, kind=kind).inc()
        self._inflight.inc()

    def _request_finished(self, kind: str, document: str, outcome: str,
                          elapsed_s: float, reason: str = "admission") -> None:
        self._inflight.dec()
        if outcome == "shed":
            self.metrics.counter("server_requests_shed_total",
                                 document=document, kind=kind,
                                 reason=reason).inc()
        elif outcome == "failed":
            self.metrics.counter("server_requests_failed_total",
                                 document=document, kind=kind).inc()
        else:
            self.metrics.counter("server_requests_completed_total",
                                 document=document, kind=kind).inc()
        self.metrics.histogram("server_request_seconds",
                               document=document,
                               kind=kind).observe(elapsed_s)

    def count_transport_shed(self, message: Message,
                             reason: str = "backpressure") -> None:
        """Account a request a transport shed before it reached the engine.

        The asyncio coalescer sheds on a full queue without calling
        :meth:`handle`; counting the shed here keeps the reconciliation
        invariant (total = completed + shed + failed) true across the
        whole stack, not just inside the engine.
        """
        label = self._document_label(message)
        self.metrics.counter("server_requests_total",
                             document=label, kind=message.kind).inc()
        self.metrics.counter("server_requests_shed_total",
                             document=label, kind=message.kind,
                             reason=reason).inc()

    def accounting(self, document_id: Optional[str] = None) -> Dict[str, int]:
        """The reconciliation view: admitted vs completed + shed + failed.

        Sums the request counters across every label set (optionally
        restricted to one ``document``).  At any quiescent moment
        ``admitted == completed + shed + failed`` and ``inflight == 0``;
        the chaos suite asserts exactly that.
        """
        labels = {} if document_id is None else {"document": document_id}
        return {
            "admitted": self.metrics.counter_total(
                "server_requests_total", **labels),
            "completed": self.metrics.counter_total(
                "server_requests_completed_total", **labels),
            "shed": self.metrics.counter_total(
                "server_requests_shed_total", **labels),
            "failed": self.metrics.counter_total(
                "server_requests_failed_total", **labels),
            "inflight": int(self._inflight.value),
        }

    def health(self) -> Dict[str, Any]:
        """Coarse, tenant-free vitals for health probes and the scrape endpoint."""
        return {
            "status": "ok",
            "documents": len(self.registry),
            "inflight": int(self._inflight.value),
            "requests_total": self.metrics.counter_total(
                "server_requests_total"),
        }

    # -- message dispatch ----------------------------------------------------------
    def handle(self, message: Message) -> Message:
        """Answer one request message.

        Every request is accounted in the metrics registry: admitted on
        entry, then exactly one of completed / shed (a busy reply) /
        failed (an error) on exit, plus a latency observation — replays
        answered from the idempotency cache count as completed.
        """
        started = time.perf_counter()
        label = self._document_label(message)
        self._request_admitted(message.kind, label)
        outcome = "failed"
        try:
            response = self._handle_inner(message)
        except ServerBusyError:
            outcome = "shed"
            raise
        else:
            outcome = "completed"
            return response
        finally:
            self._request_finished(message.kind, label, outcome,
                                   time.perf_counter() - started)

    def _handle_inner(self, message: Message) -> Message:
        cached = self._idempotent_lookup(message)
        if cached is not None:
            return cached
        with self._observations_lock:
            self.observations.requests_handled += 1
        # The operational probes are hello-exempt (no negotiation needed)
        # and admission-exempt (a shed tenant may still observe that it
        # is being shed).
        if isinstance(message, HelloRequest):
            return self._handle_hello(message)
        if isinstance(message, StatsRequest):
            return self._handle_stats(message)
        if isinstance(message, HealthRequest):
            return self._handle_health(message)
        document = self.registry.resolve(message.document_id)
        self.registry.admit(document, message)
        with self._observations_lock:
            document.observations.requests_handled += 1
        response = self._dispatch_locked(document, message)
        self._idempotent_store(message, response)
        return response

    __call__ = handle

    def _dispatch_locked(self, document: HostedDocument,
                         message: Message) -> Message:
        with document.lock:
            if isinstance(message, StructureRequest):
                return self._handle_structure(document)
            if isinstance(message, ChildrenRequest):
                return self._handle_children(document, message)
            if isinstance(message, EvaluateRequest):
                return self._handle_evaluate(document, message)
            if isinstance(message, FrontierRequest):
                return self._frontier_batch_locked(document, [message])[0]
            if isinstance(message, FetchPolynomialsRequest):
                return self._handle_fetch_polynomials(document, message)
            if isinstance(message, FetchConstantsRequest):
                return self._handle_fetch_constants(document, message)
            if isinstance(message, PruneNotice):
                return self._handle_prune(document, message)
            if isinstance(message, UpdateRequest):
                return self._handle_update(document, message)
            if isinstance(message, BlobRequest):
                return self._handle_blob(document)
        raise ProtocolError(f"the server cannot handle {message.kind!r} requests")

    def frontier_batch(self, messages: Sequence[FrontierRequest]
                       ) -> List[Message]:
        """Answer many concurrent frontier requests in coalesced passes.

        Requests are grouped by addressed document; each group is served
        under a single acquisition of that document's lock, with the share
        evaluations of every request in the group folded into one
        ``evaluate_many`` call per distinct query point.  Responses come
        back in request order and are bit-identical to what
        :meth:`handle` would have returned for each request alone.

        Failures are isolated per request: a message naming an unknown
        document, or one whose coalesced group fails (unknown node id,
        backend error), is answered with an in-band
        :class:`~repro.net.messages.ErrorResponse` while every other
        request is served normally.  A failed group is retried request by
        request, so only the actual offenders error (requests already
        counted stay counted once; the retried group's point/prune
        observations may be recorded again, mirroring the partial
        observations a failing sequential handler leaves behind).
        """
        groups: Dict[str, Tuple[HostedDocument, List[int]]] = {}
        responses: List[Optional[Message]] = [None] * len(messages)
        started = time.perf_counter()
        labels: List[str] = []
        for index, message in enumerate(messages):
            if not isinstance(message, FrontierRequest):
                raise ProtocolError(
                    f"frontier_batch cannot handle {message.kind!r} requests")
            label = self._document_label(message)
            labels.append(label)
            self._request_admitted(message.kind, label)
            cached = self._idempotent_lookup(message)
            if cached is not None:
                # A replay: answer bit-identically without re-counting it
                # in the observation ledgers or folding it into the
                # coalesced passes (metrics file it as completed).
                responses[index] = cached
                self._request_finished(message.kind, label, "completed",
                                       time.perf_counter() - started)
                continue
            with self._observations_lock:
                self.observations.requests_handled += 1
            try:
                document = self.registry.resolve(message.document_id)
                self.registry.admit(document, message)
            except ReproError as exc:
                responses[index] = self.error_response(exc)
                outcome = ("shed" if isinstance(exc, ServerBusyError)
                           else "failed")
                self._request_finished(message.kind, label, outcome,
                                       time.perf_counter() - started)
                continue
            with self._observations_lock:
                document.observations.requests_handled += 1
            groups.setdefault(document.document_id, (document, []))[1].append(index)
        for document, indices in groups.values():
            group = [messages[index] for index in indices]
            try:
                with document.lock:
                    answered: List[Message] = list(
                        self._frontier_batch_locked(document, group))
            except ReproError:
                answered = []
                for message in group:
                    try:
                        with document.lock:
                            answered.append(
                                self._frontier_batch_locked(document,
                                                            [message])[0])
                    except ReproError as exc:
                        answered.append(self.error_response(exc))
            elapsed = time.perf_counter() - started
            for index, message, response in zip(indices, group, answered):
                responses[index] = response
                self._idempotent_store(message, response)
                outcome = "completed"
                if isinstance(response, BusyResponse):
                    outcome = "shed"
                elif isinstance(response, ErrorResponse):
                    outcome = "failed"
                self._request_finished(message.kind, labels[index], outcome,
                                       elapsed)
        return responses  # type: ignore[return-value]

    # -- observation plumbing ---------------------------------------------------------
    def _observe_points(self, document: HostedDocument, point: int,
                        node_ids: List[int]) -> None:
        with self._observations_lock:
            for ledger in (self.observations, document.observations):
                ledger.points_seen.append(point)
                ledger.evaluated_nodes.extend(node_ids)

    def _observe_prune(self, document: HostedDocument, node_ids: List[int]) -> None:
        with self._observations_lock:
            for ledger in (self.observations, document.observations):
                ledger.pruned_nodes.extend(node_ids)

    def _observe_served(self, document: HostedDocument, attribute: str,
                        node_ids: List[int]) -> None:
        with self._observations_lock:
            for ledger in (self.observations, document.observations):
                getattr(ledger, attribute).extend(node_ids)

    # -- handlers --------------------------------------------------------------------
    def _handle_hello(self, message: HelloRequest) -> HelloResponse:
        """Version negotiation: highest common generation, or a loud error.

        The response describes only the document the session addressed —
        tenants must not learn which other documents the server hosts.
        """
        common = set(message.versions) & set(SUPPORTED_PROTOCOL_VERSIONS)
        if not common:
            raise ProtocolError(
                f"client speaks protocol versions {sorted(message.versions)} but "
                f"this server supports {list(SUPPORTED_PROTOCOL_VERSIONS)}; "
                "no common version — upgrade one side")
        version = max(common)
        documents: List[str] = []
        root_id = node_count = None
        if len(self.registry) > 0:
            try:
                document = self.registry.resolve(message.document_id)
            except ProtocolError:
                if message.document_id is not None:
                    raise        # an explicitly named unknown document is an error
            else:
                documents = [document.document_id]
                root_id = document.store.root_id
                node_count = document.store.node_count()
        return HelloResponse(version, documents=documents,
                             root_id=root_id, node_count=node_count)

    def _handle_stats(self, message: StatsRequest) -> StatsResponse:
        """Tenant-filtered metrics snapshot.

        Label privacy mirrors :meth:`_handle_hello`: a request without a
        ``document_id`` gets only label-free, server-wide instruments
        plus aggregate accounting; a request addressing a document gets
        those plus the instruments labelled with *that* document — never
        another tenant's labels or traffic figures.
        """
        wanted = message.document_id
        snapshot = self.metrics.snapshot()
        instruments: Dict[str, List[Dict[str, Any]]] = {}
        for section, entries in snapshot.items():
            kept = []
            for entry in entries:
                labels = entry.get("labels", {})
                document_label = labels.get("document")
                if document_label is None or document_label == wanted:
                    kept.append(entry)
            instruments[section] = kept
        metrics: Dict[str, Any] = {
            "instruments": instruments,
            "accounting": self.accounting(wanted),
        }
        if wanted is not None:
            ledger = self.registry.quota_ledger().get(wanted)
            if ledger is not None:
                metrics["quota"] = ledger
        return StatsResponse(metrics)

    def _handle_health(self, message: HealthRequest) -> HealthResponse:
        """Liveness probe: always answers while the engine is running."""
        detail = self.health()
        return HealthResponse(detail.pop("status"), detail)

    def _handle_structure(self, document: HostedDocument) -> StructureResponse:
        root_id = document.store.root_id
        if root_id is None:
            raise ProtocolError("the server has no stored data")
        return StructureResponse(root_id, document.store.node_count())

    def _handle_children(self, document: HostedDocument,
                         message: ChildrenRequest) -> ChildrenResponse:
        store = document.store
        return ChildrenResponse({node_id: store.child_ids(node_id)
                                 for node_id in message.node_ids})

    def _handle_evaluate(self, document: HostedDocument,
                         message: EvaluateRequest) -> EvaluateResponse:
        self._observe_points(document, message.point, message.node_ids)
        return EvaluateResponse(
            document.store.evaluate_many(message.node_ids, message.point))

    #: Hard ceiling on speculative evaluation depth per exchange.
    MAX_LOOKAHEAD = 4

    def _frontier_batch_locked(self, document: HostedDocument,
                               messages: Sequence[FrontierRequest]
                               ) -> List[FrontierResponse]:
        """Serve one document's frontier requests under its (held) lock.

        Child lists are resolved once per node per batch and share
        evaluations once per (node, point) per batch; each request's
        response is then sliced out of the union passes.
        """
        store = document.store
        child_cache: Dict[int, List[int]] = {}

        def children_of(node_id: int) -> List[int]:
            cached = child_cache.get(node_id)
            if cached is None:
                cached = child_cache[node_id] = store.child_ids(node_id)
            return cached

        # Pass 1: prune notices, then the speculative expansion of every
        # request's frontier (the requested nodes plus up to ``lookahead``
        # further levels of the induced subtree).
        expanded: List[Tuple[List[int], Dict[int, List[int]]]] = []
        for message in messages:
            if message.prune:
                self._observe_prune(document, message.prune)
            child_lists: Dict[int, List[int]] = {}
            frontier_nodes = list(message.node_ids)
            level = frontier_nodes
            for _ in range(min(max(message.lookahead, 0), self.MAX_LOOKAHEAD)):
                next_level: List[int] = []
                for node_id in level:
                    child_lists[node_id] = children_of(node_id)
                    next_level.extend(child_lists[node_id])
                if not next_level:
                    break
                frontier_nodes = frontier_nodes + next_level
                level = next_level
            expanded.append((frontier_nodes, child_lists))

        # Pass 2: the coalesced evaluation — one batched store pass per
        # distinct query point over the union of every request's frontier.
        point_nodes: Dict[int, set] = {}
        for message, (frontier_nodes, _) in zip(messages, expanded):
            for point in message.points:
                point_nodes.setdefault(point, set()).update(frontier_nodes)
        point_values: Dict[int, Dict[int, int]] = {}
        for point in sorted(point_nodes):
            point_values[point] = store.evaluate_many(
                sorted(point_nodes[point]), point)

        # Pass 3: slice each request's response out of the union passes.
        responses: List[FrontierResponse] = []
        for message, (frontier_nodes, child_lists) in zip(messages, expanded):
            evaluations: Dict[int, Dict[int, int]] = {}
            for point in message.points:
                self._observe_points(document, point, frontier_nodes)
                values = point_values[point]
                evaluations[point] = {node_id: values[node_id]
                                      for node_id in frontier_nodes}
            children: Dict[int, List[int]] = {}
            if message.include_children:
                for node_id in frontier_nodes:
                    if node_id not in child_lists:
                        child_lists[node_id] = children_of(node_id)
                    children[node_id] = child_lists[node_id]
            # With ``include_children`` a fetch answers for the listed
            # nodes plus all their children (the Theorem-1/2 closure);
            # without it the fetch is exact, matching the v1 semantics.
            polynomials: Dict[int, List[int]] = {}
            if message.fetch_polynomials:
                if message.include_children:
                    fetched = self._verification_closure(
                        children_of, message.fetch_polynomials, children)
                else:
                    fetched = sorted(set(message.fetch_polynomials))
                self._observe_served(document, "polynomials_served", fetched)
                degree_bound = store.ring.degree_bound
                for node_id in fetched:
                    share = store.share_of(node_id)
                    polynomials[node_id] = [int(share.coefficient(i))
                                            for i in range(degree_bound)]
            constants: Dict[int, int] = {}
            if message.fetch_constants:
                if message.include_children:
                    fetched = self._verification_closure(
                        children_of, message.fetch_constants, children)
                else:
                    fetched = sorted(set(message.fetch_constants))
                self._observe_served(document, "constants_served", fetched)
                for node_id in fetched:
                    constants[node_id] = int(store.share_of(node_id).constant_term)
            responses.append(FrontierResponse(evaluations, children,
                                              polynomials, constants))
        return responses

    @staticmethod
    def _verification_closure(children_of: Callable[[int], List[int]],
                              node_ids: List[int],
                              children: Dict[int, List[int]]) -> List[int]:
        """The requested nodes plus all their children (Theorem-1/2 inputs).

        Child lists discovered here are folded into the response's
        ``children`` map so the client learns the structure in the same
        exchange.
        """
        closure = []
        seen = set()
        for node_id in node_ids:
            child_ids = children.get(node_id)
            if child_ids is None:
                child_ids = children_of(node_id)
                children[node_id] = child_ids
            for member in [node_id] + child_ids:
                if member not in seen:
                    seen.add(member)
                    closure.append(member)
        return sorted(closure)

    def _handle_fetch_polynomials(self, document: HostedDocument,
                                  message: FetchPolynomialsRequest
                                  ) -> FetchPolynomialsResponse:
        self._observe_served(document, "polynomials_served", message.node_ids)
        store = document.store
        coefficients = {}
        for node_id in message.node_ids:
            share = store.share_of(node_id)
            coefficients[node_id] = [int(share.coefficient(i))
                                     for i in range(store.ring.degree_bound)]
        return FetchPolynomialsResponse(coefficients)

    def _handle_fetch_constants(self, document: HostedDocument,
                                message: FetchConstantsRequest
                                ) -> FetchConstantsResponse:
        self._observe_served(document, "constants_served", message.node_ids)
        store = document.store
        return FetchConstantsResponse({
            node_id: int(store.share_of(node_id).constant_term)
            for node_id in message.node_ids})

    def _handle_prune(self, document: HostedDocument,
                      message: PruneNotice) -> Acknowledgement:
        self._observe_prune(document, message.node_ids)
        return Acknowledgement()

    def _handle_update(self, document: HostedDocument,
                       message: UpdateRequest) -> Message:
        """Apply one v3 mutation batch, or reject it with a conflict.

        Runs under the document lock (via :meth:`_dispatch_locked`), so
        the base-version check and the batch application are one atomic
        step with respect to every other writer and every query handler.
        The batch goes through the store's transactional path — on the
        durable backend that means the PR 5 write-ahead log, so a crash
        mid-batch still tears nothing.  Nothing is applied on conflict.
        """
        store = document.store
        versions = document.versions
        stale: Dict[int, Optional[int]] = {}
        for node_id, base in message.base_versions.items():
            if node_id not in store:
                stale[node_id] = None          # removed by another writer
            elif versions.get(node_id, 0) != base:
                stale[node_id] = versions.get(node_id, 0)
        if stale:
            return ConflictResponse(
                stale, {nid: current for nid, current in stale.items()
                        if current is not None})
        ring = store.ring
        try:
            with store.transaction() as txn:
                for op in message.ops:
                    if op[0] == "add":
                        txn.add_node(op[1], op[2],
                                     ring.from_coefficients(op[3]))
                    elif op[0] == "replace":
                        txn.replace_share(op[1], ring.from_coefficients(op[2]))
                    else:
                        removed = txn.remove_subtree(op[1])
                        if sorted(removed) != sorted(op[2]):
                            # The subtree gained or lost members since the
                            # client computed the batch: a structural
                            # conflict, not a protocol violation.
                            raise _UpdateConflict([op[1]])
        except _UpdateConflict as exc:
            return ConflictResponse(
                exc.conflicts,
                {nid: versions.get(nid, 0) for nid in exc.conflicts
                 if nid in store})
        new_versions: Dict[int, int] = {}
        for op in message.ops:
            if op[0] in ("add", "replace"):
                versions[op[1]] = versions.get(op[1], 0) + 1
                new_versions[op[1]] = versions[op[1]]
            else:
                for removed_id in op[2]:
                    versions.pop(removed_id, None)
                    new_versions.pop(removed_id, None)
        document.update_log.append(
            (message.request_id, message.operation, len(message.ops)))
        return UpdateResponse(new_versions, applied=len(message.ops))

    def _handle_blob(self, document: HostedDocument) -> BlobResponse:
        if document.encrypted_blob is None:
            raise ProtocolError("this server has no download-all blob configured")
        return BlobResponse(document.encrypted_blob)

    # -- reporting -----------------------------------------------------------------------
    def storage_bits(self) -> int:
        """Measured storage across every hosted document (§5)."""
        return self.registry.total_storage_bits()
