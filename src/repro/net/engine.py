"""Multi-document tenancy for the search server.

A production deployment of the scheme hosts many outsourced documents for
many tenants in one server process.  :class:`DocumentRegistry` owns that
mapping: each :class:`HostedDocument` bundles a pluggable
:class:`~repro.net.store.ShareStore` backend with a per-document lock (so
concurrent sessions on *different* documents never contend, and concurrent
sessions on the *same* document serialise store access) and its own
:class:`~repro.net.server.ServerObservations` ledger — the
honest-but-curious view is accounted per tenant, exactly as the leakage
analysis of the source paper requires.

The registry is the architectural seam future sharding/async PRs plug
into: a shard is a registry subset, and a distributed deployment routes
``document_id`` to a registry replica.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional

from ..errors import ProtocolError
from .store import ShareStore, as_share_store

__all__ = ["DEFAULT_DOCUMENT", "HostedDocument", "DocumentRegistry"]

#: Document id used when a client does not name one (v1 compatibility).
DEFAULT_DOCUMENT = "default"


class HostedDocument:
    """One outsourced document inside a server: store + lock + observations."""

    __slots__ = ("document_id", "store", "lock", "observations", "encrypted_blob")

    def __init__(self, document_id: str, store: ShareStore,
                 encrypted_blob: Optional[bytes] = None) -> None:
        from .server import ServerObservations  # circular at module load

        self.document_id = document_id
        self.store = store
        #: Serialises store access; reentrant so a handler may sub-dispatch.
        self.lock = threading.RLock()
        #: What an honest-but-curious server learns about *this* tenant.
        self.observations = ServerObservations()
        #: Optional opaque blob served to download-everything clients.
        self.encrypted_blob = encrypted_blob

    def __repr__(self) -> str:
        return (f"<HostedDocument {self.document_id!r} "
                f"nodes={self.store.node_count()}>")


class DocumentRegistry:
    """Thread-safe name → :class:`HostedDocument` mapping."""

    def __init__(self) -> None:
        self._documents: Dict[str, HostedDocument] = {}
        self._lock = threading.Lock()

    def add(self, document_id: str, store: Any,
            encrypted_blob: Optional[bytes] = None) -> HostedDocument:
        """Host a document; ``store`` may be a ShareStore or a ServerShareTree."""
        document = HostedDocument(str(document_id), as_share_store(store),
                                  encrypted_blob=encrypted_blob)
        with self._lock:
            if document.document_id in self._documents:
                raise ProtocolError(
                    f"document {document.document_id!r} is already hosted")
            self._documents[document.document_id] = document
        return document

    def remove(self, document_id: str) -> HostedDocument:
        """Stop hosting a document (its store is returned, not closed)."""
        with self._lock:
            try:
                return self._documents.pop(document_id)
            except KeyError:
                raise ProtocolError(f"unknown document {document_id!r}") from None

    def get(self, document_id: str) -> HostedDocument:
        """Look up a hosted document; unknown ids are rejected loudly.

        The error names only the requested id — enumerating the hosted
        documents would leak other tenants' identifiers to the client.
        """
        with self._lock:
            document = self._documents.get(document_id)
        if document is None:
            raise ProtocolError(f"unknown document {document_id!r}")
        return document

    def resolve(self, document_id: Optional[str]) -> HostedDocument:
        """Like :meth:`get`, with v1-friendly defaulting for ``None``.

        ``None`` addresses :data:`DEFAULT_DOCUMENT` when hosted, or the
        single hosted document when there is exactly one — so a legacy
        client keeps working against any single-tenant server.
        """
        if document_id is not None:
            return self.get(document_id)
        with self._lock:
            if DEFAULT_DOCUMENT in self._documents:
                return self._documents[DEFAULT_DOCUMENT]
            if len(self._documents) == 1:
                return next(iter(self._documents.values()))
            hosted_count = len(self._documents)
        raise ProtocolError(
            "the request names no document and the server hosts "
            f"{hosted_count} documents; address one explicitly")

    def document_ids(self) -> List[str]:
        """All hosted document ids, sorted."""
        with self._lock:
            return sorted(self._documents)

    def total_storage_bits(self) -> int:
        """Aggregate share storage across every hosted document (§5)."""
        with self._lock:
            documents = list(self._documents.values())
        return sum(document.store.storage_bits() for document in documents)

    def __len__(self) -> int:
        with self._lock:
            return len(self._documents)

    def __contains__(self, document_id: str) -> bool:
        with self._lock:
            return document_id in self._documents

    def __repr__(self) -> str:
        return f"<DocumentRegistry documents={self.document_ids()}>"
