"""Client-side network stub: a :class:`ServerInterface` over a channel.

:class:`RemoteServerAdapter` turns the abstract requests of the query
engine into protocol messages, sends them through an
:class:`~repro.net.channel.InstrumentedChannel` and decodes the answers —
so every query run through it yields exact byte/round-trip measurements
(experiments E10/E13).

A session opens with the hello exchange: the client states every protocol
version it speaks, the server picks the highest common one (and throws a
loud error when there is none).  Version-2 sessions route whole descent
rounds through the batched :class:`~repro.net.messages.FrontierRequest`
and piggyback prune notices on the next outgoing request; version-1
sessions reproduce the original request-per-kind exchange byte for byte.
Every message is stamped with the session's document id, so one server —
and one channel — can serve many tenants.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..algebra.poly import Polynomial
from ..core.query import FrontierResult, ServerInterface
from ..core.share_tree import ServerShareTree
from ..errors import ProtocolError
from .channel import InstrumentedChannel, LatencyModel, SocketChannel
from .messages import (
    SUPPORTED_PROTOCOL_VERSIONS,
    BlobRequest,
    BlobResponse,
    ChildrenRequest,
    ChildrenResponse,
    EvaluateRequest,
    EvaluateResponse,
    FetchConstantsRequest,
    FetchConstantsResponse,
    FetchPolynomialsRequest,
    FetchPolynomialsResponse,
    FrontierRequest,
    FrontierResponse,
    HelloRequest,
    HelloResponse,
    Message,
    PruneNotice,
    StructureRequest,
    StructureResponse,
)
from .server import SearchServer
from .store import ShareStore

__all__ = ["RemoteServerAdapter", "connect", "connect_in_process",
           "connect_socket"]


class RemoteServerAdapter(ServerInterface):
    """A server proxy that speaks the wire protocol over a channel."""

    def __init__(self, channel: InstrumentedChannel, ring,
                 document_id: Optional[str] = None,
                 protocol_version: Optional[int] = None) -> None:
        self.channel = channel
        self.ring = ring
        self.document_id = document_id
        self._structure: Optional[Tuple[int, int]] = None
        self._pending_prune: List[int] = []
        if protocol_version is None:
            self.protocol_version = self._negotiate(SUPPORTED_PROTOCOL_VERSIONS)
        elif protocol_version == 1:
            # Legacy client: no hello exchange existed in protocol v1.
            self.protocol_version = 1
        else:
            self.protocol_version = self._negotiate([protocol_version])

    @property
    def batched_rounds(self) -> bool:
        """v2 sessions answer whole frontier rounds in one exchange."""
        return self.protocol_version >= 2

    # -- session management ---------------------------------------------------------
    def _negotiate(self, versions: Sequence[int]) -> int:
        """The hello exchange; also caches the structure summary it returns."""
        response = self._request(HelloRequest(versions), HelloResponse)
        if response.version not in versions:
            raise ProtocolError(
                f"server negotiated protocol version {response.version}, which "
                f"this client did not offer ({list(versions)})")
        if response.root_id is not None:
            self._structure = (response.root_id, response.node_count)
        return response.version

    def _request(self, message: Message, expected: type) -> Message:
        if self.document_id is not None:
            message.for_document(self.document_id)
        response = self.channel.request(message)
        if not isinstance(response, expected):
            raise ProtocolError(f"unexpected response {response.kind!r}")
        return response

    def _structure_summary(self) -> Tuple[int, int]:
        if self._structure is None:
            response = self._request(StructureRequest(), StructureResponse)
            self._structure = (response.root_id, response.node_count)
        return self._structure

    def _take_prunes(self) -> List[int]:
        pending, self._pending_prune = self._pending_prune, []
        return pending

    # -- ServerInterface -----------------------------------------------------------
    def root_id(self) -> int:
        return self._structure_summary()[0]

    def node_count(self) -> int:
        return self._structure_summary()[1]

    def children_of(self, node_ids: Sequence[int]) -> Dict[int, List[int]]:
        response = self._request(ChildrenRequest(node_ids), ChildrenResponse)
        return response.children

    def evaluate(self, node_ids: Sequence[int], point: int) -> Dict[int, int]:
        response = self._request(EvaluateRequest(node_ids, point), EvaluateResponse)
        return response.values

    def fetch_polynomials(self, node_ids: Sequence[int]) -> Dict[int, Polynomial]:
        if self.protocol_version >= 2:
            response = self._frontier(fetch_polynomials=node_ids)
            return {node_id: self.ring.from_coefficients(response.polynomials[node_id])
                    for node_id in node_ids}
        response = self._request(FetchPolynomialsRequest(node_ids),
                                 FetchPolynomialsResponse)
        return {node_id: self.ring.from_coefficients(coeffs)
                for node_id, coeffs in response.coefficients.items()}

    def fetch_constants(self, node_ids: Sequence[int]) -> Dict[int, int]:
        if self.protocol_version >= 2:
            response = self._frontier(fetch_constants=node_ids)
            return {node_id: response.constants[node_id] for node_id in node_ids}
        response = self._request(FetchConstantsRequest(node_ids),
                                 FetchConstantsResponse)
        return response.constants

    def prune(self, node_ids: Sequence[int]) -> None:
        if self.protocol_version >= 2:
            # Buffered: the ids ride along with the next v2 request.
            self._pending_prune.extend(node_ids)
            return
        self._request(PruneNotice(node_ids), Message)

    def flush_prunes(self) -> int:
        if not self._pending_prune:
            return 0
        self._request(PruneNotice(self._take_prunes()), Message)
        return 1

    # -- batched protocol ------------------------------------------------------------
    def _frontier(self, node_ids: Sequence[int] = (), points: Sequence[int] = (),
                  include_children: bool = False,
                  fetch_polynomials: Sequence[int] = (),
                  fetch_constants: Sequence[int] = (),
                  lookahead: int = 0) -> FrontierResponse:
        request = FrontierRequest(node_ids, points, prune=self._take_prunes(),
                                  include_children=include_children,
                                  fetch_polynomials=fetch_polynomials,
                                  fetch_constants=fetch_constants,
                                  lookahead=lookahead)
        return self._request(request, FrontierResponse)

    def frontier_round(self, node_ids: Sequence[int], points: Sequence[int],
                       prune: Sequence[int] = (), include_children: bool = True,
                       lookahead: int = 0) -> FrontierResult:
        if self.protocol_version < 2:
            return super().frontier_round(node_ids, points, prune=prune,
                                          include_children=include_children)
        self._pending_prune.extend(prune)
        response = self._frontier(node_ids, points,
                                  include_children=include_children,
                                  lookahead=lookahead)
        return FrontierResult(response.evaluations, response.children,
                              round_trips=1)

    def verification_bundle(self, node_ids: Sequence[int],
                            constants_only: bool = False
                            ) -> Tuple[Dict[int, List[int]], Dict[int, object], int]:
        if self.protocol_version < 2:
            return super().verification_bundle(node_ids,
                                               constants_only=constants_only)
        if constants_only:
            response = self._frontier(include_children=True,
                                      fetch_constants=node_ids)
            data: Dict[int, object] = dict(response.constants)
        else:
            response = self._frontier(include_children=True,
                                      fetch_polynomials=node_ids)
            data = {node_id: self.ring.from_coefficients(coeffs)
                    for node_id, coeffs in response.polynomials.items()}
        children = {node_id: response.children[node_id] for node_id in node_ids}
        return children, data, 1

    # -- extras used by baselines -------------------------------------------------------
    def download_blob(self) -> bytes:
        """Fetch the server's whole encrypted blob (download-all baseline)."""
        response = self._request(BlobRequest(), BlobResponse)
        return response.blob


def connect(server: SearchServer, document_id: Optional[str] = None,
            latency_model: Optional[LatencyModel] = None,
            protocol_version: Optional[int] = None
            ) -> Tuple[RemoteServerAdapter, InstrumentedChannel]:
    """Open a fresh instrumented session against a (multi-document) server.

    Each call is one client session with its own channel, so byte and
    round-trip totals are accounted per session — N concurrent tenants get
    N independent :class:`~repro.net.channel.ChannelStats`.
    """
    channel = InstrumentedChannel(server.handle, latency_model=latency_model)
    document = server.registry.resolve(document_id)
    adapter = RemoteServerAdapter(channel, document.store.ring,
                                  document_id=document_id,
                                  protocol_version=protocol_version)
    return adapter, channel


def connect_socket(host: str, port: int, ring,
                   document_id: Optional[str] = None,
                   latency_model: Optional[LatencyModel] = None,
                   protocol_version: Optional[int] = None,
                   timeout_s: Optional[float] = 30.0
                   ) -> Tuple[RemoteServerAdapter, SocketChannel]:
    """Open a synchronous session against a *socket* server.

    This is the sync adapter for the socket transports: the returned
    :class:`RemoteServerAdapter` is the same object in-process callers
    use, so any existing :class:`~repro.core.query.QueryEngine` /
    :class:`~repro.core.ClientContext` code runs over a real TCP
    connection unchanged — against either the threaded
    :class:`~repro.net.server.ThreadedSearchServer` or the asyncio
    :class:`~repro.net.aio.AsyncSearchServer` (both speak the same
    frames).  Callers should ``channel.close()`` when done.
    """
    channel = SocketChannel(host, port, latency_model=latency_model,
                            timeout_s=timeout_s)
    try:
        adapter = RemoteServerAdapter(channel, ring, document_id=document_id,
                                      protocol_version=protocol_version)
    except BaseException:
        # HELLO negotiation (or its first framed read) failed: the caller
        # never sees the channel, so it must be closed here or the socket
        # leaks.
        channel.close()
        raise
    return adapter, channel


def connect_in_process(share_tree: Union[ServerShareTree, ShareStore],
                       encrypted_blob: Optional[bytes] = None,
                       latency_model: Optional[LatencyModel] = None,
                       protocol_version: Optional[int] = None
                       ) -> tuple:
    """Wire a server and a remote adapter through an instrumented channel.

    Returns ``(adapter, server, channel)``; the adapter plugs straight into
    :class:`repro.core.query.QueryEngine` / :class:`repro.core.ClientContext`.
    ``protocol_version`` forces a wire generation (``1`` reproduces the
    original per-request protocol, hello-free); by default the session
    negotiates the newest one.
    """
    server = SearchServer(share_tree, encrypted_blob=encrypted_blob)
    channel = InstrumentedChannel(server.handle, latency_model=latency_model)
    adapter = RemoteServerAdapter(channel, server.document().store.ring,
                                  protocol_version=protocol_version)
    return adapter, server, channel
