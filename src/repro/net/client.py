"""Client-side network stub: a :class:`ServerInterface` over a channel.

:class:`RemoteServerAdapter` turns the abstract requests of the query
engine into protocol messages, sends them through an
:class:`~repro.net.channel.InstrumentedChannel` and decodes the answers —
so every query run through it yields exact byte/round-trip measurements
(experiments E10/E13).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..algebra.poly import Polynomial
from ..core.query import ServerInterface
from ..core.share_tree import ServerShareTree
from ..errors import ProtocolError
from .channel import InstrumentedChannel, LatencyModel
from .messages import (
    BlobRequest,
    BlobResponse,
    ChildrenRequest,
    ChildrenResponse,
    EvaluateRequest,
    EvaluateResponse,
    FetchConstantsRequest,
    FetchConstantsResponse,
    FetchPolynomialsRequest,
    FetchPolynomialsResponse,
    PruneNotice,
    StructureRequest,
    StructureResponse,
)
from .server import SearchServer

__all__ = ["RemoteServerAdapter", "connect_in_process"]


class RemoteServerAdapter(ServerInterface):
    """A server proxy that speaks the wire protocol over a channel."""

    def __init__(self, channel: InstrumentedChannel, ring) -> None:
        self.channel = channel
        self.ring = ring
        self._structure: Optional[StructureResponse] = None

    # -- helpers -----------------------------------------------------------------
    def _structure_summary(self) -> StructureResponse:
        if self._structure is None:
            response = self.channel.request(StructureRequest())
            if not isinstance(response, StructureResponse):
                raise ProtocolError(f"unexpected response {response.kind!r}")
            self._structure = response
        return self._structure

    # -- ServerInterface -----------------------------------------------------------
    def root_id(self) -> int:
        return self._structure_summary().root_id

    def node_count(self) -> int:
        return self._structure_summary().node_count

    def children_of(self, node_ids: Sequence[int]) -> Dict[int, List[int]]:
        response = self.channel.request(ChildrenRequest(node_ids))
        if not isinstance(response, ChildrenResponse):
            raise ProtocolError(f"unexpected response {response.kind!r}")
        return response.children

    def evaluate(self, node_ids: Sequence[int], point: int) -> Dict[int, int]:
        response = self.channel.request(EvaluateRequest(node_ids, point))
        if not isinstance(response, EvaluateResponse):
            raise ProtocolError(f"unexpected response {response.kind!r}")
        return response.values

    def fetch_polynomials(self, node_ids: Sequence[int]) -> Dict[int, Polynomial]:
        response = self.channel.request(FetchPolynomialsRequest(node_ids))
        if not isinstance(response, FetchPolynomialsResponse):
            raise ProtocolError(f"unexpected response {response.kind!r}")
        return {node_id: self.ring.from_coefficients(coeffs)
                for node_id, coeffs in response.coefficients.items()}

    def fetch_constants(self, node_ids: Sequence[int]) -> Dict[int, int]:
        response = self.channel.request(FetchConstantsRequest(node_ids))
        if not isinstance(response, FetchConstantsResponse):
            raise ProtocolError(f"unexpected response {response.kind!r}")
        return response.constants

    def prune(self, node_ids: Sequence[int]) -> None:
        self.channel.request(PruneNotice(node_ids))

    # -- extras used by baselines -------------------------------------------------------
    def download_blob(self) -> bytes:
        """Fetch the server's whole encrypted blob (download-all baseline)."""
        response = self.channel.request(BlobRequest())
        if not isinstance(response, BlobResponse):
            raise ProtocolError(f"unexpected response {response.kind!r}")
        return response.blob


def connect_in_process(share_tree: ServerShareTree,
                       encrypted_blob: Optional[bytes] = None,
                       latency_model: Optional[LatencyModel] = None
                       ) -> tuple:
    """Wire a server and a remote adapter through an instrumented channel.

    Returns ``(adapter, server, channel)``; the adapter plugs straight into
    :class:`repro.core.query.QueryEngine` / :class:`repro.core.ClientContext`.
    """
    server = SearchServer(share_tree, encrypted_blob=encrypted_blob)
    channel = InstrumentedChannel(server.handle, latency_model=latency_model)
    adapter = RemoteServerAdapter(channel, share_tree.ring)
    return adapter, server, channel
