"""Client-side network stub: a :class:`ServerInterface` over a channel.

:class:`RemoteServerAdapter` turns the abstract requests of the query
engine into protocol messages, sends them through an
:class:`~repro.net.channel.InstrumentedChannel` and decodes the answers —
so every query run through it yields exact byte/round-trip measurements
(experiments E10/E13).

A session opens with the hello exchange: the client states every protocol
version it speaks, the server picks the highest common one (and throws a
loud error when there is none).  Version-2 sessions route whole descent
rounds through the batched :class:`~repro.net.messages.FrontierRequest`
and piggyback prune notices on the next outgoing request; version-1
sessions reproduce the original request-per-kind exchange byte for byte.
Every message is stamped with the session's document id, so one server —
and one channel — can serve many tenants.

Version-3 sessions can also *edit* the hosted document:
:class:`RemoteUpdatableTree` mirrors the
:class:`~repro.core.updates.UpdatableTree` API over the wire.  It keeps a
local structure mirror (:class:`_RemoteStoreMirror`) fed by the ordinary
read messages, computes every new share client-side exactly as the
in-process editor does, and pushes each operation as one
:class:`~repro.net.messages.UpdateRequest` batch.  When the server
answers with a :class:`~repro.net.messages.ConflictResponse` (another
writer touched an overlapping path first), the tree refetches the
conflicting state and transparently rebases — recomputing the operation
against the fresh state and resending — up to ``max_rebases`` times
before surfacing :class:`~repro.errors.UpdateConflictError`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..algebra.poly import Polynomial
from ..core.query import FrontierResult, ServerInterface
from ..core.share_tree import ServerShareTree
from ..core.updates import UpdatableTree
from ..errors import ProtocolError, SharingError, UpdateConflictError
from .channel import InstrumentedChannel, LatencyModel, SocketChannel
from .messages import (
    SUPPORTED_PROTOCOL_VERSIONS,
    BlobRequest,
    BlobResponse,
    ChildrenRequest,
    ChildrenResponse,
    ConflictResponse,
    ErrorResponse,
    EvaluateRequest,
    EvaluateResponse,
    FetchConstantsRequest,
    FetchConstantsResponse,
    FetchPolynomialsRequest,
    FetchPolynomialsResponse,
    FrontierRequest,
    FrontierResponse,
    HealthRequest,
    HealthResponse,
    HelloRequest,
    HelloResponse,
    Message,
    PruneNotice,
    StatsRequest,
    StatsResponse,
    StructureRequest,
    StructureResponse,
    UpdateRequest,
    UpdateResponse,
)
from .server import SearchServer
from .store import ShareStore

__all__ = ["RemoteServerAdapter", "RemoteUpdatableTree", "connect",
           "connect_in_process", "connect_socket"]


class RemoteServerAdapter(ServerInterface):
    """A server proxy that speaks the wire protocol over a channel."""

    def __init__(self, channel: InstrumentedChannel, ring,
                 document_id: Optional[str] = None,
                 protocol_version: Optional[int] = None) -> None:
        self.channel = channel
        self.ring = ring
        self.document_id = document_id
        self._structure: Optional[Tuple[int, int]] = None
        self._pending_prune: List[int] = []
        if protocol_version is None:
            self.protocol_version = self._negotiate(SUPPORTED_PROTOCOL_VERSIONS)
        elif protocol_version == 1:
            # Legacy client: no hello exchange existed in protocol v1.
            self.protocol_version = 1
        else:
            self.protocol_version = self._negotiate([protocol_version])

    @property
    def batched_rounds(self) -> bool:
        """v2 sessions answer whole frontier rounds in one exchange."""
        return self.protocol_version >= 2

    # -- session management ---------------------------------------------------------
    def _negotiate(self, versions: Sequence[int]) -> int:
        """The hello exchange; also caches the structure summary it returns."""
        response = self._request(HelloRequest(versions), HelloResponse)
        if response.version not in versions:
            raise ProtocolError(
                f"server negotiated protocol version {response.version}, which "
                f"this client did not offer ({list(versions)})")
        if response.root_id is not None:
            self._structure = (response.root_id, response.node_count)
        return response.version

    def _request(self, message: Message, expected: type) -> Message:
        if self.document_id is not None:
            message.for_document(self.document_id)
        response = self.channel.request(message)
        if not isinstance(response, expected):
            raise ProtocolError(f"unexpected response {response.kind!r}")
        return response

    def _structure_summary(self) -> Tuple[int, int]:
        if self._structure is None:
            response = self._request(StructureRequest(), StructureResponse)
            self._structure = (response.root_id, response.node_count)
        return self._structure

    def _take_prunes(self) -> List[int]:
        pending, self._pending_prune = self._pending_prune, []
        return pending

    # -- ServerInterface -----------------------------------------------------------
    def root_id(self) -> int:
        return self._structure_summary()[0]

    def node_count(self) -> int:
        return self._structure_summary()[1]

    def children_of(self, node_ids: Sequence[int]) -> Dict[int, List[int]]:
        response = self._request(ChildrenRequest(node_ids), ChildrenResponse)
        return response.children

    def evaluate(self, node_ids: Sequence[int], point: int) -> Dict[int, int]:
        response = self._request(EvaluateRequest(node_ids, point), EvaluateResponse)
        return response.values

    def fetch_polynomials(self, node_ids: Sequence[int]) -> Dict[int, Polynomial]:
        if self.protocol_version >= 2:
            response = self._frontier(fetch_polynomials=node_ids)
            return {node_id: self.ring.from_coefficients(response.polynomials[node_id])
                    for node_id in node_ids}
        response = self._request(FetchPolynomialsRequest(node_ids),
                                 FetchPolynomialsResponse)
        return {node_id: self.ring.from_coefficients(coeffs)
                for node_id, coeffs in response.coefficients.items()}

    def fetch_constants(self, node_ids: Sequence[int]) -> Dict[int, int]:
        if self.protocol_version >= 2:
            response = self._frontier(fetch_constants=node_ids)
            return {node_id: response.constants[node_id] for node_id in node_ids}
        response = self._request(FetchConstantsRequest(node_ids),
                                 FetchConstantsResponse)
        return response.constants

    def prune(self, node_ids: Sequence[int]) -> None:
        if self.protocol_version >= 2:
            # Buffered: the ids ride along with the next v2 request.
            self._pending_prune.extend(node_ids)
            return
        self._request(PruneNotice(node_ids), Message)

    def flush_prunes(self) -> int:
        if not self._pending_prune:
            return 0
        self._request(PruneNotice(self._take_prunes()), Message)
        return 1

    # -- batched protocol ------------------------------------------------------------
    def _frontier(self, node_ids: Sequence[int] = (), points: Sequence[int] = (),
                  include_children: bool = False,
                  fetch_polynomials: Sequence[int] = (),
                  fetch_constants: Sequence[int] = (),
                  lookahead: int = 0) -> FrontierResponse:
        request = FrontierRequest(node_ids, points, prune=self._take_prunes(),
                                  include_children=include_children,
                                  fetch_polynomials=fetch_polynomials,
                                  fetch_constants=fetch_constants,
                                  lookahead=lookahead)
        return self._request(request, FrontierResponse)

    def frontier_round(self, node_ids: Sequence[int], points: Sequence[int],
                       prune: Sequence[int] = (), include_children: bool = True,
                       lookahead: int = 0) -> FrontierResult:
        if self.protocol_version < 2:
            return super().frontier_round(node_ids, points, prune=prune,
                                          include_children=include_children)
        self._pending_prune.extend(prune)
        response = self._frontier(node_ids, points,
                                  include_children=include_children,
                                  lookahead=lookahead)
        return FrontierResult(response.evaluations, response.children,
                              round_trips=1)

    def verification_bundle(self, node_ids: Sequence[int],
                            constants_only: bool = False
                            ) -> Tuple[Dict[int, List[int]], Dict[int, object], int]:
        if self.protocol_version < 2:
            return super().verification_bundle(node_ids,
                                               constants_only=constants_only)
        if constants_only:
            response = self._frontier(include_children=True,
                                      fetch_constants=node_ids)
            data: Dict[int, object] = dict(response.constants)
        else:
            response = self._frontier(include_children=True,
                                      fetch_polynomials=node_ids)
            data = {node_id: self.ring.from_coefficients(coeffs)
                    for node_id, coeffs in response.polynomials.items()}
        children = {node_id: response.children[node_id] for node_id in node_ids}
        return children, data, 1

    # -- v3 updates -----------------------------------------------------------------
    def apply_update(self, request: UpdateRequest) -> UpdateResponse:
        """Send one v3 update batch; returns the commit confirmation.

        A :class:`~repro.net.messages.ConflictResponse` surfaces as
        :class:`~repro.errors.UpdateConflictError` (carrying the
        conflicting ids and their current versions); an in-band error
        frame as :class:`~repro.errors.ProtocolError` — matching what the
        in-process channel would have raised, so both transports behave
        identically.
        """
        if self.protocol_version < 3:
            raise ProtocolError(
                f"remote updates need protocol v3; this session negotiated "
                f"v{self.protocol_version}")
        response = self._request(request, Message)
        if isinstance(response, ErrorResponse):
            raise ProtocolError(response.error)
        if isinstance(response, ConflictResponse):
            raise UpdateConflictError(
                f"update batch rejected: nodes {response.conflicts} changed "
                "under this client (refetch and rebase)",
                conflicts=response.conflicts, versions=response.versions)
        if not isinstance(response, UpdateResponse):
            raise ProtocolError(f"unexpected response {response.kind!r}")
        return response

    # -- v3 control plane ------------------------------------------------------------
    def server_stats(self) -> Dict[str, object]:
        """Fetch the server's metrics snapshot (v3 ``stats`` probe).

        When this session is bound to a document, the server filters the
        snapshot to instruments without a document label plus those
        belonging to that document, and includes the tenant's admission
        ledger — one tenant cannot read another's traffic.
        """
        if self.protocol_version < 3:
            raise ProtocolError(
                f"the stats probe needs protocol v3; this session "
                f"negotiated v{self.protocol_version}")
        response = self._request(StatsRequest(), StatsResponse)
        return response.metrics

    def server_health(self) -> Dict[str, object]:
        """Fetch the server's health summary (v3 ``health`` probe)."""
        if self.protocol_version < 3:
            raise ProtocolError(
                f"the health probe needs protocol v3; this session "
                f"negotiated v{self.protocol_version}")
        response = self._request(HealthRequest(), HealthResponse)
        summary: Dict[str, object] = {"status": response.status}
        summary.update(response.detail)
        return summary

    # -- extras used by baselines -------------------------------------------------------
    def download_blob(self) -> bytes:
        """Fetch the server's whole encrypted blob (download-all baseline)."""
        response = self._request(BlobRequest(), BlobResponse)
        return response.blob


class _RemoteStoreMirror(ShareStore):
    """A client-side :class:`~repro.net.store.ShareStore` view of a hosted document.

    Reads are served from a locally mirrored structure (built with the
    ordinary ``children`` messages) and a lazily fetched share cache, so
    the in-process update planner can run against it unchanged.  Writes
    only exist as whole batches: :meth:`apply_batch` — the hook a
    :class:`~repro.net.store.StoreTransaction` commits through — turns
    the buffered ops into one :class:`~repro.net.messages.UpdateRequest`,
    sends it, and folds the committed batch into the mirror.  The mirror
    also tracks the per-node versions the server reported, which become
    the ``base_versions`` vector of the next batch.
    """

    #: Node ids per children/fetch request while mirroring structure.
    CHUNK = 4096

    def __init__(self, server: "RemoteServerAdapter") -> None:
        self.server = server
        self.ring = server.ring
        #: Last server-confirmed version per node (absent = 0).
        self.versions: Dict[int, int] = {}
        #: Label stamped on the next update batch (set by the editor).
        self.operation = "batch"
        self._parents: Dict[int, Optional[int]] = {}
        self._children: Dict[int, List[int]] = {}
        self._root: Optional[int] = None
        self._shares: Dict[int, Polynomial] = {}
        self.refresh()

    # -- mirroring ------------------------------------------------------------------
    def refresh(self) -> None:
        """Re-mirror the whole public structure and drop the share cache.

        Called at construction and after every conflict: anything another
        writer may have changed (structure and shares alike) is refetched
        on demand against the server's current state.  Confirmed versions
        are kept — they are what the server told us, not what we cached.
        """
        parents: Dict[int, Optional[int]] = {}
        children: Dict[int, List[int]] = {}
        root = self.server.root_id()
        parents[root] = None
        frontier = [root]
        while frontier:
            chunk, frontier = frontier[:self.CHUNK], frontier[self.CHUNK:]
            for node_id, child_ids in self.server.children_of(chunk).items():
                children[node_id] = list(child_ids)
                for child in child_ids:
                    parents[child] = node_id
                frontier.extend(child_ids)
        self._parents = parents
        self._children = children
        self._root = root
        self._shares = {}
        self.versions = {nid: v for nid, v in self.versions.items()
                         if nid in parents}

    def prefetch(self, node_ids: Sequence[int]) -> None:
        """Bulk-fetch the shares of these nodes into the cache (one pass)."""
        missing = sorted({int(n) for n in node_ids
                          if n not in self._shares and n in self._parents})
        while missing:
            chunk, missing = missing[:self.CHUNK], missing[self.CHUNK:]
            self._shares.update(self._fetch_shares(chunk))

    def _fetch_shares(self, node_ids: Sequence[int]) -> Dict[int, Polynomial]:
        """Fetch shares the mirror believes exist; staleness is a conflict.

        A server that refuses to serve a share for a node the mirrored
        structure still contains means another writer removed it since the
        mirror was built — the *read-side* face of a version conflict, so
        it raises :class:`~repro.errors.UpdateConflictError` and the
        editor's rebase loop re-mirrors and retries.  Transport-level and
        transient failures keep their own types (a resilient channel
        handles those below us).
        """
        from ..errors import (
            RetryExhaustedError,
            TransientServerError,
            TransportError,
        )
        try:
            return self.server.fetch_polynomials(node_ids)
        except (TransportError, TransientServerError, RetryExhaustedError,
                UpdateConflictError):
            raise
        except (SharingError, ProtocolError) as exc:
            raise UpdateConflictError(
                f"the hosted document changed under this client while "
                f"fetching shares ({exc}); refetch and rebase",
                conflicts=[n for n in node_ids]) from exc

    # -- read side (served from the mirror) -------------------------------------------
    @property
    def root_id(self) -> Optional[int]:
        return self._root

    def node_count(self) -> int:
        return len(self._parents)

    def node_ids(self) -> List[int]:
        return sorted(self._parents)

    def child_ids(self, node_id: int) -> List[int]:
        try:
            return list(self._children[node_id])
        except KeyError:
            raise SharingError(f"unknown node id {node_id}") from None

    def parent_id(self, node_id: int) -> Optional[int]:
        try:
            return self._parents[node_id]
        except KeyError:
            raise SharingError(f"unknown node id {node_id}") from None

    def share_of(self, node_id: int) -> Polynomial:
        share = self._shares.get(node_id)
        if share is None:
            if node_id not in self._parents:
                raise SharingError(f"unknown node id {node_id}")
            share = self._fetch_shares([node_id])[node_id]
            self._shares[node_id] = share
        return share

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._parents

    # -- write side (whole batches only) ----------------------------------------------
    def add_node(self, node_id: int, parent_id: Optional[int],
                 share: Polynomial) -> None:
        raise ProtocolError(
            "a remote store applies mutations as whole update batches; "
            "use a transaction()")

    replace_share = add_node
    remove_subtree = add_node  # type: ignore[assignment]

    def apply_batch(self, ops: Sequence[tuple]) -> None:
        """Ship one recorded batch as an UpdateRequest and commit the mirror.

        The base versions the batch rode on cover its full write set: the
        replaced nodes (which include every rewritten ancestor up to the
        root), the removal targets, and the pre-existing parents of added
        nodes — so the server's check catches *any* concurrent writer,
        whose own ancestor rewrites necessarily overlap at those nodes.
        Raises :class:`~repro.errors.UpdateConflictError` (nothing
        applied, mirror untouched) when the batch lost such a race.
        """
        wire_ops: List[List[object]] = []
        added: set = set()
        base_ids: set = set()
        for op in ops:
            if op[0] == "add":
                _, node_id, parent_id, share = op
                wire_ops.append(["add", node_id, parent_id,
                                 [int(c) for c in share.coeffs]])
                if parent_id is not None and parent_id not in added:
                    base_ids.add(parent_id)
                added.add(node_id)
            elif op[0] == "replace":
                _, node_id, share = op
                wire_ops.append(["replace", node_id,
                                 [int(c) for c in share.coeffs]])
                if node_id not in added:
                    base_ids.add(node_id)
            else:
                _, node_id, expected = op
                wire_ops.append(["remove", node_id, list(expected)])
                base_ids.add(node_id)
        base = {nid: self.versions.get(nid, 0) for nid in sorted(base_ids)}
        request = UpdateRequest(self.operation, wire_ops, base)
        response = self.server.apply_update(request)

        # Committed server-side: fold the batch into the mirror so the
        # next operation plans against the post-batch state.
        for op in ops:
            if op[0] == "add":
                _, node_id, parent_id, share = op
                self._parents[node_id] = parent_id
                self._children[node_id] = []
                if parent_id is None:
                    self._root = node_id
                else:
                    self._children[parent_id].append(node_id)
                self._shares[node_id] = share
            elif op[0] == "replace":
                _, node_id, share = op
                self._shares[node_id] = share
            else:
                _, node_id, removed = op
                parent = self._parents.get(node_id)
                if parent is not None and node_id in self._children.get(parent, ()):
                    self._children[parent].remove(node_id)
                for removed_id in removed:
                    self._parents.pop(removed_id, None)
                    self._children.pop(removed_id, None)
                    self._shares.pop(removed_id, None)
                    self.versions.pop(removed_id, None)
        self.versions.update(response.versions)

    def __repr__(self) -> str:
        return (f"<_RemoteStoreMirror nodes={len(self._parents)} "
                f"cached_shares={len(self._shares)}>")


class RemoteUpdatableTree(UpdatableTree):
    """Edit a hosted document over the wire with transparent rebase.

    The full :class:`~repro.core.updates.UpdatableTree` API — insert,
    delete, rename, share refresh — against a v3 session
    (:class:`RemoteServerAdapter` or the resilient subclass from
    :mod:`repro.net.retry`, so reconnect/replay under faults comes for
    free).  Each operation plans against a local mirror of the hosted
    document, then commits as **one** idempotent
    :class:`~repro.net.messages.UpdateRequest`.  When the server reports
    a version conflict, the tree merges the reported versions, re-mirrors
    the document, recomputes the operation against the fresh state and
    resends — up to ``max_rebases`` times.  The conflict only surfaces as
    :class:`~repro.errors.UpdateConflictError` when the operation's
    anchor node was removed by another writer (the operation is
    meaningless now) or the rebase budget is spent.
    """

    def __init__(self, server: RemoteServerAdapter, mapping, client_shares,
                 max_rebases: int = 4) -> None:
        if server.protocol_version < 3:
            raise ProtocolError(
                f"remote editing needs protocol v3; this session negotiated "
                f"v{server.protocol_version}")
        self.server = server
        self.mirror = _RemoteStoreMirror(server)
        #: Conflict rounds one operation may absorb before giving up.
        self.max_rebases = int(max_rebases)
        #: Total rebase rounds performed over this tree's lifetime.
        self.rebases = 0
        super().__init__(server.ring, mapping, client_shares, self.mirror)

    # -- rebase loop ------------------------------------------------------------------
    def _run_rebasing(self, operation: str, anchor_ids: Sequence[int],
                      attempt):
        self.mirror.operation = operation
        remaining = self.max_rebases
        while True:
            try:
                return attempt()
            except UpdateConflictError as exc:
                if remaining <= 0:
                    raise
                remaining -= 1
                self.rebases += 1
                self.mirror.versions.update(exc.versions)
                self.mirror.refresh()
                gone = [nid for nid in anchor_ids if nid not in self.mirror]
                if gone:
                    raise UpdateConflictError(
                        f"cannot rebase {operation!r}: nodes {gone} were "
                        "removed by another writer",
                        conflicts=exc.conflicts, versions=exc.versions
                    ) from exc

    def _prefetch_paths(self, node_ids: Sequence[int],
                        with_children: bool = False) -> None:
        """Warm the share cache for the nodes an operation will read.

        ``with_children`` additionally pulls every child of every path
        node — what tag recovery (Theorem 1/2) reads — so a whole
        operation costs O(1) fetch round trips instead of one per share.
        """
        wanted: List[int] = []
        for node_id in node_ids:
            if node_id not in self.mirror:
                return          # let the operation raise its usual error
            path = [node_id] + [*self._mirror_ancestors(node_id)]
            wanted.extend(path)
            if with_children:
                for member in path:
                    wanted.extend(self.mirror.child_ids(member))
        self.mirror.prefetch(wanted)

    def _mirror_ancestors(self, node_id: int) -> List[int]:
        path: List[int] = []
        current = self.mirror.parent_id(node_id)
        while current is not None:
            path.append(current)
            current = self.mirror.parent_id(current)
        return path

    # -- public operations (wire-committed, rebase on conflict) -----------------------
    def insert_subtree(self, parent_id: int, element) -> "UpdateReport":
        """Insert a plaintext subtree under ``parent_id`` on the server."""
        def attempt():
            self._prefetch_paths([parent_id])
            return UpdatableTree.insert_subtree(self, parent_id, element)
        return self._run_rebasing("insert", [parent_id], attempt)

    def delete_subtree(self, node_id: int) -> "UpdateReport":
        """Delete the subtree rooted at ``node_id`` on the server."""
        def attempt():
            parent = (self.mirror.parent_id(node_id)
                      if node_id in self.mirror else None)
            if parent is not None:
                self._prefetch_paths([parent], with_children=True)
            return UpdatableTree.delete_subtree(self, node_id)
        return self._run_rebasing("delete", [node_id], attempt)

    def rename_node(self, node_id: int, new_tag: str) -> "UpdateReport":
        """Rename ``node_id`` to ``new_tag`` on the server."""
        def attempt():
            self._prefetch_paths([node_id], with_children=True)
            return UpdatableTree.rename_node(self, node_id, new_tag)
        return self._run_rebasing("rename", [node_id], attempt)

    def refresh_shares(self, new_generator) -> "UpdateReport":
        """Re-randomise every share on the server under a new client seed."""
        def attempt():
            self.mirror.prefetch(self.mirror.node_ids())
            return UpdatableTree.refresh_shares(self, new_generator)
        return self._run_rebasing("refresh", [], attempt)


def connect(server: SearchServer, document_id: Optional[str] = None,
            latency_model: Optional[LatencyModel] = None,
            protocol_version: Optional[int] = None
            ) -> Tuple[RemoteServerAdapter, InstrumentedChannel]:
    """Open a fresh instrumented session against a (multi-document) server.

    Each call is one client session with its own channel, so byte and
    round-trip totals are accounted per session — N concurrent tenants get
    N independent :class:`~repro.net.channel.ChannelStats`.
    """
    channel = InstrumentedChannel(server.handle, latency_model=latency_model)
    document = server.registry.resolve(document_id)
    adapter = RemoteServerAdapter(channel, document.store.ring,
                                  document_id=document_id,
                                  protocol_version=protocol_version)
    return adapter, channel


def connect_socket(host: str, port: int, ring,
                   document_id: Optional[str] = None,
                   latency_model: Optional[LatencyModel] = None,
                   protocol_version: Optional[int] = None,
                   timeout_s: Optional[float] = 30.0
                   ) -> Tuple[RemoteServerAdapter, SocketChannel]:
    """Open a synchronous session against a *socket* server.

    This is the sync adapter for the socket transports: the returned
    :class:`RemoteServerAdapter` is the same object in-process callers
    use, so any existing :class:`~repro.core.query.QueryEngine` /
    :class:`~repro.core.ClientContext` code runs over a real TCP
    connection unchanged — against either the threaded
    :class:`~repro.net.server.ThreadedSearchServer` or the asyncio
    :class:`~repro.net.aio.AsyncSearchServer` (both speak the same
    frames).  Callers should ``channel.close()`` when done.
    """
    channel = SocketChannel(host, port, latency_model=latency_model,
                            timeout_s=timeout_s)
    try:
        adapter = RemoteServerAdapter(channel, ring, document_id=document_id,
                                      protocol_version=protocol_version)
    except BaseException:
        # HELLO negotiation (or its first framed read) failed: the caller
        # never sees the channel, so it must be closed here or the socket
        # leaks.
        channel.close()
        raise
    return adapter, channel


def connect_in_process(share_tree: Union[ServerShareTree, ShareStore],
                       encrypted_blob: Optional[bytes] = None,
                       latency_model: Optional[LatencyModel] = None,
                       protocol_version: Optional[int] = None
                       ) -> tuple:
    """Wire a server and a remote adapter through an instrumented channel.

    Returns ``(adapter, server, channel)``; the adapter plugs straight into
    :class:`repro.core.query.QueryEngine` / :class:`repro.core.ClientContext`.
    ``protocol_version`` forces a wire generation (``1`` reproduces the
    original per-request protocol, hello-free); by default the session
    negotiates the newest one.
    """
    server = SearchServer(share_tree, encrypted_blob=encrypted_blob)
    channel = InstrumentedChannel(server.handle, latency_model=latency_model)
    adapter = RemoteServerAdapter(channel, server.document().store.ring,
                                  protocol_version=protocol_version)
    return adapter, server, channel
