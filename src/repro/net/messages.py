"""Protocol messages exchanged between the thin client and the server.

The paper motivates its design with thin clients and low-bandwidth links,
so the reproduction measures communication explicitly.  Every request and
response is a small message object with a deterministic serialisation
(:meth:`Message.encode`) whose byte length is what the instrumented
channel (:mod:`repro.net.channel`) accounts for.

Two protocol generations coexist:

* **v1** — the original strictly request-per-kind messages (structure,
  children, evaluate, fetch, prune).  Their wire encoding is unchanged, so
  v1 clients keep working and historical bandwidth figures stay valid.
* **v2** — adds :class:`HelloRequest`/:class:`HelloResponse` (version
  negotiation at connect; unknown versions are rejected loudly) and the
  batched :class:`FrontierRequest`/:class:`FrontierResponse` pair that
  carries evaluate + children + verification fetches + prune notices for a
  whole frontier round in one exchange — O(depth) round trips per lookup
  instead of O(depth × request kinds).
* **v3** — adds the update triplet: :class:`UpdateRequest` carries one
  whole mutation batch (the ops recorded by a
  :class:`~repro.net.store.StoreTransaction`, in wire form) plus the
  client's base version vector over every node the batch touches;
  :class:`UpdateResponse` confirms a committed batch and returns the new
  per-node versions; :class:`ConflictResponse` rejects a batch whose base
  versions no longer match (another writer got there first) and names the
  conflicting node ids so the client can refetch and rebase.  v3 also
  adds the operational probes :class:`StatsRequest`/:class:`StatsResponse`
  and :class:`HealthRequest`/:class:`HealthResponse` — hello-exempt like
  the hello itself, admission-exempt, and tenant-filtered on the way out.

Every message additionally carries an optional ``document_id`` so one
server can host many outsourced documents; omitting it (the v1 encoding)
addresses the server's default document.  Messages may also carry an
optional ``request_id`` — an idempotency key stamped by resilient clients
so that a request replayed after an ambiguous transport failure is
answered bit-identically from the server's idempotency cache instead of
being processed (and observed) twice.  Both fields are omitted from the
encoding when unset, so historical byte counts are unchanged.

Two in-band failure responses exist: :class:`ErrorResponse` (a request
failed; ``retryable`` marks transient backend failures) and
:class:`BusyResponse` (the server shed the request under load and names a
``retry_after_s`` backoff hint — graceful degradation instead of a
dropped connection).

The wire format is a compact JSON document; it is *not* meant to be an
optimised binary protocol, only a consistent yardstick so that the
bandwidth comparisons between modes and baselines are meaningful.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from ..errors import ProtocolError

__all__ = [
    "PROTOCOL_VERSION",
    "SUPPORTED_PROTOCOL_VERSIONS",
    "Message",
    "HelloRequest",
    "HelloResponse",
    "StructureRequest",
    "StructureResponse",
    "ChildrenRequest",
    "ChildrenResponse",
    "EvaluateRequest",
    "EvaluateResponse",
    "FrontierRequest",
    "FrontierResponse",
    "FetchPolynomialsRequest",
    "FetchPolynomialsResponse",
    "FetchConstantsRequest",
    "FetchConstantsResponse",
    "PruneNotice",
    "UpdateRequest",
    "UpdateResponse",
    "ConflictResponse",
    "Acknowledgement",
    "ErrorResponse",
    "BusyResponse",
    "StatsRequest",
    "StatsResponse",
    "HealthRequest",
    "HealthResponse",
    "BlobRequest",
    "BlobResponse",
    "decode_message",
]

#: Newest protocol generation this build speaks.
PROTOCOL_VERSION = 3

#: Every generation this build can serve (negotiated in the hello exchange).
SUPPORTED_PROTOCOL_VERSIONS = (1, 2, 3)


def _int_keyed(mapping: Dict[Any, Any]) -> Dict[int, Any]:
    return {int(k): v for k, v in mapping.items()}


class Message:
    """Base class of all protocol messages."""

    #: Short type tag used on the wire; subclasses override it.
    kind = "message"

    #: Which hosted document the message addresses; ``None`` means the
    #: server's default document (and keeps the v1 wire encoding intact).
    document_id: Optional[str] = None

    #: Optional idempotency key (see the module docstring); ``None`` keeps
    #: the historical wire encoding byte-identical.
    request_id: Optional[str] = None

    def payload(self) -> Dict[str, Any]:
        """The JSON-serialisable body of the message."""
        return {}

    def for_document(self, document_id: Optional[str]) -> "Message":
        """Stamp the message with a document id (returns self for chaining)."""
        self.document_id = document_id
        return self

    def with_request_id(self, request_id: Optional[str]) -> "Message":
        """Stamp the message with an idempotency key (returns self)."""
        self.request_id = request_id
        return self

    def encode(self) -> bytes:
        """Deterministic wire encoding."""
        body = {"kind": self.kind}
        if self.document_id is not None:
            body["document_id"] = self.document_id
        if self.request_id is not None:
            body["request_id"] = self.request_id
        body.update(self.payload())
        return json.dumps(body, separators=(",", ":"), sort_keys=True).encode("utf-8")

    def byte_size(self) -> int:
        """Number of bytes this message occupies on the wire."""
        return len(self.encode())

    @classmethod
    def from_payload(cls, body: Dict[str, Any]) -> "Message":
        """Rebuild an instance from a decoded payload (inverse of payload())."""
        return cls()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.payload()!r}>"


class HelloRequest(Message):
    """Open a session: the client states every protocol version it speaks."""

    kind = "hello"

    def __init__(self, versions: Sequence[int] = SUPPORTED_PROTOCOL_VERSIONS) -> None:
        self.versions = [int(v) for v in versions]

    def payload(self) -> Dict[str, Any]:
        return {"versions": self.versions}

    @classmethod
    def from_payload(cls, body: Dict[str, Any]) -> "HelloRequest":
        return cls(body["versions"])


class HelloResponse(Message):
    """The server's pick of protocol version, plus free structure data.

    ``root_id``/``node_count`` describe the addressed document when it
    exists, saving the follow-up structure round trip of the v1 protocol.
    """

    kind = "hello-ok"

    def __init__(self, version: int, documents: Sequence[str] = (),
                 root_id: Optional[int] = None,
                 node_count: Optional[int] = None) -> None:
        self.version = int(version)
        self.documents = list(documents)
        self.root_id = root_id
        self.node_count = node_count

    def payload(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {"version": self.version, "documents": self.documents}
        if self.root_id is not None:
            body["root_id"] = self.root_id
            body["node_count"] = self.node_count
        return body

    @classmethod
    def from_payload(cls, body: Dict[str, Any]) -> "HelloResponse":
        return cls(body["version"], body.get("documents", ()),
                   body.get("root_id"), body.get("node_count"))


class StructureRequest(Message):
    """Ask for the public summary of the stored tree (root id, node count)."""

    kind = "structure"


class StructureResponse(Message):
    """Summary of the stored tree."""

    kind = "structure-ok"

    def __init__(self, root_id: int, node_count: int) -> None:
        self.root_id = root_id
        self.node_count = node_count

    def payload(self) -> Dict[str, Any]:
        return {"root_id": self.root_id, "node_count": self.node_count}

    @classmethod
    def from_payload(cls, body: Dict[str, Any]) -> "StructureResponse":
        return cls(body["root_id"], body["node_count"])


class ChildrenRequest(Message):
    """Ask for the child lists of a batch of nodes (public structure)."""

    kind = "children"

    def __init__(self, node_ids: Sequence[int]) -> None:
        self.node_ids = list(node_ids)

    def payload(self) -> Dict[str, Any]:
        return {"node_ids": self.node_ids}

    @classmethod
    def from_payload(cls, body: Dict[str, Any]) -> "ChildrenRequest":
        return cls(body["node_ids"])


class ChildrenResponse(Message):
    """Child lists keyed by node id."""

    kind = "children-ok"

    def __init__(self, children: Dict[int, List[int]]) -> None:
        self.children = {int(k): list(v) for k, v in children.items()}

    def payload(self) -> Dict[str, Any]:
        return {"children": {str(k): v for k, v in self.children.items()}}

    @classmethod
    def from_payload(cls, body: Dict[str, Any]) -> "ChildrenResponse":
        return cls(_int_keyed(body["children"]))


class EvaluateRequest(Message):
    """Ask the server to evaluate its shares of ``node_ids`` at ``point`` (§4.3)."""

    kind = "evaluate"

    def __init__(self, node_ids: Sequence[int], point: int) -> None:
        self.node_ids = list(node_ids)
        self.point = int(point)

    def payload(self) -> Dict[str, Any]:
        return {"node_ids": self.node_ids, "point": self.point}

    @classmethod
    def from_payload(cls, body: Dict[str, Any]) -> "EvaluateRequest":
        return cls(body["node_ids"], body["point"])


class EvaluateResponse(Message):
    """Per-node evaluation values of the server's shares."""

    kind = "evaluate-ok"

    def __init__(self, values: Dict[int, int]) -> None:
        self.values = {int(k): int(v) for k, v in values.items()}

    def payload(self) -> Dict[str, Any]:
        return {"values": {str(k): v for k, v in self.values.items()}}

    @classmethod
    def from_payload(cls, body: Dict[str, Any]) -> "EvaluateResponse":
        return cls(_int_keyed(body["values"]))


class FrontierRequest(Message):
    """One whole descent round in a single exchange (protocol v2).

    Carries, at once:

    * ``node_ids`` × ``points`` — share evaluations for the live frontier
      at every query point;
    * ``include_children`` — child lists of every frontier node (the next
      frontier is built client-side without another exchange);
    * ``prune`` — dead branches discovered in the *previous* round
      (piggybacked instead of a separate notice);
    * ``lookahead`` — how many further tree levels the server evaluates
      *speculatively* (children of the frontier, grandchildren, …) in the
      same exchange; the client consumes the speculated levels locally, so
      ``lookahead=1`` halves the number of descent exchanges at the price
      of evaluating children of nodes that turn out dead;
    * ``fetch_polynomials`` / ``fetch_constants`` — verification fetches;
      the server answers for the listed nodes *and all their children*
      (Theorem-1/2 reconstruction always needs the closure), so the
      client never pays a children round trip before verifying.
    """

    kind = "frontier"

    def __init__(self, node_ids: Sequence[int] = (), points: Sequence[int] = (),
                 prune: Sequence[int] = (), include_children: bool = True,
                 fetch_polynomials: Sequence[int] = (),
                 fetch_constants: Sequence[int] = (),
                 lookahead: int = 0) -> None:
        self.node_ids = list(node_ids)
        self.points = [int(p) for p in points]
        self.prune = list(prune)
        self.include_children = bool(include_children)
        self.fetch_polynomials = list(fetch_polynomials)
        self.fetch_constants = list(fetch_constants)
        self.lookahead = int(lookahead)

    def payload(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {"node_ids": self.node_ids, "points": self.points,
                                "children": self.include_children}
        if self.prune:
            body["prune"] = self.prune
        if self.fetch_polynomials:
            body["fetch_polynomials"] = self.fetch_polynomials
        if self.fetch_constants:
            body["fetch_constants"] = self.fetch_constants
        if self.lookahead:
            body["lookahead"] = self.lookahead
        return body

    @classmethod
    def from_payload(cls, body: Dict[str, Any]) -> "FrontierRequest":
        return cls(body["node_ids"], body["points"], body.get("prune", ()),
                   body.get("children", True), body.get("fetch_polynomials", ()),
                   body.get("fetch_constants", ()), body.get("lookahead", 0))


class FrontierResponse(Message):
    """Everything a descent round needs, in one message (protocol v2)."""

    kind = "frontier-ok"

    def __init__(self, evaluations: Dict[int, Dict[int, int]],
                 children: Dict[int, List[int]],
                 polynomials: Optional[Dict[int, List[int]]] = None,
                 constants: Optional[Dict[int, int]] = None) -> None:
        #: ``point -> node_id -> server share evaluation``.
        self.evaluations = {int(point): {int(k): int(v) for k, v in values.items()}
                            for point, values in evaluations.items()}
        self.children = {int(k): list(v) for k, v in children.items()}
        self.polynomials = {int(k): [int(c) for c in v]
                            for k, v in (polynomials or {}).items()}
        self.constants = {int(k): int(v) for k, v in (constants or {}).items()}

    def payload(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {
            "evaluations": {str(point): {str(k): v for k, v in values.items()}
                            for point, values in self.evaluations.items()},
            "children": {str(k): v for k, v in self.children.items()},
        }
        if self.polynomials:
            body["polynomials"] = {str(k): v for k, v in self.polynomials.items()}
        if self.constants:
            body["constants"] = {str(k): v for k, v in self.constants.items()}
        return body

    @classmethod
    def from_payload(cls, body: Dict[str, Any]) -> "FrontierResponse":
        return cls({int(point): _int_keyed(values)
                    for point, values in body["evaluations"].items()},
                   _int_keyed(body["children"]),
                   _int_keyed(body.get("polynomials", {})),
                   _int_keyed(body.get("constants", {})))


class FetchPolynomialsRequest(Message):
    """Ask for the full share polynomials of a batch of nodes (verification)."""

    kind = "fetch-polynomials"

    def __init__(self, node_ids: Sequence[int]) -> None:
        self.node_ids = list(node_ids)

    def payload(self) -> Dict[str, Any]:
        return {"node_ids": self.node_ids}

    @classmethod
    def from_payload(cls, body: Dict[str, Any]) -> "FetchPolynomialsRequest":
        return cls(body["node_ids"])


class FetchPolynomialsResponse(Message):
    """Coefficient vectors of the requested share polynomials."""

    kind = "fetch-polynomials-ok"

    def __init__(self, coefficients: Dict[int, List[int]]) -> None:
        self.coefficients = {int(k): [int(c) for c in v]
                             for k, v in coefficients.items()}

    def payload(self) -> Dict[str, Any]:
        return {"coefficients": {str(k): v for k, v in self.coefficients.items()}}

    @classmethod
    def from_payload(cls, body: Dict[str, Any]) -> "FetchPolynomialsResponse":
        return cls(_int_keyed(body["coefficients"]))


class FetchConstantsRequest(Message):
    """Ask only for constant coefficients (trusted-server mode, §4.3)."""

    kind = "fetch-constants"

    def __init__(self, node_ids: Sequence[int]) -> None:
        self.node_ids = list(node_ids)

    def payload(self) -> Dict[str, Any]:
        return {"node_ids": self.node_ids}

    @classmethod
    def from_payload(cls, body: Dict[str, Any]) -> "FetchConstantsRequest":
        return cls(body["node_ids"])


class FetchConstantsResponse(Message):
    """Constant coefficients keyed by node id."""

    kind = "fetch-constants-ok"

    def __init__(self, constants: Dict[int, int]) -> None:
        self.constants = {int(k): int(v) for k, v in constants.items()}

    def payload(self) -> Dict[str, Any]:
        return {"constants": {str(k): v for k, v in self.constants.items()}}

    @classmethod
    def from_payload(cls, body: Dict[str, Any]) -> "FetchConstantsResponse":
        return cls(_int_keyed(body["constants"]))


class PruneNotice(Message):
    """Tell the server that these subtrees are dead branches for this query."""

    kind = "prune"

    def __init__(self, node_ids: Sequence[int]) -> None:
        self.node_ids = list(node_ids)

    def payload(self) -> Dict[str, Any]:
        return {"node_ids": self.node_ids}

    @classmethod
    def from_payload(cls, body: Dict[str, Any]) -> "PruneNotice":
        return cls(body["node_ids"])


#: Wire op tags an :class:`UpdateRequest` batch may carry, with arity.
_UPDATE_OP_SHAPES = {"add": 4, "replace": 3, "remove": 3}


def _check_update_ops(ops: Sequence[Sequence[Any]]) -> List[List[Any]]:
    checked: List[List[Any]] = []
    for op in ops:
        op = list(op)
        if not op or op[0] not in _UPDATE_OP_SHAPES:
            raise ValueError(f"unknown update op {op[:1]!r}")
        if len(op) != _UPDATE_OP_SHAPES[op[0]]:
            raise ValueError(f"malformed {op[0]!r} update op: {op!r}")
        if op[0] == "add":
            checked.append(["add", int(op[1]), int(op[2]),
                            [int(c) for c in op[3]]])
        elif op[0] == "replace":
            checked.append(["replace", int(op[1]), [int(c) for c in op[2]]])
        else:
            checked.append(["remove", int(op[1]), [int(n) for n in op[2]]])
    return checked


class UpdateRequest(Message):
    """Apply one mutation batch to the hosted document (v3).

    ``ops`` is the wire form of the batch a
    :class:`~repro.net.store.StoreTransaction` would record, in order:

    * ``["add", node_id, parent_id, coeffs]`` — attach a new node holding
      the given server-share coefficients,
    * ``["replace", node_id, coeffs]`` — overwrite an existing share,
    * ``["remove", node_id, expected_removed_ids]`` — drop a whole
      subtree; the expected id list pins the subtree shape the client
      computed against.

    ``base_versions`` maps every node id whose current state the batch was
    computed from to the version the client last saw (0 for a node it has
    never seen change).  The server applies the batch only if every base
    version still matches; otherwise it answers
    :class:`ConflictResponse` and nothing is applied.  ``operation`` is a
    free-form label (e.g. ``"insert_subtree"``) used for observability
    only.
    """

    kind = "update"

    def __init__(self, operation: str, ops: Sequence[Sequence[Any]],
                 base_versions: Dict[int, int]) -> None:
        self.operation = str(operation)
        self.ops = _check_update_ops(ops)
        self.base_versions = {int(k): int(v) for k, v in base_versions.items()}

    def payload(self) -> Dict[str, Any]:
        return {"operation": self.operation, "ops": self.ops,
                "base": {str(k): v for k, v in self.base_versions.items()}}

    @classmethod
    def from_payload(cls, body: Dict[str, Any]) -> "UpdateRequest":
        return cls(body["operation"], body["ops"], _int_keyed(body["base"]))


class UpdateResponse(Message):
    """The batch committed; carries the new per-node versions (v3).

    ``versions`` holds the post-commit version of every node the batch
    added or replaced (removed nodes simply disappear from the server's
    version vector).  ``applied`` echoes the op count, mostly so the
    client can sanity-check that the response answers the request it sent.
    """

    kind = "update-ok"

    def __init__(self, versions: Dict[int, int], applied: int) -> None:
        self.versions = {int(k): int(v) for k, v in versions.items()}
        self.applied = int(applied)

    def payload(self) -> Dict[str, Any]:
        return {"versions": {str(k): v for k, v in self.versions.items()},
                "applied": self.applied}

    @classmethod
    def from_payload(cls, body: Dict[str, Any]) -> "UpdateResponse":
        return cls(_int_keyed(body["versions"]), body["applied"])


class ConflictResponse(Message):
    """The batch was rejected: its base versions are stale (v3).

    ``conflicts`` names every node id whose base version no longer
    matches (sorted, so the encoding is deterministic).  ``versions``
    carries the server's *current* version for each conflicting node that
    still exists — a conflicting id absent from ``versions`` was removed
    by another writer.  Nothing was applied; the client refetches the
    conflicting subtrees, recomputes its batch and resends.
    """

    kind = "conflict"

    def __init__(self, conflicts: Sequence[int],
                 versions: Dict[int, int]) -> None:
        self.conflicts = sorted(int(n) for n in conflicts)
        self.versions = {int(k): int(v) for k, v in versions.items()}

    def payload(self) -> Dict[str, Any]:
        return {"conflicts": self.conflicts,
                "versions": {str(k): v for k, v in self.versions.items()}}

    @classmethod
    def from_payload(cls, body: Dict[str, Any]) -> "ConflictResponse":
        return cls(body["conflicts"], _int_keyed(body["versions"]))


class Acknowledgement(Message):
    """Empty positive reply."""

    kind = "ack"


class ErrorResponse(Message):
    """The server's in-band report that a request failed.

    The in-process channel simply lets a handler exception propagate to the
    caller, but over a real socket the failure has to travel back as a
    message so the session (and its pipelined successors) survive one bad
    request.  Clients re-raise the carried text as a
    :class:`~repro.errors.ProtocolError`.
    """

    kind = "error"

    def __init__(self, error: str, retryable: bool = False) -> None:
        self.error = str(error)
        #: True for transient server-side failures (e.g. a store backend
        #: hiccup) that a resilient client should retry on the same
        #: session; absent from the encoding when False (v2-compatible).
        self.retryable = bool(retryable)

    def payload(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {"error": self.error}
        if self.retryable:
            body["retryable"] = True
        return body

    @classmethod
    def from_payload(cls, body: Dict[str, Any]) -> "ErrorResponse":
        return cls(body["error"], body.get("retryable", False))


class BusyResponse(Message):
    """The server shed this request under load; retry after the hint.

    Sent instead of queueing unboundedly (the asyncio coalescer's bounded
    queue) or instead of admitting a request over a tenant's quota
    (:meth:`~repro.net.engine.DocumentRegistry.admit`).  The session stays
    open — degradation is graceful, not a connection reset.  Clients
    surface it as :class:`~repro.errors.ServerBusyError`; resilient
    clients back off by ``retry_after_s`` and retry.
    """

    kind = "busy"

    def __init__(self, retry_after_s: float = 0.0) -> None:
        self.retry_after_s = float(retry_after_s)

    def payload(self) -> Dict[str, Any]:
        return {"retry_after_s": self.retry_after_s}

    @classmethod
    def from_payload(cls, body: Dict[str, Any]) -> "BusyResponse":
        return cls(body.get("retry_after_s", 0.0))


class StatsRequest(Message):
    """Ask the server for its operational metrics (v3, hello-exempt).

    Like the hello exchange, a stats probe needs no prior negotiation —
    operators poke running servers with standalone tools.  It is also
    admission-exempt: a tenant over quota can still observe that it is
    being shed.  The response is tenant-filtered (see
    :class:`StatsResponse`).
    """

    kind = "stats"


class StatsResponse(Message):
    """Tenant-filtered metrics snapshot.

    ``metrics`` is the JSON form of a
    :meth:`~repro.obs.MetricsRegistry.snapshot`, filtered by the serving
    engine so a requester without a ``document_id`` sees only
    server-wide, label-free aggregates, and a requester addressing a
    document sees only instruments labelled with *that* document —
    never another tenant's identifiers or traffic figures.
    """

    kind = "stats-ok"

    def __init__(self, metrics: Dict[str, Any]) -> None:
        self.metrics = dict(metrics)

    def payload(self) -> Dict[str, Any]:
        return {"metrics": self.metrics}

    @classmethod
    def from_payload(cls, body: Dict[str, Any]) -> "StatsResponse":
        return cls(body["metrics"])


class HealthRequest(Message):
    """Liveness/readiness probe (v3, hello- and admission-exempt)."""

    kind = "health"


class HealthResponse(Message):
    """The server's health verdict plus coarse, tenant-free vitals."""

    kind = "health-ok"

    def __init__(self, status: str = "ok",
                 detail: Optional[Dict[str, Any]] = None) -> None:
        self.status = str(status)
        self.detail = dict(detail or {})

    def payload(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {"status": self.status}
        if self.detail:
            body["detail"] = self.detail
        return body

    @classmethod
    def from_payload(cls, body: Dict[str, Any]) -> "HealthResponse":
        return cls(body["status"], body.get("detail"))


class BlobRequest(Message):
    """Download-everything baseline: ask for the whole encrypted blob."""

    kind = "blob"


class BlobResponse(Message):
    """The whole encrypted blob (hex-encoded on the wire)."""

    kind = "blob-ok"

    def __init__(self, blob: bytes) -> None:
        self.blob = bytes(blob)

    def payload(self) -> Dict[str, Any]:
        return {"blob": self.blob.hex()}

    @classmethod
    def from_payload(cls, body: Dict[str, Any]) -> "BlobResponse":
        return cls(bytes.fromhex(body["blob"]))


_MESSAGE_TYPES = {
    cls.kind: cls for cls in (
        HelloRequest, HelloResponse, StructureRequest, StructureResponse,
        ChildrenRequest, ChildrenResponse, EvaluateRequest, EvaluateResponse,
        FrontierRequest, FrontierResponse, FetchPolynomialsRequest,
        FetchPolynomialsResponse, FetchConstantsRequest, FetchConstantsResponse,
        PruneNotice, UpdateRequest, UpdateResponse, ConflictResponse,
        Acknowledgement, ErrorResponse, BusyResponse,
        StatsRequest, StatsResponse, HealthRequest, HealthResponse,
        BlobRequest, BlobResponse,
    )
}


def decode_message(data: bytes) -> Message:
    """Parse a wire encoding back into a message object."""
    try:
        body = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed message: {exc}") from exc
    kind = body.pop("kind", None)
    cls = _MESSAGE_TYPES.get(kind)
    if cls is None:
        raise ProtocolError(f"unknown message kind {kind!r}")
    document_id = body.pop("document_id", None)
    request_id = body.pop("request_id", None)
    try:
        message = cls.from_payload(body)
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed {kind!r} message: {exc}") from exc
    if document_id is not None:
        message.document_id = str(document_id)
    if request_id is not None:
        message.request_id = str(request_id)
    return message
