"""Protocol messages exchanged between the thin client and the server.

The paper motivates its design with thin clients and low-bandwidth links,
so the reproduction measures communication explicitly.  Every request and
response is a small message object with a deterministic serialisation
(:meth:`Message.encode`) whose byte length is what the instrumented
channel (:mod:`repro.net.channel`) accounts for.

The wire format is a compact JSON document; it is *not* meant to be an
optimised binary protocol, only a consistent yardstick so that the
bandwidth comparisons between modes and baselines are meaningful.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from ..errors import ProtocolError

__all__ = [
    "Message",
    "StructureRequest",
    "StructureResponse",
    "ChildrenRequest",
    "ChildrenResponse",
    "EvaluateRequest",
    "EvaluateResponse",
    "FetchPolynomialsRequest",
    "FetchPolynomialsResponse",
    "FetchConstantsRequest",
    "FetchConstantsResponse",
    "PruneNotice",
    "Acknowledgement",
    "BlobRequest",
    "BlobResponse",
    "decode_message",
]


class Message:
    """Base class of all protocol messages."""

    #: Short type tag used on the wire; subclasses override it.
    kind = "message"

    def payload(self) -> Dict[str, Any]:
        """The JSON-serialisable body of the message."""
        return {}

    def encode(self) -> bytes:
        """Deterministic wire encoding."""
        body = {"kind": self.kind}
        body.update(self.payload())
        return json.dumps(body, separators=(",", ":"), sort_keys=True).encode("utf-8")

    def byte_size(self) -> int:
        """Number of bytes this message occupies on the wire."""
        return len(self.encode())

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.payload()!r}>"


class StructureRequest(Message):
    """Ask for the public summary of the stored tree (root id, node count)."""

    kind = "structure"


class StructureResponse(Message):
    """Summary of the stored tree."""

    kind = "structure-ok"

    def __init__(self, root_id: int, node_count: int) -> None:
        self.root_id = root_id
        self.node_count = node_count

    def payload(self) -> Dict[str, Any]:
        return {"root_id": self.root_id, "node_count": self.node_count}


class ChildrenRequest(Message):
    """Ask for the child lists of a batch of nodes (public structure)."""

    kind = "children"

    def __init__(self, node_ids: Sequence[int]) -> None:
        self.node_ids = list(node_ids)

    def payload(self) -> Dict[str, Any]:
        return {"node_ids": self.node_ids}


class ChildrenResponse(Message):
    """Child lists keyed by node id."""

    kind = "children-ok"

    def __init__(self, children: Dict[int, List[int]]) -> None:
        self.children = {int(k): list(v) for k, v in children.items()}

    def payload(self) -> Dict[str, Any]:
        return {"children": {str(k): v for k, v in self.children.items()}}


class EvaluateRequest(Message):
    """Ask the server to evaluate its shares of ``node_ids`` at ``point`` (§4.3)."""

    kind = "evaluate"

    def __init__(self, node_ids: Sequence[int], point: int) -> None:
        self.node_ids = list(node_ids)
        self.point = int(point)

    def payload(self) -> Dict[str, Any]:
        return {"node_ids": self.node_ids, "point": self.point}


class EvaluateResponse(Message):
    """Per-node evaluation values of the server's shares."""

    kind = "evaluate-ok"

    def __init__(self, values: Dict[int, int]) -> None:
        self.values = {int(k): int(v) for k, v in values.items()}

    def payload(self) -> Dict[str, Any]:
        return {"values": {str(k): v for k, v in self.values.items()}}


class FetchPolynomialsRequest(Message):
    """Ask for the full share polynomials of a batch of nodes (verification)."""

    kind = "fetch-polynomials"

    def __init__(self, node_ids: Sequence[int]) -> None:
        self.node_ids = list(node_ids)

    def payload(self) -> Dict[str, Any]:
        return {"node_ids": self.node_ids}


class FetchPolynomialsResponse(Message):
    """Coefficient vectors of the requested share polynomials."""

    kind = "fetch-polynomials-ok"

    def __init__(self, coefficients: Dict[int, List[int]]) -> None:
        self.coefficients = {int(k): [int(c) for c in v]
                             for k, v in coefficients.items()}

    def payload(self) -> Dict[str, Any]:
        return {"coefficients": {str(k): v for k, v in self.coefficients.items()}}


class FetchConstantsRequest(Message):
    """Ask only for constant coefficients (trusted-server mode, §4.3)."""

    kind = "fetch-constants"

    def __init__(self, node_ids: Sequence[int]) -> None:
        self.node_ids = list(node_ids)

    def payload(self) -> Dict[str, Any]:
        return {"node_ids": self.node_ids}


class FetchConstantsResponse(Message):
    """Constant coefficients keyed by node id."""

    kind = "fetch-constants-ok"

    def __init__(self, constants: Dict[int, int]) -> None:
        self.constants = {int(k): int(v) for k, v in constants.items()}

    def payload(self) -> Dict[str, Any]:
        return {"constants": {str(k): v for k, v in self.constants.items()}}


class PruneNotice(Message):
    """Tell the server that these subtrees are dead branches for this query."""

    kind = "prune"

    def __init__(self, node_ids: Sequence[int]) -> None:
        self.node_ids = list(node_ids)

    def payload(self) -> Dict[str, Any]:
        return {"node_ids": self.node_ids}


class Acknowledgement(Message):
    """Empty positive reply."""

    kind = "ack"


class BlobRequest(Message):
    """Download-everything baseline: ask for the whole encrypted blob."""

    kind = "blob"


class BlobResponse(Message):
    """The whole encrypted blob (hex-encoded on the wire)."""

    kind = "blob-ok"

    def __init__(self, blob: bytes) -> None:
        self.blob = bytes(blob)

    def payload(self) -> Dict[str, Any]:
        return {"blob": self.blob.hex()}


_MESSAGE_TYPES = {
    cls.kind: cls for cls in (
        StructureRequest, StructureResponse, ChildrenRequest, ChildrenResponse,
        EvaluateRequest, EvaluateResponse, FetchPolynomialsRequest,
        FetchPolynomialsResponse, FetchConstantsRequest, FetchConstantsResponse,
        PruneNotice, Acknowledgement, BlobRequest, BlobResponse,
    )
}


def decode_message(data: bytes) -> Message:
    """Parse a wire encoding back into a message object."""
    try:
        body = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed message: {exc}") from exc
    kind = body.pop("kind", None)
    cls = _MESSAGE_TYPES.get(kind)
    if cls is None:
        raise ProtocolError(f"unknown message kind {kind!r}")
    if cls is StructureResponse:
        return StructureResponse(body["root_id"], body["node_count"])
    if cls is ChildrenRequest:
        return ChildrenRequest(body["node_ids"])
    if cls is ChildrenResponse:
        return ChildrenResponse({int(k): v for k, v in body["children"].items()})
    if cls is EvaluateRequest:
        return EvaluateRequest(body["node_ids"], body["point"])
    if cls is EvaluateResponse:
        return EvaluateResponse({int(k): v for k, v in body["values"].items()})
    if cls is FetchPolynomialsRequest:
        return FetchPolynomialsRequest(body["node_ids"])
    if cls is FetchPolynomialsResponse:
        return FetchPolynomialsResponse(
            {int(k): v for k, v in body["coefficients"].items()})
    if cls is FetchConstantsRequest:
        return FetchConstantsRequest(body["node_ids"])
    if cls is FetchConstantsResponse:
        return FetchConstantsResponse({int(k): v for k, v in body["constants"].items()})
    if cls is PruneNotice:
        return PruneNotice(body["node_ids"])
    if cls is BlobResponse:
        return BlobResponse(bytes.fromhex(body["blob"]))
    return cls()
