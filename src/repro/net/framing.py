"""Length-prefixed framing for the socket transports.

The in-process :class:`~repro.net.channel.InstrumentedChannel` hands whole
message encodings to the handler, so it never needed delimiting.  Real
sockets deliver a byte stream, so the socket transports (the asyncio
server of :mod:`repro.net.aio` and the threaded baseline) wrap every
message encoding in a frame::

    +----------------+----------------------+
    | length (4B BE) | payload (length B)   |
    +----------------+----------------------+

``length`` is an unsigned 32-bit big-endian integer counting the payload
bytes only.  The payload is exactly one v1/v2 message encoding
(:meth:`repro.net.messages.Message.encode`) — framing adds delimiting, not
a new message format, so a captured payload decodes with
:func:`repro.net.messages.decode_message` unchanged.

Frames above ``max_frame_bytes`` are rejected *from the length prefix
alone*, before any payload is buffered, so a malicious or broken peer
cannot make the receiver allocate unbounded memory.  Zero-length frames
are rejected too: no message encodes to zero bytes, so an empty frame is
always a framing bug.
"""

from __future__ import annotations

import struct
from typing import List, Optional

from ..errors import ProtocolError

__all__ = [
    "FRAME_HEADER_BYTES",
    "MAX_FRAME_BYTES",
    "encode_frame",
    "decode_frame_length",
    "FrameAssembler",
]

#: Size of the length prefix in bytes.
FRAME_HEADER_BYTES = 4

#: Default ceiling on a single frame's payload (16 MiB).  Large enough for
#: any frontier response the benchmarks produce, small enough that a bad
#: length prefix cannot trigger a giant allocation.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_HEADER = struct.Struct(">I")


def encode_frame(payload: bytes,
                 max_frame_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Wrap one message encoding in a length-prefixed frame."""
    if not payload:
        raise ProtocolError("refusing to send an empty frame")
    if len(payload) > max_frame_bytes:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{max_frame_bytes}-byte frame limit")
    return _HEADER.pack(len(payload)) + payload


def decode_frame_length(header: bytes,
                        max_frame_bytes: int = MAX_FRAME_BYTES) -> int:
    """Validate a frame header and return the payload length it announces."""
    if len(header) != FRAME_HEADER_BYTES:
        raise ProtocolError(
            f"frame header must be {FRAME_HEADER_BYTES} bytes, "
            f"got {len(header)}")
    (length,) = _HEADER.unpack(header)
    if length == 0:
        raise ProtocolError("received an empty frame")
    if length > max_frame_bytes:
        raise ProtocolError(
            f"peer announced a {length}-byte frame, above the "
            f"{max_frame_bytes}-byte frame limit")
    return length


class FrameAssembler:
    """Incremental frame decoder for a byte stream.

    Feed arbitrary chunks with :meth:`feed`; completed frame payloads come
    back in arrival order.  The assembler validates each length prefix as
    soon as the four header bytes are available, so an oversized
    announcement is rejected before its payload is ever buffered.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()
        self._expected: Optional[int] = None
        self._poison: Optional[ProtocolError] = None

    @property
    def poisoned(self) -> bool:
        """True once the stream has been rejected; no further bytes decode.

        After an invalid length prefix there is no way to find the next
        frame boundary in the byte stream, so instead of silently
        misparsing whatever follows, the assembler stays poisoned: every
        later :meth:`feed` re-raises the original rejection.  The owner
        of the stream must drop the connection (which every transport
        does).
        """
        return self._poison is not None

    def feed(self, data: bytes) -> List[bytes]:
        """Consume a chunk of stream bytes; return any completed payloads.

        Raises :class:`~repro.errors.ProtocolError` — naming the
        offending announced length and the limit — on an invalid length
        prefix, and poisons the assembler (see :attr:`poisoned`).  Short
        reads are not errors: a frame split across arbitrarily many feeds
        assembles normally once its bytes are complete.
        """
        if self._poison is not None:
            raise self._poison
        self._buffer.extend(data)
        frames: List[bytes] = []
        while True:
            if self._expected is None:
                if len(self._buffer) < FRAME_HEADER_BYTES:
                    break
                header = bytes(self._buffer[:FRAME_HEADER_BYTES])
                try:
                    expected = decode_frame_length(header,
                                                   self.max_frame_bytes)
                except ProtocolError as exc:
                    self._poison = exc
                    raise
                del self._buffer[:FRAME_HEADER_BYTES]
                self._expected = expected
            if len(self._buffer) < self._expected:
                break
            frames.append(bytes(self._buffer[:self._expected]))
            del self._buffer[:self._expected]
            self._expected = None
        return frames

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered towards the next (incomplete) frame."""
        return len(self._buffer)

    def at_boundary(self) -> bool:
        """True when the stream may end cleanly here (no partial frame)."""
        return self._expected is None and not self._buffer
