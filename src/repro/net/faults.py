"""Seeded, deterministic fault injection for the serving stack.

Chaos testing is only useful when a failing run can be replayed exactly,
so every fault decision here is a pure function of a :class:`FaultPlan`'s
seed and call counters — never of wall-clock time or process state.  The
same plan against the same request sequence fires the same faults, which
is what lets `tests/test_chaos_serving.py` assert *bit-identical* lookup
results under failure and `bench --faults` sweep reproducible fault rates.

The plan is consulted at named **fault points**:

* channel points — ``"<message kind>:send"`` just before a request frame
  leaves the client and ``"<message kind>:recv"`` just after its response
  arrives (e.g. ``"hello:send"``, ``"frontier:recv"``);
* store points — ``"store:<operation>"`` around share-store calls on the
  server (e.g. ``"store:evaluate_many"``).

Rules match points by exact name or ``fnmatch`` pattern (``"*:send"``,
``"store:*"``) and fire either on explicit call numbers (the Nth call to
that point, 1-based) or at a seeded rate.  Three wrappers consume plans:

* :class:`FaultyChannel` — wraps any client channel and injects transport
  faults (connection reset before/after the exchange, truncated response,
  injected busy, delay) without caring whether the underlying transport
  is the in-process :class:`~repro.net.channel.InstrumentedChannel` or a
  real :class:`~repro.net.channel.SocketChannel`.  "Reset after send" is
  modelled faithfully: the underlying exchange *completes* (the server
  processed the request and recorded its observations) and only the
  response is lost — the ambiguous failure that idempotency keys exist
  for.
* :class:`FaultyStore` — wraps a :class:`~repro.net.store.ShareStore` and
  fails chosen operations with
  :class:`~repro.errors.TransientServerError`, which the serving engine
  reports in-band as a retryable error.
* :class:`flaky_handler` — wraps a ``Message -> Message`` handler for
  in-process servers, shedding chosen requests with a
  :class:`~repro.net.messages.BusyResponse`.

The harness is shared by the chaos tests, ``bench --faults`` and the CLI
so all three observe identical failure semantics.
"""

from __future__ import annotations

import random
import threading
from fnmatch import fnmatchcase
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..algebra.poly import Polynomial
from ..errors import ServerBusyError, TransientServerError, TransportError
from .messages import BusyResponse, Message
from .store import ShareStore

__all__ = [
    "FAULT_KINDS",
    "FaultRule",
    "FaultPlan",
    "FaultyChannel",
    "FaultyStore",
    "flaky_handler",
]

#: Every fault kind a rule may name.
FAULT_KINDS = (
    "reset-before-send",   # connection dies before the request is sent
    "reset-after-send",    # request processed, response lost (ambiguous)
    "truncate-response",   # response frame cut short mid-read
    "busy",                # injected in-band BusyResponse / ServerBusyError
    "delay",               # request delayed by ``delay_s`` then served
    "store-error",         # store operation fails transiently
)


class FaultRule:
    """One deterministic fault source: where, what, and when it fires.

    ``point`` is an exact fault-point name or an ``fnmatch`` pattern.
    ``calls`` lists explicit 1-based call numbers of that point at which
    the rule fires ("fail the 3rd frontier exchange"); ``rate`` fires the
    rule on a seeded coin flip per call.  ``max_fires`` caps the total
    number of firings (the default for ``calls`` rules is ``len(calls)``,
    for rate rules unlimited) so a plan can model "the network blips once"
    without the retry then looping forever.
    """

    def __init__(self, point: str, kind: str, rate: float = 0.0,
                 calls: Sequence[int] = (), max_fires: Optional[int] = None,
                 delay_s: float = 0.0, retry_after_s: float = 0.0) -> None:
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; "
                             f"expected one of {FAULT_KINDS}")
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {rate}")
        self.point = str(point)
        self.kind = kind
        self.rate = float(rate)
        self.calls = frozenset(int(c) for c in calls)
        if any(c < 1 for c in self.calls):
            raise ValueError("explicit call numbers are 1-based")
        if max_fires is None and self.calls and not self.rate:
            max_fires = len(self.calls)
        self.max_fires = max_fires
        self.delay_s = float(delay_s)
        self.retry_after_s = float(retry_after_s)
        self.fired = 0

    def matches(self, point: str) -> bool:
        """Whether this rule watches the given fault point."""
        return self.point == point or fnmatchcase(point, self.point)

    def __repr__(self) -> str:
        where = f"calls={sorted(self.calls)}" if self.calls else f"rate={self.rate}"
        return f"FaultRule({self.point!r}, {self.kind!r}, {where}, fired={self.fired})"


class FaultPlan:
    """A seeded set of fault rules with per-point call counters.

    The decision procedure is deterministic: call counters advance once
    per :meth:`decide` and the rate coin flips come from one
    ``random.Random(seed)`` stream, so replaying the same request sequence
    replays the same faults.  The plan is thread-safe (server-side stores
    are shared across sessions) and keeps a ``fires`` log of
    ``(point, call_number, kind)`` so tests can assert that the fault they
    scheduled actually happened.
    """

    def __init__(self, rules: Sequence[FaultRule] = (), seed: int = 0) -> None:
        self.rules = list(rules)
        self.seed = int(seed)
        self._rng = random.Random(self.seed)
        self._counters: Dict[str, int] = {}
        self.fires: List[Tuple[str, int, str]] = []
        self._lock = threading.Lock()

    @classmethod
    def single(cls, point: str, kind: str, call: int = 1,
               seed: int = 0, **kwargs) -> "FaultPlan":
        """A plan with exactly one scheduled fault (the common test shape)."""
        return cls([FaultRule(point, kind, calls=[call], **kwargs)], seed=seed)

    @classmethod
    def at_rate(cls, rate: float, kinds: Sequence[str] = ("reset-after-send",),
                point: str = "*", seed: int = 0) -> "FaultPlan":
        """A plan firing each listed kind at ``rate`` on every matching point."""
        return cls([FaultRule(point, kind, rate=rate) for kind in kinds],
                   seed=seed)

    def decide(self, point: str) -> Optional[FaultRule]:
        """Advance the counter for ``point`` and return the firing rule, if any.

        Explicit call schedules win over rate rules; at most one rule
        fires per call so a fault is never double-injected.
        """
        with self._lock:
            call = self._counters.get(point, 0) + 1
            self._counters[point] = call
            chosen: Optional[FaultRule] = None
            for rule in self.rules:
                if not rule.matches(point):
                    continue
                if rule.max_fires is not None and rule.fired >= rule.max_fires:
                    continue
                if call in rule.calls:
                    chosen = rule
                    break
                if rule.rate and self._rng.random() < rule.rate and chosen is None:
                    chosen = rule
                    # keep scanning: an explicit schedule later in the
                    # list still takes precedence over this rate hit.
            if chosen is not None:
                chosen.fired += 1
                self.fires.append((point, call, chosen.kind))
            return chosen

    def calls_seen(self, point: str) -> int:
        """How many times a fault point has been consulted."""
        with self._lock:
            return self._counters.get(point, 0)

    def reset(self) -> None:
        """Rewind counters, firing log and the seeded stream (exact replay)."""
        with self._lock:
            self._rng = random.Random(self.seed)
            self._counters.clear()
            self.fires.clear()
            for rule in self.rules:
                rule.fired = 0

    def __repr__(self) -> str:
        return (f"FaultPlan(seed={self.seed}, rules={len(self.rules)}, "
                f"fires={len(self.fires)})")


class FaultyChannel:
    """A client channel wrapper that injects transport faults from a plan.

    Exposes the same surface the :class:`~repro.net.client.RemoteServerAdapter`
    needs (``request``, ``stats``, ``transcript``, ``close``), so it can
    stand in for either channel flavour.  Fault points are
    ``"<kind>:send"`` (consulted before the exchange) and
    ``"<kind>:recv"`` (after it).  ``sleep`` is injectable so tests can
    run delay faults without real waiting.
    """

    def __init__(self, channel, plan: FaultPlan,
                 sleep: Optional[Callable[[float], None]] = None) -> None:
        self.channel = channel
        self.plan = plan
        if sleep is None:
            import time
            sleep = time.sleep
        self._sleep = sleep

    @property
    def stats(self):
        return self.channel.stats

    @property
    def transcript(self):
        return self.channel.transcript

    def request(self, message: Message) -> Message:
        rule = self.plan.decide(f"{message.kind}:send")
        if rule is not None:
            if rule.kind == "reset-before-send":
                # The server never saw the request: replaying it cannot
                # double-count anything, but the client can't know that.
                raise TransportError(
                    f"injected connection reset before sending "
                    f"{message.kind!r} (call "
                    f"{self.plan.calls_seen(f'{message.kind}:send')})")
            if rule.kind == "busy":
                raise ServerBusyError(
                    f"injected busy shedding of {message.kind!r}",
                    retry_after_s=rule.retry_after_s)
            if rule.kind == "delay":
                self._sleep(rule.delay_s)
        response = self.channel.request(message)
        rule = self.plan.decide(f"{message.kind}:recv")
        if rule is not None:
            if rule.kind in ("reset-after-send", "truncate-response"):
                # The exchange completed server-side; only the reply is
                # lost.  This is the ambiguous failure idempotency keys
                # exist for: a replay must be answered from the server's
                # idempotency cache, not re-processed.
                detail = ("connection reset after send"
                          if rule.kind == "reset-after-send"
                          else "response frame truncated")
                raise TransportError(
                    f"injected {detail} for {message.kind!r} (call "
                    f"{self.plan.calls_seen(f'{message.kind}:recv')})")
            if rule.kind == "busy":
                raise ServerBusyError(
                    f"injected busy shedding of {message.kind!r}",
                    retry_after_s=rule.retry_after_s)
            if rule.kind == "delay":
                self._sleep(rule.delay_s)
        return response

    def simulated_seconds(self) -> float:
        simulated = getattr(self.channel, "simulated_seconds", None)
        return simulated() if simulated is not None else 0.0

    def close(self) -> None:
        close = getattr(self.channel, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "FaultyChannel":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class FaultyStore(ShareStore):
    """A share store that fails chosen operations per a fault plan.

    Read and write operations consult ``"store:<operation>"`` before
    delegating; a firing rule raises
    :class:`~repro.errors.TransientServerError` (kind ``store-error``) or
    delays the call (kind ``delay``).  The serving engine converts the
    transient error into an in-band retryable
    :class:`~repro.net.messages.ErrorResponse`, so the session survives
    and a resilient client retries.
    """

    def __init__(self, store: ShareStore, plan: FaultPlan,
                 sleep: Optional[Callable[[float], None]] = None) -> None:
        self.store = store
        self.plan = plan
        self.ring = store.ring
        if sleep is None:
            import time
            sleep = time.sleep
        self._sleep = sleep

    def _maybe_fail(self, operation: str) -> None:
        rule = self.plan.decide(f"store:{operation}")
        if rule is None:
            return
        if rule.kind == "delay":
            self._sleep(rule.delay_s)
            return
        raise TransientServerError(
            f"injected store failure in {operation!r} (call "
            f"{self.plan.calls_seen(f'store:{operation}')})")

    # -- read side -------------------------------------------------------------
    @property
    def root_id(self) -> Optional[int]:
        return self.store.root_id

    def node_count(self) -> int:
        return self.store.node_count()

    def node_ids(self) -> List[int]:
        return self.store.node_ids()

    def max_node_id(self) -> Optional[int]:
        return self.store.max_node_id()

    def child_ids(self, node_id: int) -> List[int]:
        self._maybe_fail("child_ids")
        return self.store.child_ids(node_id)

    def parent_id(self, node_id: int) -> Optional[int]:
        return self.store.parent_id(node_id)

    def share_of(self, node_id: int) -> Polynomial:
        self._maybe_fail("share_of")
        return self.store.share_of(node_id)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self.store

    def evaluate(self, node_id: int, point: int) -> int:
        self._maybe_fail("evaluate")
        return self.store.evaluate(node_id, point)

    def evaluate_many(self, node_ids: Sequence[int], point: int) -> Dict[int, int]:
        self._maybe_fail("evaluate_many")
        return self.store.evaluate_many(node_ids, point)

    def storage_bits(self) -> int:
        return self.store.storage_bits()

    # -- write side ------------------------------------------------------------
    def add_node(self, node_id: int, parent_id: Optional[int],
                 share: Polynomial) -> None:
        self._maybe_fail("add_node")
        self.store.add_node(node_id, parent_id, share)

    def replace_share(self, node_id: int, share: Polynomial) -> None:
        self._maybe_fail("replace_share")
        self.store.replace_share(node_id, share)

    def remove_subtree(self, node_id: int) -> List[int]:
        self._maybe_fail("remove_subtree")
        return self.store.remove_subtree(node_id)

    def apply_batch(self, ops: Sequence[Tuple]) -> None:
        self._maybe_fail("apply_batch")
        self.store.apply_batch(ops)

    def close(self) -> None:
        self.store.close()

    def __repr__(self) -> str:
        return f"FaultyStore({self.store!r}, plan={self.plan!r})"


def flaky_handler(handler: Callable[[Message], Message], plan: FaultPlan,
                  retry_after_s: float = 0.0) -> Callable[[Message], Message]:
    """Wrap a server handler so chosen requests are shed with a busy reply.

    Consults ``"serve:<kind>"`` per incoming request; a firing ``busy``
    rule answers :class:`~repro.net.messages.BusyResponse` without
    touching the engine — exactly what an overloaded server's bounded
    queue does, minus the load.  Used to exercise the busy-path of
    resilient clients against in-process servers deterministically.
    """

    def wrapped(message: Message) -> Message:
        rule = plan.decide(f"serve:{message.kind}")
        if rule is not None and rule.kind == "busy":
            hint = rule.retry_after_s or retry_after_s
            return BusyResponse(retry_after_s=hint)
        return handler(message)

    return wrapped
