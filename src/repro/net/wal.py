"""Write-ahead update log for crash-safe batches on the durable store.

The §4.1 product structure makes a dynamic update touch many nodes (the
whole root-to-node path plus an inserted subtree), and
:class:`~repro.core.updates.UpdatableTree` pushes those mutations one at a
time.  On the durable SQLite backend each mutation commits independently,
so a crash in the middle would leave a *torn* share tree whose ancestor
polynomials no longer equal ``(x − tag) · ∏ children`` — silently
corrupting every future query.  This module makes batches atomic with an
application-level write-ahead log kept in the same database file:

1. **Intent** — before anything is touched, the full batch is written to
   the ``wal`` table in one SQLite transaction: a ``begin`` marker and one
   record per mutation carrying both the *after*-image (for replay) and
   the *before*-image (for rollback).
2. **Apply** — mutations are applied to the ``nodes``/``pages`` tables,
   each in its own committed transaction (this is the window a crash can
   interrupt).
3. **Commit marker** — a ``commit`` record is appended; from this moment
   the batch is durable.
4. **Checkpoint** — the ``wal`` table is cleared.

On open (and after an in-process failure) :func:`recover` inspects the
log: a log with a commit marker is **replayed** (idempotent redo of every
after-image), a log without one is **rolled back** (idempotent undo of
every before-image, in reverse order).  Either way the store reopens in
exactly the pre-batch or the post-batch state, never in between —
:mod:`tests.test_crash_safety` kills the apply loop between every pair of
mutations and asserts precisely that.

Sibling order survives rollback because the v2 schema stores an explicit
``ord`` column per node (the v1 schema ordered children by ``rowid``,
which a re-inserted before-image could not reproduce).
"""

from __future__ import annotations

import sqlite3
from typing import List, NamedTuple, Optional, Tuple

from ..errors import ProtocolError
from .pages import split_pages

__all__ = [
    "WalRecord",
    "ensure_wal_table",
    "write_intent",
    "mark_commit",
    "clear",
    "recover",
    "apply_record",
    "upsert_node",
    "delete_node",
    "write_node_pages",
]

#: Mutation record kinds (``begin``/``commit`` are markers, the rest redo/undo).
_MARKERS = ("begin", "commit")
_MUTATIONS = ("add", "replace", "remove")


class WalRecord(NamedTuple):
    """One write-ahead log row (marker or mutation with redo/undo images)."""

    #: ``begin``, ``commit``, ``add``, ``replace`` or ``remove``.
    op: str
    #: Node the mutation touches (``None`` for markers).
    node_id: Optional[int] = None
    #: Parent image: the new parent for ``add``, the old one for ``remove``.
    parent: Optional[int] = None
    #: Sibling-order image (same convention as ``parent``).
    ord: Optional[int] = None
    #: Encoded coefficients after the op (``add``/``replace``) — the redo image.
    after: Optional[bytes] = None
    #: Encoded coefficients before the op (``replace``/``remove``) — the undo image.
    before: Optional[bytes] = None


def ensure_wal_table(conn: sqlite3.Connection) -> None:
    """Create the ``wal`` table if the database does not have one yet."""
    conn.execute(
        "CREATE TABLE IF NOT EXISTS wal ("
        "seq INTEGER PRIMARY KEY AUTOINCREMENT, "
        "op TEXT NOT NULL, "
        "node_id INTEGER, "
        "parent INTEGER, "
        "ord INTEGER, "
        "after BLOB, "
        "before BLOB)")


def write_intent(conn: sqlite3.Connection, records: List[WalRecord]) -> None:
    """Append the ``begin`` marker plus every mutation record (no commit)."""
    conn.execute("INSERT INTO wal (op) VALUES ('begin')")
    conn.executemany(
        "INSERT INTO wal (op, node_id, parent, ord, after, before) "
        "VALUES (?, ?, ?, ?, ?, ?)",
        [(record.op, record.node_id, record.parent, record.ord,
          record.after, record.before) for record in records])


def mark_commit(conn: sqlite3.Connection) -> None:
    """Append the commit marker: the batch is now durable."""
    conn.execute("INSERT INTO wal (op) VALUES ('commit')")


def clear(conn: sqlite3.Connection) -> None:
    """Checkpoint: drop every log record of the (finished) batch."""
    conn.execute("DELETE FROM wal")


# -- node/page plumbing shared by the apply path and recovery -----------------------

def upsert_node(conn: sqlite3.Connection, node_id: int,
                parent: Optional[int], ord_: int) -> None:
    """Write a node's structure row (idempotent).

    A fresh row starts with an empty head segment;
    :func:`write_node_pages` fills it in the same transaction.
    """
    conn.execute(
        "INSERT INTO nodes (node_id, parent, ord, head) VALUES (?, ?, ?, X'') "
        "ON CONFLICT(node_id) DO UPDATE SET parent = excluded.parent, "
        "ord = excluded.ord",
        (node_id, parent, ord_))


def delete_node(conn: sqlite3.Connection, node_id: int) -> None:
    """Remove a node's structure row and every overflow page (idempotent)."""
    conn.execute("DELETE FROM pages WHERE node_id = ?", (node_id,))
    conn.execute("DELETE FROM nodes WHERE node_id = ?", (node_id,))


def write_node_pages(conn: sqlite3.Connection, node_id: int, blob: bytes,
                     page_bytes: int) -> None:
    """Replace a node's coefficient segments with the paged ``blob``.

    Segment 0 (the head) goes inline into the node row; segments 1+ are
    written as overflow page rows.  Idempotent: stale overflow pages are
    dropped first.
    """
    segments = split_pages(blob, page_bytes)
    conn.execute("UPDATE nodes SET head = ? WHERE node_id = ?",
                 (segments[0], node_id))
    conn.execute("DELETE FROM pages WHERE node_id = ?", (node_id,))
    if len(segments) > 1:
        conn.executemany(
            "INSERT INTO pages (node_id, page_no, payload) VALUES (?, ?, ?)",
            [(node_id, page_no, payload)
             for page_no, payload in enumerate(segments[1:], start=1)])


# -- recovery state machine ----------------------------------------------------------

def apply_record(conn: sqlite3.Connection, record: WalRecord,
                 page_bytes: int) -> None:
    """Apply one mutation record's redo image (idempotent).

    Used both by the store's live apply loop and by replay recovery, so
    the two can never disagree about what a record means.
    """
    if record.op == "add" or record.op == "replace":
        if record.node_id is None or record.after is None:
            raise ProtocolError(
                f"WAL {record.op!r} record for node {record.node_id!r} is "
                "missing its redo image; the log is corrupt")
        if record.op == "add":
            upsert_node(conn, record.node_id, record.parent, record.ord)
        write_node_pages(conn, record.node_id, record.after, page_bytes)
    elif record.op == "remove":
        delete_node(conn, record.node_id)
    else:  # pragma: no cover - guarded by _load_records
        raise ProtocolError(f"cannot replay WAL record {record.op!r}")


def _torn(record: WalRecord) -> bool:
    """Whether an uncommitted record is missing images its undo would need.

    A torn record can only come from an intent that never finished being
    written (a crash mid-``write_intent``, or a log truncated mid-record
    by an external tool).  The apply loop starts strictly *after* the
    intent transaction commits in full, so a torn record was never
    applied — there is nothing to undo, and rollback skips it instead of
    crashing on its missing images.  The *committed* replay path keeps no
    such tolerance: a commit marker proves the intent was complete, so a
    missing redo image there is real corruption and raises.
    """
    if record.node_id is None:
        return True
    if record.op == "replace":
        return record.before is None
    if record.op == "remove":
        return record.before is None or record.ord is None
    return False


def _undo(conn: sqlite3.Connection, record: WalRecord, page_bytes: int) -> None:
    if _torn(record):
        return
    if record.op == "add":
        delete_node(conn, record.node_id)
    elif record.op == "replace":
        write_node_pages(conn, record.node_id, record.before, page_bytes)
    elif record.op == "remove":
        upsert_node(conn, record.node_id, record.parent, record.ord)
        write_node_pages(conn, record.node_id, record.before, page_bytes)
    else:  # pragma: no cover - guarded by _load_records
        raise ProtocolError(f"cannot roll back WAL record {record.op!r}")


def _load_records(conn: sqlite3.Connection) -> Tuple[List[WalRecord], bool]:
    """The logged mutations in sequence order, plus the commit-marker flag."""
    rows = conn.execute(
        "SELECT op, node_id, parent, ord, after, before FROM wal "
        "ORDER BY seq").fetchall()
    records: List[WalRecord] = []
    committed = False
    for op, node_id, parent, ord_, after, before in rows:
        if op == "commit":
            committed = True
        elif op in _MUTATIONS:
            records.append(WalRecord(op, node_id, parent, ord_, after, before))
        elif op not in _MARKERS:
            raise ProtocolError(
                f"the write-ahead log contains an unknown record kind {op!r}; "
                "refusing to guess at recovery")
    return records, committed


def recover(conn: sqlite3.Connection, page_bytes: int) -> str:
    """Bring the store to a batch boundary; returns what had to happen.

    * ``"clean"`` — the log was empty, nothing to do;
    * ``"replayed"`` — a commit marker was found: every after-image was
      re-applied (idempotently) and the log cleared;
    * ``"rolled-back"`` — no commit marker: every before-image was
      restored in reverse order and the log cleared.

    The whole recovery commits as **one** SQLite transaction, so recovery
    itself crashing mid-way just runs again on the next open.
    """
    records, committed = _load_records(conn)
    if not records and not committed:
        if conn.execute("SELECT 1 FROM wal LIMIT 1").fetchone() is None:
            return "clean"
        # A bare ``begin`` with no mutations: nothing was going to change.
        with conn:
            clear(conn)
        return "rolled-back"
    with conn:
        if committed:
            for record in records:
                apply_record(conn, record, page_bytes)
        else:
            for record in reversed(records):
                _undo(conn, record, page_bytes)
        clear(conn)
    return "replayed" if committed else "rolled-back"
