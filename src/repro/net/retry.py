"""Retry policy and the resilient client: reconnect, replay, resume.

The query protocol is a strict request/response ladder, which makes
client-side fault tolerance unusually clean: the client's descent state
(the frontier, accumulated evaluations, pending prunes) lives entirely in
:class:`~repro.core.query.QueryEngine` and
:class:`~repro.net.client.RemoteServerAdapter`, so recovering from a dead
connection only requires (1) a fresh channel, (2) replaying the HELLO
negotiation to restore the session's protocol version, and (3) retrying
the one in-flight request.  The descent then *resumes* from the current
frontier — no restart from the root.

Failure taxonomy (see :mod:`repro.errors`):

* :class:`~repro.errors.TransportError` / ``ConnectionError`` /
  ``OSError`` — the connection died.  *Ambiguous*: the server may have
  processed the request before the reply was lost.  The resilient channel
  reconnects, re-negotiates HELLO, and replays the request **with the
  same idempotency key**, so a server that did process it answers
  bit-identically from its idempotency cache instead of processing (and
  observing) it twice.  This is exactly what makes v3
  :class:`~repro.net.messages.UpdateRequest` batches safe to replay: a
  batch that *committed* before the reply was lost is answered with the
  cached :class:`~repro.net.messages.UpdateResponse` (or cached
  :class:`~repro.net.messages.ConflictResponse`) instead of being
  applied — or version-checked — a second time.
* :class:`~repro.errors.ServerBusyError` — the server shed the request
  in-band.  The session is healthy: no reconnect, wait the server's
  ``retry_after_s`` hint (or the policy backoff, whichever is larger) and
  retry.
* :class:`~repro.errors.TransientServerError` — the request failed
  server-side but is expected to succeed on retry (e.g. a store hiccup).
  Retry on the same session.
* any other :class:`~repro.errors.ProtocolError` — a real protocol
  violation; retrying would repeat it, so it propagates immediately.

Retries are bounded three ways by :class:`RetryPolicy` — attempts per
request, a per-request deadline, and a per-session retry *budget* — and
spaced by capped exponential backoff with **seeded** jitter, so tests and
benchmarks replay identical schedules.
"""

from __future__ import annotations

import random
import time
import uuid
from typing import Callable, List, Optional, Tuple

from ..errors import (
    ProtocolError,
    RetryExhaustedError,
    ServerBusyError,
    TransientServerError,
    TransportError,
)
from ..obs import MetricsRegistry
from .channel import ChannelStats, LatencyModel, SocketChannel
from .client import RemoteServerAdapter
from .messages import HelloRequest, HelloResponse, Message

__all__ = [
    "RetryPolicy",
    "ResilientChannel",
    "ResilientServerInterface",
    "connect_resilient",
    "connect_resilient_socket",
]


class RetryPolicy:
    """Bounds and pacing for a resilient client's retries.

    * ``max_attempts`` — tries per request (first attempt included);
    * ``deadline_s`` — wall-clock budget per request (``None`` = none);
    * ``retry_budget`` — total retries across the whole session
      (``None`` = unlimited): a session burning its budget fails fast
      instead of grinding through a dead server one deadline at a time;
    * ``base_backoff_s``/``max_backoff_s`` — capped exponential backoff:
      attempt *n* waits ``min(base * 2**(n-1), max)`` seconds, scaled by
      a seeded jitter factor in ``[1 - jitter, 1]`` so synchronized
      clients desynchronize deterministically.

    ``sleep`` and ``clock`` are injectable; chaos tests pass a no-op
    sleep so hundreds of injected faults retry without real waiting.
    """

    def __init__(self, max_attempts: int = 6,
                 deadline_s: Optional[float] = 30.0,
                 base_backoff_s: float = 0.05,
                 max_backoff_s: float = 2.0,
                 jitter: float = 0.5,
                 retry_budget: Optional[int] = None,
                 seed: int = 0,
                 sleep: Callable[[float], None] = time.sleep,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        self.max_attempts = int(max_attempts)
        self.deadline_s = deadline_s
        self.base_backoff_s = float(base_backoff_s)
        self.max_backoff_s = float(max_backoff_s)
        self.jitter = float(jitter)
        self.retry_budget = retry_budget
        self.seed = int(seed)
        self._rng = random.Random(self.seed)
        self.sleep = sleep
        self.clock = clock

    def backoff_s(self, attempt: int) -> float:
        """Jittered delay before retry number ``attempt`` (1-based)."""
        raw = min(self.base_backoff_s * (2 ** max(attempt - 1, 0)),
                  self.max_backoff_s)
        if self.jitter:
            raw *= 1.0 - self.jitter * self._rng.random()
        return raw


class ResilientChannel:
    """A channel that survives resets, busy shedding and transient errors.

    Wraps a *factory* of plain channels rather than one channel: on a
    transport failure the current channel is closed and the factory
    produces a replacement, over which the HELLO exchange is replayed
    before the in-flight request.  Every non-HELLO request is stamped
    with a unique idempotency key on its first attempt and replayed with
    the same key, making ambiguous failures safe (see module docstring).

    ``stats`` is the *logical* ledger — each request() call that
    ultimately succeeds counts once, replays excluded — mirroring what a
    fault-free run of the same lookups would record, so bandwidth
    figures stay comparable under injected faults.  The physical cost of
    recovery is reported separately via ``retries``, ``reconnects`` and
    ``busy_waits`` — read-only views over counters in the channel's
    :class:`~repro.obs.MetricsRegistry`, next to two latency histograms:
    ``client_attempt_physical_seconds`` times every individual wire
    attempt (failures included), ``client_request_logical_seconds``
    times whole ``request()`` calls — backoff sleeps, reconnects and
    replays folded in — so the gap between the two distributions *is*
    the client-visible cost of recovery.
    """

    def __init__(self, channel_factory: Callable[[], object],
                 policy: Optional[RetryPolicy] = None,
                 request_id_prefix: Optional[str] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.channel_factory = channel_factory
        self.policy = policy if policy is not None else RetryPolicy()
        #: Unique per session so two clients never collide on a key;
        #: injectable for byte-deterministic tests.
        self.request_id_prefix = (request_id_prefix if request_id_prefix
                                  is not None else uuid.uuid4().hex[:12])
        #: Private per client unless a shared registry is passed in.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.stats = ChannelStats(self.metrics)
        self.transcript: List[Tuple[str, str]] = []
        self._retry_counter = self.metrics.counter("client_retries_total")
        self._reconnect_counter = self.metrics.counter(
            "client_reconnects_total")
        self._busy_counter = self.metrics.counter("client_busy_waits_total")
        self._physical_seconds = self.metrics.histogram(
            "client_attempt_physical_seconds")
        self._logical_seconds = self.metrics.histogram(
            "client_request_logical_seconds")
        self._channel: Optional[object] = None
        self._request_counter = 0
        self._retries_spent = 0
        self._hello_request: Optional[HelloRequest] = None
        self._negotiated_version: Optional[int] = None

    # -- registry-backed accounting views --------------------------------------
    @property
    def retries(self) -> int:
        """Replayed attempts across the session (all failure classes)."""
        return self._retry_counter.value

    @property
    def reconnects(self) -> int:
        """Fresh channels built after a transport failure."""
        return self._reconnect_counter.value

    @property
    def busy_waits(self) -> int:
        """In-band busy replies honoured with a paced wait."""
        return self._busy_counter.value

    # -- connection management -------------------------------------------------
    def _drop_channel(self) -> None:
        channel, self._channel = self._channel, None
        if channel is not None:
            close = getattr(channel, "close", None)
            if close is not None:
                try:
                    close()
                except OSError:
                    pass

    def _ensure_channel(self, negotiating: bool):
        """Return a live channel, re-negotiating HELLO after a reconnect."""
        if self._channel is not None:
            return self._channel
        channel = self.channel_factory()
        if self.stats.requests or self.retries or self._hello_request is not None:
            self._reconnect_counter.inc()
        if self._hello_request is not None and not negotiating:
            # Restore the session contract on the new connection before
            # replaying the interrupted request.  A server that now
            # negotiates a different version would silently change the
            # wire semantics mid-descent — refuse loudly instead.
            try:
                response = channel.request(self._hello_request)
            except BaseException:
                close = getattr(channel, "close", None)
                if close is not None:
                    try:
                        close()
                    except OSError:
                        pass
                raise
            if not isinstance(response, HelloResponse):
                raise ProtocolError(
                    f"unexpected response {response.kind!r} to the replayed "
                    "hello")
            if response.version != self._negotiated_version:
                raise ProtocolError(
                    f"server re-negotiated protocol version "
                    f"{response.version} after reconnect; the session was "
                    f"on version {self._negotiated_version}")
        self._channel = channel
        return channel

    # -- the retry loop --------------------------------------------------------
    def request(self, message: Message) -> Message:
        policy = self.policy
        negotiating = isinstance(message, HelloRequest)
        if not negotiating and message.request_id is None:
            self._request_counter += 1
            message.with_request_id(
                f"{self.request_id_prefix}-{self._request_counter}")
        started = policy.clock()
        deadline = (started + policy.deadline_s
                    if policy.deadline_s is not None else None)
        attempt = 0
        while True:
            attempt += 1
            failure: Exception
            attempt_started = policy.clock()
            try:
                channel = self._ensure_channel(negotiating)
                response = channel.request(message)
            except ServerBusyError as exc:
                # The session is healthy — honour the server's hint.
                failure = exc
                delay = max(exc.retry_after_s, policy.backoff_s(attempt))
                self._busy_counter.inc()
            except TransientServerError as exc:
                failure = exc
                delay = policy.backoff_s(attempt)
            except (TransportError, ConnectionError, OSError) as exc:
                failure = exc
                delay = policy.backoff_s(attempt)
                self._drop_channel()
            else:
                if negotiating:
                    self._hello_request = message
                    self._negotiated_version = response.version
                self.stats.bytes_to_server += message.byte_size()
                self.stats.bytes_to_client += response.byte_size()
                self.stats.requests += 1
                self.stats.responses += 1
                self.transcript.append((message.kind, response.kind))
                self._logical_seconds.observe(policy.clock() - started)
                return response
            finally:
                # Physical timing covers every individual wire attempt,
                # failed ones included; the logical histogram above only
                # sees whole successful request() calls.
                self._physical_seconds.observe(
                    policy.clock() - attempt_started)
            if attempt >= policy.max_attempts:
                raise RetryExhaustedError(
                    f"{message.kind!r} request failed after {attempt} "
                    f"attempts: {failure}") from failure
            if (policy.retry_budget is not None
                    and self._retries_spent >= policy.retry_budget):
                raise RetryExhaustedError(
                    f"session retry budget ({policy.retry_budget}) spent; "
                    f"giving up on {message.kind!r}: {failure}") from failure
            if deadline is not None and policy.clock() + delay > deadline:
                raise RetryExhaustedError(
                    f"{message.kind!r} request deadline "
                    f"({policy.deadline_s}s) exceeded after {attempt} "
                    f"attempts: {failure}") from failure
            self._retries_spent += 1
            self._retry_counter.inc()
            policy.sleep(delay)

    # -- channel surface -------------------------------------------------------
    def simulated_seconds(self) -> float:
        if self._channel is None:
            return 0.0
        simulated = getattr(self._channel, "simulated_seconds", None)
        return simulated() if simulated is not None else 0.0

    def close(self) -> None:
        self._drop_channel()

    def __enter__(self) -> "ResilientChannel":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ResilientServerInterface(RemoteServerAdapter):
    """A :class:`~repro.net.client.RemoteServerAdapter` that rides out faults.

    Identical to the plain adapter — same descent, same batched v2
    rounds, same byte-for-byte messages modulo the idempotency key — but
    every exchange goes through a :class:`ResilientChannel`, so the
    query engine on top never sees a reset connection or a shed request,
    only (at worst) :class:`~repro.errors.RetryExhaustedError`.  Because
    the adapter's frontier state lives client-side, a reconnect resumes
    the descent exactly where it stopped.
    """

    def __init__(self, channel_factory: Callable[[], object], ring,
                 document_id: Optional[str] = None,
                 protocol_version: Optional[int] = None,
                 policy: Optional[RetryPolicy] = None,
                 request_id_prefix: Optional[str] = None) -> None:
        resilient = ResilientChannel(channel_factory, policy=policy,
                                     request_id_prefix=request_id_prefix)
        try:
            super().__init__(resilient, ring, document_id=document_id,
                             protocol_version=protocol_version)
        except BaseException:
            resilient.close()
            raise

    def close(self) -> None:
        """Close the underlying channel (and its socket, if any)."""
        self.channel.close()


def connect_resilient(channel_factory: Callable[[], object], ring,
                      document_id: Optional[str] = None,
                      protocol_version: Optional[int] = None,
                      policy: Optional[RetryPolicy] = None,
                      request_id_prefix: Optional[str] = None
                      ) -> Tuple[ResilientServerInterface, ResilientChannel]:
    """Open a resilient session over channels produced by ``channel_factory``.

    The factory runs once per (re)connect; composing it with
    :class:`~repro.net.faults.FaultyChannel` is how the chaos tests
    build clients whose transport fails on schedule.
    """
    adapter = ResilientServerInterface(channel_factory, ring,
                                       document_id=document_id,
                                       protocol_version=protocol_version,
                                       policy=policy,
                                       request_id_prefix=request_id_prefix)
    return adapter, adapter.channel


def connect_resilient_socket(host: str, port: int, ring,
                             document_id: Optional[str] = None,
                             protocol_version: Optional[int] = None,
                             policy: Optional[RetryPolicy] = None,
                             latency_model: Optional[LatencyModel] = None,
                             timeout_s: Optional[float] = 30.0,
                             request_id_prefix: Optional[str] = None
                             ) -> Tuple[ResilientServerInterface,
                                        ResilientChannel]:
    """Resilient TCP session: :func:`connect_socket` plus reconnect/replay."""
    def factory() -> SocketChannel:
        return SocketChannel(host, port, latency_model=latency_model,
                             timeout_s=timeout_s)

    return connect_resilient(factory, ring, document_id=document_id,
                             protocol_version=protocol_version, policy=policy,
                             request_id_prefix=request_id_prefix)
