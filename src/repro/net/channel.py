"""Instrumented request/response channels between client and server.

The paper's protocol is strictly synchronous (the client sends a request,
the server answers), so every channel models exactly that and records:

* bytes sent client→server and server→client,
* number of request/response exchanges (round trips),
* a full transcript of message kinds (for the leakage audit).

Two transports share the accounting:

* :class:`InstrumentedChannel` — the in-process "network" used by the
  bandwidth experiments; what matters there are the counted costs, not
  sockets.
* :class:`SocketChannel` — one real TCP session against a socket server
  (:class:`~repro.net.server.ThreadedSearchServer` or
  :class:`~repro.net.aio.AsyncSearchServer`), speaking the same message
  encodings inside length-prefixed frames.  Each session owns its own
  :class:`ChannelStats`, so byte and round-trip totals stay per-tenant
  even when many sessions hit one server.

A latency model can be attached to translate round trips and bytes into
simulated wall-clock time.
"""

from __future__ import annotations

import socket
import threading
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import (
    ProtocolError,
    ServerBusyError,
    TransientServerError,
    TransportError,
)
from ..obs import MetricsRegistry
from .framing import (
    FRAME_HEADER_BYTES,
    MAX_FRAME_BYTES,
    decode_frame_length,
    encode_frame,
)
from .messages import BusyResponse, ErrorResponse, Message, decode_message

__all__ = ["ChannelStats", "LatencyModel", "InstrumentedChannel",
           "SocketChannel"]


class ChannelStats:
    """Byte and message accounting for one channel, as a registry view.

    Historically this class held four plain integers.  It is now a view
    over four :class:`~repro.obs.metrics.Counter` instruments, so channel
    accounting flows through the same :class:`~repro.obs.MetricsRegistry`
    as every other operational signal.  The attribute API is unchanged:
    ``stats.bytes_to_server += n`` still works (property getter + setter),
    as do ``as_dict``/``reset``/``total_bytes``/``round_trips``.

    Constructed bare (``ChannelStats()``) the view owns a private
    registry — per-session accounting stays isolated, exactly as the old
    integers did.  Passing ``registry=`` (plus optional label dimensions)
    shares instruments with a serving stack's registry instead.
    """

    __slots__ = ("registry", "_to_server", "_to_client", "_requests",
                 "_responses")

    def __init__(self, registry: Optional["MetricsRegistry"] = None,
                 **labels: str) -> None:
        if registry is None:
            registry = MetricsRegistry()
        self.registry = registry
        self._to_server = registry.counter("channel_bytes_to_server", **labels)
        self._to_client = registry.counter("channel_bytes_to_client", **labels)
        self._requests = registry.counter("channel_requests_total", **labels)
        self._responses = registry.counter("channel_responses_total", **labels)

    @property
    def bytes_to_server(self) -> int:
        """Bytes sent client→server."""
        return self._to_server.value

    @bytes_to_server.setter
    def bytes_to_server(self, value: int) -> None:
        self._to_server.set(value)

    @property
    def bytes_to_client(self) -> int:
        """Bytes sent server→client."""
        return self._to_client.value

    @bytes_to_client.setter
    def bytes_to_client(self, value: int) -> None:
        self._to_client.set(value)

    @property
    def requests(self) -> int:
        """Requests sent."""
        return self._requests.value

    @requests.setter
    def requests(self, value: int) -> None:
        self._requests.set(value)

    @property
    def responses(self) -> int:
        """Responses received."""
        return self._responses.value

    @responses.setter
    def responses(self, value: int) -> None:
        self._responses.set(value)

    @property
    def total_bytes(self) -> int:
        """Bytes in both directions."""
        return self.bytes_to_server + self.bytes_to_client

    @property
    def round_trips(self) -> int:
        """Completed request/response exchanges."""
        return self.responses

    def as_dict(self) -> Dict[str, int]:
        """Dictionary form for tabular reporting."""
        return {
            "bytes_to_server": self.bytes_to_server,
            "bytes_to_client": self.bytes_to_client,
            "total_bytes": self.total_bytes,
            "round_trips": self.round_trips,
        }

    def reset(self) -> None:
        """Zero all counters."""
        self._to_server.reset()
        self._to_client.reset()
        self._requests.reset()
        self._responses.reset()

    def __repr__(self) -> str:
        return (f"ChannelStats(to_server={self.bytes_to_server}B, "
                f"to_client={self.bytes_to_client}B, round_trips={self.round_trips})")


class LatencyModel:
    """Translate counted traffic into simulated time.

    ``latency_s`` is the one-way network latency; ``bandwidth_bytes_per_s``
    the link throughput.  A round trip therefore costs
    ``2*latency + bytes/bandwidth`` seconds of simulated time.
    """

    def __init__(self, latency_s: float = 0.01,
                 bandwidth_bytes_per_s: float = 125_000.0) -> None:
        if latency_s < 0 or bandwidth_bytes_per_s <= 0:
            raise ValueError("latency must be >= 0 and bandwidth > 0")
        self.latency_s = latency_s
        self.bandwidth_bytes_per_s = bandwidth_bytes_per_s

    def simulated_seconds(self, stats: ChannelStats) -> float:
        """Simulated transfer time for the traffic recorded in ``stats``."""
        transfer = stats.total_bytes / self.bandwidth_bytes_per_s
        return 2 * self.latency_s * stats.round_trips + transfer


class InstrumentedChannel:
    """Synchronous request/response channel with byte-level accounting.

    The server side is a handler callable ``Message -> Message``; requests
    are serialised, counted, decoded on the "server side", handled, and the
    response travels back the same way.  Serialising on both hops keeps the
    accounting honest: what is counted is exactly what crosses the link.
    """

    def __init__(self, handler: Callable[[Message], Message],
                 latency_model: Optional[LatencyModel] = None) -> None:
        self.handler = handler
        self.stats = ChannelStats()
        self.latency_model = latency_model
        #: Sequence of (request_kind, response_kind) pairs (the server's view).
        self.transcript: List[Tuple[str, str]] = []
        # Accounting is guarded so sessions may share a channel across
        # threads; the handler itself runs outside the lock (the server
        # engine has its own per-document locking).
        self._stats_lock = threading.Lock()

    def request(self, message: Message) -> Message:
        """Send ``message`` to the server and return the decoded response.

        Handler exceptions propagate directly (there is no wire for them
        to be reported in-band on), but a handler that *answers* with an
        in-band failure reply — a busy shed or an error frame, as the
        socket servers do — gets the same mapping as
        :meth:`SocketChannel.request`, so resilient clients behave
        identically over both transports.
        """
        encoded = message.encode()
        with self._stats_lock:
            self.stats.bytes_to_server += len(encoded)
            self.stats.requests += 1
        server_view = decode_message(encoded)
        response = self.handler(server_view)
        if not isinstance(response, Message):
            raise ProtocolError("the server handler must return a Message")
        encoded_response = response.encode()
        with self._stats_lock:
            self.stats.bytes_to_client += len(encoded_response)
            self.stats.responses += 1
            self.transcript.append((server_view.kind, response.kind))
        decoded = decode_message(encoded_response)
        if isinstance(decoded, BusyResponse):
            raise ServerBusyError(
                f"the server shed the {message.kind!r} request "
                f"(retry after {decoded.retry_after_s}s)",
                retry_after_s=decoded.retry_after_s)
        if isinstance(decoded, ErrorResponse) and decoded.retryable:
            raise TransientServerError(decoded.error)
        return decoded

    def simulated_seconds(self) -> float:
        """Simulated time of the recorded traffic (0.0 without a latency model)."""
        if self.latency_model is None:
            return 0.0
        return self.latency_model.simulated_seconds(self.stats)

    def reset(self) -> None:
        """Clear counters and transcript (e.g. between benchmark iterations)."""
        self.stats.reset()
        self.transcript.clear()


class SocketChannel:
    """One client session over a real TCP socket, with per-session stats.

    Speaks the framed wire protocol of :mod:`repro.net.framing`: each
    request is one frame carrying an unchanged v1/v2 message encoding, and
    each response one frame back.  The channel is strictly synchronous
    from the caller's view (send, then wait), which is exactly what
    :class:`~repro.net.client.RemoteServerAdapter` needs — the adapter
    works over this channel and the in-process one interchangeably.

    Server-side failures arrive as
    :class:`~repro.net.messages.ErrorResponse` frames and are re-raised
    here as :class:`~repro.errors.ProtocolError`, mirroring the exception
    the in-process channel would have propagated.
    """

    def __init__(self, host: str, port: int,
                 latency_model: Optional[LatencyModel] = None,
                 max_frame_bytes: int = MAX_FRAME_BYTES,
                 timeout_s: Optional[float] = 30.0) -> None:
        self.stats = ChannelStats()
        self.latency_model = latency_model
        self.max_frame_bytes = max_frame_bytes
        #: Sequence of (request_kind, response_kind) pairs (this session's view).
        self.transcript: List[Tuple[str, str]] = []
        try:
            self._sock = socket.create_connection((host, port),
                                                  timeout=timeout_s)
        except OSError as exc:
            raise TransportError(
                f"cannot connect to {host}:{port}: {exc}") from exc
        try:
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            # The connected socket must not leak even when option setup
            # fails (e.g. the peer already reset the connection).
            self.close()
            raise
        self._lock = threading.Lock()

    def _recv_exactly(self, count: int) -> bytes:
        chunks = []
        remaining = count
        while remaining:
            try:
                chunk = self._sock.recv(remaining)
            except OSError as exc:
                raise TransportError(
                    f"connection failed mid-frame: {exc}") from exc
            if not chunk:
                raise TransportError(
                    "the server closed the connection mid-frame")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def request(self, message: Message) -> Message:
        """Send one framed request and return the decoded framed response.

        Transport failures (reset connections, truncated frames) raise
        :class:`~repro.errors.TransportError`; in-band server failures
        re-raise as :class:`~repro.errors.ProtocolError` (with the
        ``retryable`` flag mapped to
        :class:`~repro.errors.TransientServerError`) and a shed request as
        :class:`~repro.errors.ServerBusyError` — so a resilient caller can
        tell "reconnect and replay" from "retry in place" from "give up".
        """
        encoded = message.encode()
        frame = encode_frame(encoded, self.max_frame_bytes)
        with self._lock:
            try:
                self._sock.sendall(frame)
            except OSError as exc:
                raise TransportError(
                    f"cannot send the request frame: {exc}") from exc
            self.stats.bytes_to_server += len(encoded)
            self.stats.requests += 1
            header = self._recv_exactly(FRAME_HEADER_BYTES)
            length = decode_frame_length(header, self.max_frame_bytes)
            payload = self._recv_exactly(length)
            self.stats.bytes_to_client += len(payload)
            self.stats.responses += 1
            response = decode_message(payload)
            self.transcript.append((message.kind, response.kind))
        if isinstance(response, BusyResponse):
            raise ServerBusyError(
                f"the server shed the {message.kind!r} request "
                f"(retry after {response.retry_after_s}s)",
                retry_after_s=response.retry_after_s)
        if isinstance(response, ErrorResponse):
            if response.retryable:
                raise TransientServerError(response.error)
            raise ProtocolError(response.error)
        return response

    def simulated_seconds(self) -> float:
        """Simulated time of the recorded traffic (0.0 without a latency model)."""
        if self.latency_model is None:
            return 0.0
        return self.latency_model.simulated_seconds(self.stats)

    def close(self) -> None:
        """Close the underlying socket."""
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "SocketChannel":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
