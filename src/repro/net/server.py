"""The untrusted search server.

The server stores one :class:`~repro.core.share_tree.ServerShareTree` (its
half of the shared polynomial tree plus the public structure) and answers
the protocol requests of :mod:`repro.net.messages`.  It never sees tag
names, the mapping function, the client seed or full polynomials — only
its own shares, the query points and the prune notices, which is exactly
the view analysed by :mod:`repro.analysis.leakage`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.share_tree import ServerShareTree
from ..errors import ProtocolError
from .messages import (
    Acknowledgement,
    BlobRequest,
    BlobResponse,
    ChildrenRequest,
    ChildrenResponse,
    EvaluateRequest,
    EvaluateResponse,
    FetchConstantsRequest,
    FetchConstantsResponse,
    FetchPolynomialsRequest,
    FetchPolynomialsResponse,
    Message,
    PruneNotice,
    StructureRequest,
    StructureResponse,
)

__all__ = ["ServerObservations", "SearchServer"]


class ServerObservations:
    """Everything an honest-but-curious server learns while answering queries."""

    __slots__ = ("points_seen", "pruned_nodes", "evaluated_nodes",
                 "polynomials_served", "constants_served", "requests_handled")

    def __init__(self) -> None:
        self.points_seen: List[int] = []
        self.pruned_nodes: List[int] = []
        self.evaluated_nodes: List[int] = []
        self.polynomials_served: List[int] = []
        self.constants_served: List[int] = []
        self.requests_handled = 0

    def as_dict(self) -> Dict[str, int]:
        """Counted summary for reports."""
        return {
            "distinct_points_seen": len(set(self.points_seen)),
            "evaluation_requests": len(self.evaluated_nodes),
            "pruned_nodes": len(self.pruned_nodes),
            "polynomials_served": len(self.polynomials_served),
            "constants_served": len(self.constants_served),
            "requests_handled": self.requests_handled,
        }


class SearchServer:
    """Message handler implementing the server role of the §4.3 protocol."""

    def __init__(self, share_tree: ServerShareTree,
                 encrypted_blob: Optional[bytes] = None) -> None:
        self.share_tree = share_tree
        #: Optional opaque blob served to download-everything clients
        #: (used by the baseline comparison; not part of the paper's scheme).
        self.encrypted_blob = encrypted_blob
        self.observations = ServerObservations()

    # -- message dispatch ----------------------------------------------------------
    def handle(self, message: Message) -> Message:
        """Answer one request message."""
        self.observations.requests_handled += 1
        if isinstance(message, StructureRequest):
            return self._handle_structure()
        if isinstance(message, ChildrenRequest):
            return self._handle_children(message)
        if isinstance(message, EvaluateRequest):
            return self._handle_evaluate(message)
        if isinstance(message, FetchPolynomialsRequest):
            return self._handle_fetch_polynomials(message)
        if isinstance(message, FetchConstantsRequest):
            return self._handle_fetch_constants(message)
        if isinstance(message, PruneNotice):
            return self._handle_prune(message)
        if isinstance(message, BlobRequest):
            return self._handle_blob()
        raise ProtocolError(f"the server cannot handle {message.kind!r} requests")

    __call__ = handle

    # -- handlers --------------------------------------------------------------------
    def _handle_structure(self) -> StructureResponse:
        if self.share_tree.root_id is None:
            raise ProtocolError("the server has no stored data")
        return StructureResponse(self.share_tree.root_id, self.share_tree.node_count())

    def _handle_children(self, message: ChildrenRequest) -> ChildrenResponse:
        return ChildrenResponse({node_id: self.share_tree.child_ids(node_id)
                                 for node_id in message.node_ids})

    def _handle_evaluate(self, message: EvaluateRequest) -> EvaluateResponse:
        self.observations.points_seen.append(message.point)
        self.observations.evaluated_nodes.extend(message.node_ids)
        return EvaluateResponse({
            node_id: self.share_tree.evaluate(node_id, message.point)
            for node_id in message.node_ids})

    def _handle_fetch_polynomials(self, message: FetchPolynomialsRequest
                                  ) -> FetchPolynomialsResponse:
        self.observations.polynomials_served.extend(message.node_ids)
        coefficients = {}
        for node_id in message.node_ids:
            share = self.share_tree.share_of(node_id)
            coefficients[node_id] = [int(share.coefficient(i))
                                     for i in range(self.share_tree.ring.degree_bound)]
        return FetchPolynomialsResponse(coefficients)

    def _handle_fetch_constants(self, message: FetchConstantsRequest
                                ) -> FetchConstantsResponse:
        self.observations.constants_served.extend(message.node_ids)
        return FetchConstantsResponse({
            node_id: int(self.share_tree.share_of(node_id).constant_term)
            for node_id in message.node_ids})

    def _handle_prune(self, message: PruneNotice) -> Acknowledgement:
        self.observations.pruned_nodes.extend(message.node_ids)
        return Acknowledgement()

    def _handle_blob(self) -> BlobResponse:
        if self.encrypted_blob is None:
            raise ProtocolError("this server has no download-all blob configured")
        return BlobResponse(self.encrypted_blob)

    # -- reporting -----------------------------------------------------------------------
    def storage_bits(self) -> int:
        """Measured storage of the server's share tree (§5)."""
        return self.share_tree.storage_bits()
