"""The untrusted search server engine.

The server hosts one or more outsourced documents through a
:class:`~repro.net.engine.DocumentRegistry` (each a pluggable
:class:`~repro.net.store.ShareStore` backend behind a per-document lock)
and answers the protocol requests of :mod:`repro.net.messages` — both the
original v1 per-request messages and the batched v2 frontier protocol,
negotiated per session via the hello exchange.  It never sees tag names,
the mapping function, the client seed or full polynomials — only its own
shares, the query points and the prune notices, which is exactly the view
analysed by :mod:`repro.analysis.leakage` (and accounted both globally and
per hosted document).
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Union

from ..core.share_tree import ServerShareTree
from ..errors import ProtocolError
from .engine import DEFAULT_DOCUMENT, DocumentRegistry, HostedDocument
from .messages import (
    SUPPORTED_PROTOCOL_VERSIONS,
    Acknowledgement,
    BlobRequest,
    BlobResponse,
    ChildrenRequest,
    ChildrenResponse,
    EvaluateRequest,
    EvaluateResponse,
    FetchConstantsRequest,
    FetchConstantsResponse,
    FetchPolynomialsRequest,
    FetchPolynomialsResponse,
    FrontierRequest,
    FrontierResponse,
    HelloRequest,
    HelloResponse,
    Message,
    PruneNotice,
    StructureRequest,
    StructureResponse,
)
from .store import InMemoryShareStore, ShareStore

__all__ = ["ServerObservations", "SearchServer"]


class ServerObservations:
    """Everything an honest-but-curious server learns while answering queries."""

    __slots__ = ("points_seen", "pruned_nodes", "evaluated_nodes",
                 "polynomials_served", "constants_served", "requests_handled")

    def __init__(self) -> None:
        self.points_seen: List[int] = []
        self.pruned_nodes: List[int] = []
        self.evaluated_nodes: List[int] = []
        self.polynomials_served: List[int] = []
        self.constants_served: List[int] = []
        self.requests_handled = 0

    def as_dict(self) -> Dict[str, int]:
        """Counted summary for reports."""
        return {
            "distinct_points_seen": len(set(self.points_seen)),
            "evaluation_requests": len(self.evaluated_nodes),
            "pruned_nodes": len(self.pruned_nodes),
            "polynomials_served": len(self.polynomials_served),
            "constants_served": len(self.constants_served),
            "requests_handled": self.requests_handled,
        }


class SearchServer:
    """Message handler implementing the server role of the §4.3 protocol.

    ``SearchServer(share_tree)`` keeps the historical single-document
    construction (the tree is hosted as the default document); additional
    documents are attached with :meth:`add_document`.  All observation
    ledgers are double-entry: the per-document ledger feeds tenant-level
    leakage audits, the aggregate ``observations`` the whole-server view.
    """

    def __init__(self, share_tree: Optional[Union[ServerShareTree, ShareStore]] = None,
                 encrypted_blob: Optional[bytes] = None,
                 registry: Optional[DocumentRegistry] = None) -> None:
        self.registry = registry if registry is not None else DocumentRegistry()
        #: Aggregate honest-but-curious view across every hosted document.
        self.observations = ServerObservations()
        # The aggregate ledger is shared by every session and document;
        # per-document ledgers are written under the same lock because a
        # handler may update both in one go.
        self._observations_lock = threading.Lock()
        if share_tree is not None:
            self.add_document(DEFAULT_DOCUMENT, share_tree,
                              encrypted_blob=encrypted_blob)

    # -- hosting ----------------------------------------------------------------------
    def add_document(self, document_id: str,
                     store: Union[ServerShareTree, ShareStore],
                     encrypted_blob: Optional[bytes] = None) -> HostedDocument:
        """Host another outsourced document under ``document_id``."""
        return self.registry.add(document_id, store, encrypted_blob=encrypted_blob)

    def remove_document(self, document_id: str) -> HostedDocument:
        """Stop hosting a document."""
        return self.registry.remove(document_id)

    def document(self, document_id: Optional[str] = None) -> HostedDocument:
        """A hosted document (the default one when ``document_id`` is None)."""
        return self.registry.resolve(document_id)

    @property
    def share_tree(self) -> Union[ServerShareTree, ShareStore]:
        """The default document's data (kept for single-document callers)."""
        store = self.registry.resolve(None).store
        if isinstance(store, InMemoryShareStore):
            return store.tree
        return store

    @property
    def encrypted_blob(self) -> Optional[bytes]:
        """The default document's download-all blob (legacy accessor)."""
        return self.registry.resolve(None).encrypted_blob

    # -- message dispatch ----------------------------------------------------------
    def handle(self, message: Message) -> Message:
        """Answer one request message."""
        with self._observations_lock:
            self.observations.requests_handled += 1
        if isinstance(message, HelloRequest):
            return self._handle_hello(message)
        document = self.registry.resolve(message.document_id)
        with self._observations_lock:
            document.observations.requests_handled += 1
        with document.lock:
            if isinstance(message, StructureRequest):
                return self._handle_structure(document)
            if isinstance(message, ChildrenRequest):
                return self._handle_children(document, message)
            if isinstance(message, EvaluateRequest):
                return self._handle_evaluate(document, message)
            if isinstance(message, FrontierRequest):
                return self._handle_frontier(document, message)
            if isinstance(message, FetchPolynomialsRequest):
                return self._handle_fetch_polynomials(document, message)
            if isinstance(message, FetchConstantsRequest):
                return self._handle_fetch_constants(document, message)
            if isinstance(message, PruneNotice):
                return self._handle_prune(document, message)
            if isinstance(message, BlobRequest):
                return self._handle_blob(document)
        raise ProtocolError(f"the server cannot handle {message.kind!r} requests")

    __call__ = handle

    # -- observation plumbing ---------------------------------------------------------
    def _observe_points(self, document: HostedDocument, point: int,
                        node_ids: List[int]) -> None:
        with self._observations_lock:
            for ledger in (self.observations, document.observations):
                ledger.points_seen.append(point)
                ledger.evaluated_nodes.extend(node_ids)

    def _observe_prune(self, document: HostedDocument, node_ids: List[int]) -> None:
        with self._observations_lock:
            for ledger in (self.observations, document.observations):
                ledger.pruned_nodes.extend(node_ids)

    def _observe_served(self, document: HostedDocument, attribute: str,
                        node_ids: List[int]) -> None:
        with self._observations_lock:
            for ledger in (self.observations, document.observations):
                getattr(ledger, attribute).extend(node_ids)

    # -- handlers --------------------------------------------------------------------
    def _handle_hello(self, message: HelloRequest) -> HelloResponse:
        """Version negotiation: highest common generation, or a loud error.

        The response describes only the document the session addressed —
        tenants must not learn which other documents the server hosts.
        """
        common = set(message.versions) & set(SUPPORTED_PROTOCOL_VERSIONS)
        if not common:
            raise ProtocolError(
                f"client speaks protocol versions {sorted(message.versions)} but "
                f"this server supports {list(SUPPORTED_PROTOCOL_VERSIONS)}; "
                "no common version — upgrade one side")
        version = max(common)
        documents: List[str] = []
        root_id = node_count = None
        if len(self.registry) > 0:
            try:
                document = self.registry.resolve(message.document_id)
            except ProtocolError:
                if message.document_id is not None:
                    raise        # an explicitly named unknown document is an error
            else:
                documents = [document.document_id]
                root_id = document.store.root_id
                node_count = document.store.node_count()
        return HelloResponse(version, documents=documents,
                             root_id=root_id, node_count=node_count)

    def _handle_structure(self, document: HostedDocument) -> StructureResponse:
        root_id = document.store.root_id
        if root_id is None:
            raise ProtocolError("the server has no stored data")
        return StructureResponse(root_id, document.store.node_count())

    def _handle_children(self, document: HostedDocument,
                         message: ChildrenRequest) -> ChildrenResponse:
        store = document.store
        return ChildrenResponse({node_id: store.child_ids(node_id)
                                 for node_id in message.node_ids})

    def _handle_evaluate(self, document: HostedDocument,
                         message: EvaluateRequest) -> EvaluateResponse:
        self._observe_points(document, message.point, message.node_ids)
        return EvaluateResponse(
            document.store.evaluate_many(message.node_ids, message.point))

    #: Hard ceiling on speculative evaluation depth per exchange.
    MAX_LOOKAHEAD = 4

    def _handle_frontier(self, document: HostedDocument,
                         message: FrontierRequest) -> FrontierResponse:
        store = document.store
        if message.prune:
            self._observe_prune(document, message.prune)
        # Speculative expansion: evaluate the requested frontier plus up to
        # ``lookahead`` further levels of the induced subtree, so the client
        # can consume several descent levels from one exchange.
        child_lists: Dict[int, List[int]] = {}
        frontier_nodes = list(message.node_ids)
        level = frontier_nodes
        for _ in range(min(max(message.lookahead, 0), self.MAX_LOOKAHEAD)):
            next_level: List[int] = []
            for node_id in level:
                child_lists[node_id] = store.child_ids(node_id)
                next_level.extend(child_lists[node_id])
            if not next_level:
                break
            frontier_nodes.extend(next_level)
            level = next_level
        evaluations: Dict[int, Dict[int, int]] = {}
        for point in message.points:
            self._observe_points(document, point, frontier_nodes)
            evaluations[point] = store.evaluate_many(frontier_nodes, point)
        children: Dict[int, List[int]] = {}
        if message.include_children:
            for node_id in frontier_nodes:
                if node_id not in child_lists:
                    child_lists[node_id] = store.child_ids(node_id)
                children[node_id] = child_lists[node_id]
        # With ``include_children`` a fetch answers for the listed nodes plus
        # all their children (the Theorem-1/2 closure); without it the fetch
        # is exact, matching the v1 fetch semantics.
        polynomials: Dict[int, List[int]] = {}
        if message.fetch_polynomials:
            if message.include_children:
                fetched = self._verification_closure(
                    store, message.fetch_polynomials, children)
            else:
                fetched = sorted(set(message.fetch_polynomials))
            self._observe_served(document, "polynomials_served", fetched)
            degree_bound = store.ring.degree_bound
            for node_id in fetched:
                share = store.share_of(node_id)
                polynomials[node_id] = [int(share.coefficient(i))
                                        for i in range(degree_bound)]
        constants: Dict[int, int] = {}
        if message.fetch_constants:
            if message.include_children:
                fetched = self._verification_closure(
                    store, message.fetch_constants, children)
            else:
                fetched = sorted(set(message.fetch_constants))
            self._observe_served(document, "constants_served", fetched)
            for node_id in fetched:
                constants[node_id] = int(store.share_of(node_id).constant_term)
        return FrontierResponse(evaluations, children, polynomials, constants)

    @staticmethod
    def _verification_closure(store: ShareStore, node_ids: List[int],
                              children: Dict[int, List[int]]) -> List[int]:
        """The requested nodes plus all their children (Theorem-1/2 inputs).

        Child lists discovered here are folded into the response's
        ``children`` map so the client learns the structure in the same
        exchange.
        """
        closure = []
        seen = set()
        for node_id in node_ids:
            child_ids = children.get(node_id)
            if child_ids is None:
                child_ids = store.child_ids(node_id)
                children[node_id] = child_ids
            for member in [node_id] + child_ids:
                if member not in seen:
                    seen.add(member)
                    closure.append(member)
        return sorted(closure)

    def _handle_fetch_polynomials(self, document: HostedDocument,
                                  message: FetchPolynomialsRequest
                                  ) -> FetchPolynomialsResponse:
        self._observe_served(document, "polynomials_served", message.node_ids)
        store = document.store
        coefficients = {}
        for node_id in message.node_ids:
            share = store.share_of(node_id)
            coefficients[node_id] = [int(share.coefficient(i))
                                     for i in range(store.ring.degree_bound)]
        return FetchPolynomialsResponse(coefficients)

    def _handle_fetch_constants(self, document: HostedDocument,
                                message: FetchConstantsRequest
                                ) -> FetchConstantsResponse:
        self._observe_served(document, "constants_served", message.node_ids)
        store = document.store
        return FetchConstantsResponse({
            node_id: int(store.share_of(node_id).constant_term)
            for node_id in message.node_ids})

    def _handle_prune(self, document: HostedDocument,
                      message: PruneNotice) -> Acknowledgement:
        self._observe_prune(document, message.node_ids)
        return Acknowledgement()

    def _handle_blob(self, document: HostedDocument) -> BlobResponse:
        if document.encrypted_blob is None:
            raise ProtocolError("this server has no download-all blob configured")
        return BlobResponse(document.encrypted_blob)

    # -- reporting -----------------------------------------------------------------------
    def storage_bits(self) -> int:
        """Measured storage across every hosted document (§5)."""
        return self.registry.total_storage_bits()
