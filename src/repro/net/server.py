"""The untrusted search server: in-process facade and blocking sockets.

The message handlers themselves live in the transport-agnostic
:class:`~repro.net.engine.ServingCore`; this module provides the two
synchronous ways of running one:

* :class:`SearchServer` — the historical in-process server object.  It
  *is* a ``ServingCore`` (every test and benchmark that calls
  ``server.handle(message)`` keeps working unchanged) plus the
  single-document conveniences the original construction exposed.
* :class:`ThreadedSearchServer` — a blocking TCP transport: one OS thread
  per client session, length-prefixed frames
  (:mod:`repro.net.framing`) carrying the unchanged v1/v2 message
  encodings.  This is the baseline the asyncio transport
  (:mod:`repro.net.aio`) is benchmarked against in BENCH_3.

The server never sees tag names, the mapping function, the client seed or
full polynomials — only its own shares, the query points and the prune
notices, which is exactly the view analysed by
:mod:`repro.analysis.leakage` (and accounted both globally and per hosted
document).
"""

from __future__ import annotations

import socket
import socketserver
import threading
from typing import Optional, Union

from ..core.share_tree import ServerShareTree
from ..errors import ProtocolError, ReproError
from .engine import (
    DEFAULT_DOCUMENT,
    DocumentRegistry,
    HostedDocument,
    ServerObservations,
    ServingCore,
)
from .framing import (
    FRAME_HEADER_BYTES,
    MAX_FRAME_BYTES,
    FrameAssembler,
    encode_frame,
)
from .messages import ErrorResponse, decode_message
from .store import InMemoryShareStore, ShareStore

__all__ = ["ServerObservations", "SearchServer", "ThreadedSearchServer"]


class SearchServer(ServingCore):
    """In-process server object implementing the server role of §4.3.

    ``SearchServer(share_tree)`` keeps the historical single-document
    construction (the tree is hosted as the default document); additional
    documents are attached with :meth:`add_document`.  The message
    handlers are inherited from :class:`~repro.net.engine.ServingCore`, so
    the same instance can simultaneously back the in-process channel, the
    threaded socket transport and the asyncio transport.
    """

    def __init__(self, share_tree: Optional[Union[ServerShareTree, ShareStore]] = None,
                 encrypted_blob: Optional[bytes] = None,
                 registry: Optional[DocumentRegistry] = None) -> None:
        super().__init__(registry)
        if share_tree is not None:
            self.add_document(DEFAULT_DOCUMENT, share_tree,
                              encrypted_blob=encrypted_blob)

    # -- hosting ----------------------------------------------------------------------
    def add_document(self, document_id: str,
                     store: Union[ServerShareTree, ShareStore],
                     encrypted_blob: Optional[bytes] = None) -> HostedDocument:
        """Host another outsourced document under ``document_id``."""
        return self.registry.add(document_id, store, encrypted_blob=encrypted_blob)

    def remove_document(self, document_id: str) -> HostedDocument:
        """Stop hosting a document."""
        return self.registry.remove(document_id)

    def document(self, document_id: Optional[str] = None) -> HostedDocument:
        """A hosted document (the default one when ``document_id`` is None)."""
        return self.registry.resolve(document_id)

    @property
    def share_tree(self) -> Union[ServerShareTree, ShareStore]:
        """The default document's data (kept for single-document callers)."""
        store = self.registry.resolve(None).store
        if isinstance(store, InMemoryShareStore):
            return store.tree
        return store

    @property
    def encrypted_blob(self) -> Optional[bytes]:
        """The default document's download-all blob (legacy accessor)."""
        return self.registry.resolve(None).encrypted_blob


class _FrameSessionHandler(socketserver.BaseRequestHandler):
    """One blocking client session: read frame, handle, write frame."""

    def handle(self) -> None:  # noqa: D102 - socketserver protocol
        server: "ThreadedSearchServer" = self.server  # type: ignore[assignment]
        server._sessions_gauge.inc()
        try:
            self._serve_session(server)
        finally:
            server._sessions_gauge.dec()

    def _serve_session(self, server: "ThreadedSearchServer") -> None:
        assembler = FrameAssembler(server.max_frame_bytes)
        self.request.settimeout(server.session_timeout_s)
        while True:
            try:
                chunk = self.request.recv(65536)
            except (socket.timeout, OSError):
                break
            if not chunk:
                break
            try:
                payloads = assembler.feed(chunk)
            except ProtocolError:
                break  # unframeable stream: drop the session
            for payload in payloads:
                server._request_started()
                server._bytes_in.inc(len(payload))
                try:
                    response = server.core.handle(decode_message(payload))
                except ReproError as exc:
                    # Busy shedding and transient failures keep their
                    # class on the wire (BusyResponse / retryable error).
                    response = ServingCore.error_response(exc)
                except Exception as exc:  # noqa: BLE001 - answered in-band
                    response = ErrorResponse(str(exc))
                finally:
                    server._request_finished()
                try:
                    frame = encode_frame(response.encode(),
                                         server.max_frame_bytes)
                except ProtocolError as exc:
                    frame = encode_frame(
                        ErrorResponse(f"response exceeds the frame limit: "
                                      f"{exc}").encode(),
                        server.max_frame_bytes)
                try:
                    self.request.sendall(frame)
                except OSError:
                    return
                server._bytes_out.inc(len(frame) - FRAME_HEADER_BYTES)


class ThreadedSearchServer(socketserver.ThreadingTCPServer):
    """Blocking TCP transport: one thread per session, framed messages.

    This is the conventional way to serve the synchronous
    :class:`~repro.net.engine.ServingCore` — every session gets its own
    thread and every request is handled individually, so N concurrent
    sessions descending the same document each pay their own store pass
    behind the per-document lock.  The asyncio transport exists precisely
    to beat this baseline by coalescing those passes; BENCH_3 measures the
    gap.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, core: ServingCore, host: str = "127.0.0.1",
                 port: int = 0, max_frame_bytes: int = MAX_FRAME_BYTES,
                 session_timeout_s: float = 30.0,
                 drain_timeout_s: float = 10.0) -> None:
        self.core = core
        self.max_frame_bytes = max_frame_bytes
        self.session_timeout_s = session_timeout_s
        #: How long :meth:`stop` waits for in-flight requests to finish.
        self.drain_timeout_s = drain_timeout_s
        # Transport accounting flows into the serving stack's registry.
        metrics = core.metrics
        self._bytes_in = metrics.counter("transport_bytes_to_server",
                                         transport="threaded")
        self._bytes_out = metrics.counter("transport_bytes_to_client",
                                          transport="threaded")
        self._sessions_gauge = metrics.gauge("transport_active_sessions",
                                             transport="threaded")
        super().__init__((host, port), _FrameSessionHandler)
        self._serve_thread: Optional[threading.Thread] = None
        self._inflight = 0
        self._inflight_cv = threading.Condition()

    # -- in-flight accounting (graceful shutdown) ---------------------------------
    def _request_started(self) -> None:
        with self._inflight_cv:
            self._inflight += 1

    def _request_finished(self) -> None:
        with self._inflight_cv:
            self._inflight -= 1
            if self._inflight == 0:
                self._inflight_cv.notify_all()

    @property
    def address(self) -> tuple:
        """The bound ``(host, port)`` address."""
        return self.server_address[:2]

    def start(self) -> "ThreadedSearchServer":
        """Serve in a background thread (returns self for chaining)."""
        self._serve_thread = threading.Thread(target=self.serve_forever,
                                              name="threaded-search-server",
                                              daemon=True)
        self._serve_thread.start()
        return self

    def stop(self) -> None:
        """Graceful shutdown: close the listener, drain, then tear down.

        ``shutdown()`` stops the accept loop first (no new sessions),
        then in-flight request handling gets up to ``drain_timeout_s``
        to produce its responses before the process-level teardown —
        rounds that already cost a store pass are answered, not lost.
        Session threads are daemonic; those still blocked on an idle
        ``recv`` die with their clients or the process.
        """
        self.shutdown()
        with self._inflight_cv:
            self._inflight_cv.wait_for(lambda: self._inflight == 0,
                                       timeout=self.drain_timeout_s)
        self.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
            self._serve_thread = None
