"""Server-side persistence of share trees.

The server's state (ring parameters, public structure, share polynomials)
is plain data; this module serialises it to a JSON document so that the
server can be restarted, copied or inspected — and so that the storage
figures of §5 can also be reported as concrete on-disk bytes.

The *client's* secrets (seed and tag mapping) are intentionally not part
of this format; see :meth:`repro.core.ClientContext.secret_state`.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional

from ..algebra.poly import Polynomial
from ..algebra.quotient import EncodingRing, FpQuotientRing, IntQuotientRing
from ..algebra.rings import ZZ
from ..core.share_tree import ServerShareTree
from ..errors import ProtocolError

__all__ = [
    "ring_to_dict",
    "ring_from_dict",
    "share_tree_to_dict",
    "share_tree_from_dict",
    "save_share_tree",
    "load_share_tree",
    "InMemoryServerStore",
]


def ring_to_dict(ring: EncodingRing) -> Dict[str, Any]:
    """Serialisable description of an encoding ring."""
    if isinstance(ring, FpQuotientRing):
        return {"kind": "fp", "p": ring.p}
    if isinstance(ring, IntQuotientRing):
        return {
            "kind": "int",
            "modulus": [int(c) for c in ring.modulus.coeffs],
            "random_bound": ring.coefficient_ring.random_bound,
        }
    raise ProtocolError(f"cannot serialise ring {ring!r}")


def ring_from_dict(data: Dict[str, Any]) -> EncodingRing:
    """Inverse of :func:`ring_to_dict`."""
    kind = data.get("kind")
    if kind == "fp":
        return FpQuotientRing(int(data["p"]))
    if kind == "int":
        modulus = Polynomial([int(c) for c in data["modulus"]], ZZ)
        return IntQuotientRing(modulus, random_bound=int(data.get("random_bound", 2 ** 32)))
    raise ProtocolError(f"unknown ring kind {kind!r}")


def share_tree_to_dict(tree: ServerShareTree) -> Dict[str, Any]:
    """Serialisable form of a server share tree."""
    return {
        "ring": ring_to_dict(tree.ring),
        "root_id": tree.root_id,
        "nodes": [
            {
                "id": node_id,
                "parent": tree.parents[node_id],
                "coefficients": [int(c) for c in tree.shares[node_id].coeffs],
            }
            for node_id in tree.node_ids()
        ],
    }


def share_tree_from_dict(data: Dict[str, Any]) -> ServerShareTree:
    """Inverse of :func:`share_tree_to_dict`."""
    ring = ring_from_dict(data["ring"])
    tree = ServerShareTree(ring)
    for node in data["nodes"]:
        share = ring.from_coefficients(node["coefficients"])
        tree.add_node(int(node["id"]),
                      None if node["parent"] is None else int(node["parent"]),
                      share)
    if tree.root_id != data.get("root_id"):
        raise ProtocolError("inconsistent root id in the stored share tree")
    return tree


def save_share_tree(tree: ServerShareTree, path: str) -> int:
    """Write the share tree as JSON; returns the file size in bytes.

    The write is atomic: the payload goes to a temporary file in the same
    directory which is fsynced and then :func:`os.replace`-d over ``path``,
    so a server crash mid-save can never leave a truncated store behind —
    readers see either the old complete file or the new complete file.
    """
    payload = json.dumps(share_tree_to_dict(tree), separators=(",", ":"))
    directory = os.path.dirname(os.path.abspath(path))
    temp_path = os.path.join(directory,
                             f".{os.path.basename(path)}.tmp-{os.getpid()}")
    try:
        with open(temp_path, "w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.remove(temp_path)
        except OSError:
            pass
        raise
    return os.path.getsize(path)


def load_share_tree(path: str) -> ServerShareTree:
    """Load a share tree previously written by :func:`save_share_tree`.

    Empty, truncated or otherwise undecodable files are rejected with a
    :class:`~repro.errors.ProtocolError` that names the path and what was
    sniffed, instead of an opaque ``JSONDecodeError`` from deep inside the
    decoder.
    """
    with open(path, "rb") as handle:
        raw = handle.read()
    if not raw:
        raise ProtocolError(f"share tree file {path!r} is empty")
    try:
        data = json.loads(raw.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(
            f"share tree file {path!r} is not valid JSON "
            f"(starts with {raw[:16]!r}): {exc}") from exc
    if not isinstance(data, dict):
        raise ProtocolError(
            f"share tree file {path!r} holds a JSON {type(data).__name__}, "
            "not the expected object")
    return share_tree_from_dict(data)


class InMemoryServerStore:
    """A trivial keyed store of share trees (a multi-document 'database').

    Lets one server process host several outsourced documents, addressed by
    a collection name — the shape a real deployment of the scheme would
    take.  Keys are opaque to the scheme itself.
    """

    def __init__(self) -> None:
        self._trees: Dict[str, ServerShareTree] = {}

    def put(self, name: str, tree: ServerShareTree) -> None:
        """Store (or replace) a share tree under ``name``."""
        self._trees[name] = tree

    def get(self, name: str) -> ServerShareTree:
        """Fetch a stored share tree; raises ``KeyError`` when absent."""
        return self._trees[name]

    def delete(self, name: str) -> None:
        """Remove a stored share tree."""
        del self._trees[name]

    def names(self) -> list:
        """All stored collection names, sorted."""
        return sorted(self._trees)

    def total_storage_bits(self) -> int:
        """Aggregate storage of every stored tree."""
        return sum(tree.storage_bits() for tree in self._trees.values())

    def __len__(self) -> int:
        return len(self._trees)

    def __contains__(self, name: str) -> bool:
        return name in self._trees
