"""Instrumented client/server transport: protocol messages (v1 + batched
v2), byte-counting channel, the multi-document search server engine with
pluggable share-store backends, and its client-side proxy."""

from .channel import ChannelStats, InstrumentedChannel, LatencyModel
from .client import RemoteServerAdapter, connect, connect_in_process
from .engine import DEFAULT_DOCUMENT, DocumentRegistry, HostedDocument
from .messages import (
    PROTOCOL_VERSION,
    SUPPORTED_PROTOCOL_VERSIONS,
    Message,
    decode_message,
)
from .server import SearchServer, ServerObservations
from .storage import (
    InMemoryServerStore,
    load_share_tree,
    ring_from_dict,
    ring_to_dict,
    save_share_tree,
    share_tree_from_dict,
    share_tree_to_dict,
)
from .store import (
    InMemoryShareStore,
    ShareStore,
    SQLiteShareStore,
    as_share_store,
    open_share_store,
)

__all__ = [
    "PROTOCOL_VERSION",
    "SUPPORTED_PROTOCOL_VERSIONS",
    "Message",
    "decode_message",
    "ChannelStats",
    "LatencyModel",
    "InstrumentedChannel",
    "SearchServer",
    "ServerObservations",
    "RemoteServerAdapter",
    "connect",
    "connect_in_process",
    "DEFAULT_DOCUMENT",
    "DocumentRegistry",
    "HostedDocument",
    "ShareStore",
    "InMemoryShareStore",
    "SQLiteShareStore",
    "as_share_store",
    "open_share_store",
    "InMemoryServerStore",
    "ring_to_dict",
    "ring_from_dict",
    "share_tree_to_dict",
    "share_tree_from_dict",
    "save_share_tree",
    "load_share_tree",
]
