"""Instrumented client/server transport: protocol messages (v1, batched
v2, update-capable v3), byte-counting channels (in-process and real
sockets), length-prefixed framing, the transport-agnostic serving core
with multi-document tenancy, admission control, idempotent replay and
version-checked update batches, pluggable share-store backends, the
sync/threaded and asyncio socket servers, the client-side proxies
(including the remote editor with conflict rebase), and the
fault-tolerance layer (deterministic fault injection plus the retrying,
reconnecting resilient client).  All layers account through the shared
observability registry (:mod:`repro.obs`): transports, the serving core,
the retry stack and the stores emit into one
:class:`~repro.obs.MetricsRegistry`, surfaced in-band by the v3
``stats``/``health`` probes and out-of-band by the plaintext scrape
endpoint."""

from .aio import (
    AsyncSearchServer,
    AsyncServerHandle,
    AsyncServerInterface,
    start_async_server,
)
from .channel import ChannelStats, InstrumentedChannel, LatencyModel, SocketChannel
from .client import (
    RemoteServerAdapter,
    RemoteUpdatableTree,
    connect,
    connect_in_process,
    connect_socket,
)
from .engine import (
    DEFAULT_DOCUMENT,
    DocumentRegistry,
    HostedDocument,
    ServingCore,
)
from .faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultRule,
    FaultyChannel,
    FaultyStore,
    flaky_handler,
)
from .framing import (
    FRAME_HEADER_BYTES,
    MAX_FRAME_BYTES,
    FrameAssembler,
    decode_frame_length,
    encode_frame,
)
from .messages import (
    PROTOCOL_VERSION,
    SUPPORTED_PROTOCOL_VERSIONS,
    BusyResponse,
    ConflictResponse,
    ErrorResponse,
    HealthRequest,
    HealthResponse,
    Message,
    StatsRequest,
    StatsResponse,
    UpdateRequest,
    UpdateResponse,
    decode_message,
)
from .retry import (
    ResilientChannel,
    ResilientServerInterface,
    RetryPolicy,
    connect_resilient,
    connect_resilient_socket,
)
from .server import SearchServer, ServerObservations, ThreadedSearchServer
from .storage import (
    InMemoryServerStore,
    load_share_tree,
    ring_from_dict,
    ring_to_dict,
    save_share_tree,
    share_tree_from_dict,
    share_tree_to_dict,
)
from .store import (
    InMemoryShareStore,
    ShareStore,
    SQLiteShareStore,
    StoreTransaction,
    as_share_store,
    migrate_share_store,
    open_share_store,
    write_v1_share_store,
)

__all__ = [
    "PROTOCOL_VERSION",
    "SUPPORTED_PROTOCOL_VERSIONS",
    "Message",
    "BusyResponse",
    "ErrorResponse",
    "UpdateRequest",
    "UpdateResponse",
    "ConflictResponse",
    "StatsRequest",
    "StatsResponse",
    "HealthRequest",
    "HealthResponse",
    "decode_message",
    "FAULT_KINDS",
    "FaultRule",
    "FaultPlan",
    "FaultyChannel",
    "FaultyStore",
    "flaky_handler",
    "RetryPolicy",
    "ResilientChannel",
    "ResilientServerInterface",
    "connect_resilient",
    "connect_resilient_socket",
    "ChannelStats",
    "LatencyModel",
    "InstrumentedChannel",
    "SocketChannel",
    "FRAME_HEADER_BYTES",
    "MAX_FRAME_BYTES",
    "FrameAssembler",
    "encode_frame",
    "decode_frame_length",
    "SearchServer",
    "ServerObservations",
    "ThreadedSearchServer",
    "AsyncSearchServer",
    "AsyncServerInterface",
    "AsyncServerHandle",
    "start_async_server",
    "RemoteServerAdapter",
    "RemoteUpdatableTree",
    "connect",
    "connect_in_process",
    "connect_socket",
    "DEFAULT_DOCUMENT",
    "DocumentRegistry",
    "HostedDocument",
    "ServingCore",
    "ShareStore",
    "StoreTransaction",
    "InMemoryShareStore",
    "SQLiteShareStore",
    "as_share_store",
    "open_share_store",
    "migrate_share_store",
    "write_v1_share_store",
    "InMemoryServerStore",
    "ring_to_dict",
    "ring_from_dict",
    "share_tree_to_dict",
    "share_tree_from_dict",
    "save_share_tree",
    "load_share_tree",
]
