"""Instrumented client/server transport: protocol messages, byte-counting
channel, the untrusted search server and its client-side proxy."""

from .channel import ChannelStats, InstrumentedChannel, LatencyModel
from .client import RemoteServerAdapter, connect_in_process
from .messages import Message, decode_message
from .server import SearchServer, ServerObservations
from .storage import (
    InMemoryServerStore,
    load_share_tree,
    ring_from_dict,
    ring_to_dict,
    save_share_tree,
    share_tree_from_dict,
    share_tree_to_dict,
)

__all__ = [
    "Message",
    "decode_message",
    "ChannelStats",
    "LatencyModel",
    "InstrumentedChannel",
    "SearchServer",
    "ServerObservations",
    "RemoteServerAdapter",
    "connect_in_process",
    "InMemoryServerStore",
    "ring_to_dict",
    "ring_from_dict",
    "share_tree_to_dict",
    "share_tree_from_dict",
    "save_share_tree",
    "load_share_tree",
]
