"""Instrumented client/server transport: protocol messages (v1 + batched
v2), byte-counting channels (in-process and real sockets), length-prefixed
framing, the transport-agnostic serving core with multi-document tenancy
and pluggable share-store backends, the sync/threaded and asyncio socket
servers, and the client-side proxies."""

from .aio import (
    AsyncSearchServer,
    AsyncServerHandle,
    AsyncServerInterface,
    start_async_server,
)
from .channel import ChannelStats, InstrumentedChannel, LatencyModel, SocketChannel
from .client import RemoteServerAdapter, connect, connect_in_process, connect_socket
from .engine import (
    DEFAULT_DOCUMENT,
    DocumentRegistry,
    HostedDocument,
    ServingCore,
)
from .framing import (
    FRAME_HEADER_BYTES,
    MAX_FRAME_BYTES,
    FrameAssembler,
    decode_frame_length,
    encode_frame,
)
from .messages import (
    PROTOCOL_VERSION,
    SUPPORTED_PROTOCOL_VERSIONS,
    Message,
    decode_message,
)
from .server import SearchServer, ServerObservations, ThreadedSearchServer
from .storage import (
    InMemoryServerStore,
    load_share_tree,
    ring_from_dict,
    ring_to_dict,
    save_share_tree,
    share_tree_from_dict,
    share_tree_to_dict,
)
from .store import (
    InMemoryShareStore,
    ShareStore,
    SQLiteShareStore,
    StoreTransaction,
    as_share_store,
    migrate_share_store,
    open_share_store,
    write_v1_share_store,
)

__all__ = [
    "PROTOCOL_VERSION",
    "SUPPORTED_PROTOCOL_VERSIONS",
    "Message",
    "decode_message",
    "ChannelStats",
    "LatencyModel",
    "InstrumentedChannel",
    "SocketChannel",
    "FRAME_HEADER_BYTES",
    "MAX_FRAME_BYTES",
    "FrameAssembler",
    "encode_frame",
    "decode_frame_length",
    "SearchServer",
    "ServerObservations",
    "ThreadedSearchServer",
    "AsyncSearchServer",
    "AsyncServerInterface",
    "AsyncServerHandle",
    "start_async_server",
    "RemoteServerAdapter",
    "connect",
    "connect_in_process",
    "connect_socket",
    "DEFAULT_DOCUMENT",
    "DocumentRegistry",
    "HostedDocument",
    "ServingCore",
    "ShareStore",
    "StoreTransaction",
    "InMemoryShareStore",
    "SQLiteShareStore",
    "as_share_store",
    "open_share_store",
    "migrate_share_store",
    "write_v1_share_store",
    "InMemoryServerStore",
    "ring_to_dict",
    "ring_from_dict",
    "share_tree_to_dict",
    "share_tree_from_dict",
    "save_share_tree",
    "load_share_tree",
]
