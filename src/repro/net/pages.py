"""Binary paged coefficient encoding for the durable share store.

The v1 SQLite store kept every share polynomial as a JSON text row
(``"[12,0,7,...]"``), which dominated the file size: a coefficient that
fits in six bits costs three to four bytes of decimal digits plus a comma.
The v2 format replaces those rows with a compact binary encoding:

* a coefficient vector is serialised as a fixed header followed by
  **fixed-width little-endian limbs** — one limb per coefficient, the limb
  width (in *bits*) chosen per share as the smallest width that holds its
  largest coefficient, limbs packed back to back into a little-endian
  bitstream (a width that is a multiple of 8 degenerates to plain
  byte-aligned little-endian integers).  Signed coefficients, which occur
  in the ``Z[x]/(r)`` ring, are zigzag-mapped to unsigned limbs first;
* the resulting blob is stored as a **head segment** inline in the node
  row plus zero or more fixed-size **overflow pages** (one SQLite row
  each), so the common small share costs a single row while a single
  oversized share (the integer ring's coefficients grow with the subtree
  product) never creates a pathological row and partial reads/writes stay
  bounded.

The codec is lossless for arbitrary Python integers (any sign, any
magnitude) and round-trips the empty vector (the zero polynomial) and
constant shares; :mod:`tests.test_pages` asserts this property-based.
"""

from __future__ import annotations

import struct
from typing import List, Sequence

from ..errors import ProtocolError

__all__ = [
    "PAGE_FORMAT_VERSION",
    "DEFAULT_PAGE_BYTES",
    "encode_coefficients",
    "decode_coefficients",
    "split_pages",
    "join_pages",
]

#: Version byte of the binary coefficient encoding (bumped on layout changes).
PAGE_FORMAT_VERSION = 1

#: Default byte budget per segment: the head segment kept inline in the
#: node row, and each overflow page row.
DEFAULT_PAGE_BYTES = 4096

#: Blob header: version, flags, limb width in bits, coefficient count.
_HEADER = struct.Struct("<BBII")

#: Flag bit: limbs are zigzag-encoded signed values.
_FLAG_ZIGZAG = 0x01


def _zigzag(value: int) -> int:
    """Map a signed integer to an unsigned one (order-preserving around 0)."""
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def _unzigzag(value: int) -> int:
    """Inverse of :func:`_zigzag`."""
    return (value >> 1) if (value & 1) == 0 else -((value + 1) >> 1)


def encode_coefficients(coeffs: Sequence[int]) -> bytes:
    """Serialise a coefficient vector into one binary blob.

    The limb width is the smallest number of bits that holds the largest
    (zigzag-mapped, when any coefficient is negative) value; an all-zero
    vector uses width 0 and carries no payload at all.
    """
    values = [int(c) for c in coeffs]
    flags = 0
    if any(value < 0 for value in values):
        flags |= _FLAG_ZIGZAG
        values = [_zigzag(value) for value in values]
    width = max((value.bit_length() for value in values), default=0)
    if width > 0xFFFFFFFF or len(values) > 0xFFFFFFFF:
        raise ProtocolError("coefficient vector exceeds the page encoding "
                            "limits (2^32 bits per limb / 2^32 limbs)")
    header = _HEADER.pack(PAGE_FORMAT_VERSION, flags, width, len(values))
    if width == 0:
        return header
    stream = 0
    for index, value in enumerate(values):
        stream |= value << (index * width)
    return header + stream.to_bytes((len(values) * width + 7) // 8, "little")


def decode_coefficients(blob: bytes) -> List[int]:
    """Inverse of :func:`encode_coefficients` (loud on any corruption)."""
    if len(blob) < _HEADER.size:
        raise ProtocolError(
            f"coefficient blob of {len(blob)} bytes is shorter than the "
            f"{_HEADER.size}-byte header")
    version, flags, width, count = _HEADER.unpack_from(blob)
    if version != PAGE_FORMAT_VERSION:
        raise ProtocolError(
            f"coefficient blob has format version {version}; this build "
            f"reads version {PAGE_FORMAT_VERSION}")
    expected = _HEADER.size + (count * width + 7) // 8
    if len(blob) != expected:
        raise ProtocolError(
            f"coefficient blob is {len(blob)} bytes but the header announces "
            f"{count} limbs of {width} bits ({expected} bytes total)")
    if width == 0:
        return [0] * count
    stream = int.from_bytes(blob[_HEADER.size:], "little")
    if stream >> (count * width):
        raise ProtocolError(
            "coefficient blob has bits set beyond its announced "
            f"{count}×{width}-bit payload")
    mask = (1 << width) - 1
    values = [(stream >> (index * width)) & mask for index in range(count)]
    if flags & _FLAG_ZIGZAG:
        values = [_unzigzag(value) for value in values]
    return values


def split_pages(blob: bytes, page_bytes: int = DEFAULT_PAGE_BYTES) -> List[bytes]:
    """Cut a blob into segments of at most ``page_bytes`` each.

    Segment 0 is the head kept inline in the node row; segments 1+ are the
    overflow page rows.  Every encoded share has a non-empty head (the
    header alone is 10 bytes), so a stored node always has one.
    """
    if page_bytes <= 0:
        raise ProtocolError(f"page size must be positive, not {page_bytes}")
    if not blob:
        raise ProtocolError("refusing to page an empty blob")
    return [bytes(blob[offset:offset + page_bytes])
            for offset in range(0, len(blob), page_bytes)]


def join_pages(pages: Sequence[bytes]) -> bytes:
    """Reassemble segments (head first, overflow in page order)."""
    if not pages:
        raise ProtocolError("a stored share has no segments; the store is torn")
    return b"".join(pages)
