"""Binary paged coefficient encoding for the durable share store.

The v1 SQLite store kept every share polynomial as a JSON text row
(``"[12,0,7,...]"``), which dominated the file size: a coefficient that
fits in six bits costs three to four bytes of decimal digits plus a comma.
The v2 format replaces those rows with a compact binary encoding:

* a coefficient vector is serialised as a fixed header followed by
  **fixed-width little-endian limbs** — one limb per coefficient, the limb
  width (in *bits*) chosen per share as the smallest width that holds its
  largest coefficient, limbs packed back to back into a little-endian
  bitstream (a width that is a multiple of 8 degenerates to plain
  byte-aligned little-endian integers).  Signed coefficients, which occur
  in the ``Z[x]/(r)`` ring, are zigzag-mapped to unsigned limbs first;
* the resulting blob is stored as a **head segment** inline in the node
  row plus zero or more fixed-size **overflow pages** (one SQLite row
  each), so the common small share costs a single row while a single
  oversized share (the integer ring's coefficients grow with the subtree
  product) never creates a pathological row and partial reads/writes stay
  bounded.

The codec is lossless for arbitrary Python integers (any sign, any
magnitude) and round-trips the empty vector (the zero polynomial) and
constant shares; :mod:`tests.test_pages` asserts this property-based.

Alongside the reference int codec live **array codecs**
(:func:`encode_coefficients_array`, :func:`decode_coefficients_array`,
:func:`decode_coefficients_batch`): byte-identical encoders and decoders
that move blobs to/from numpy ``int64`` arrays without materialising a
Python int per coefficient.  Byte-aligned limb widths decode as a
``frombuffer`` view widened to 8-byte lanes; odd widths go through one
vectorized ``unpackbits``/weight-dot pass.  The batch decoder additionally
groups blobs by identical ``(flags, width, count)`` header so a whole
SELECT's worth of shares decodes in a handful of array ops — the zero-copy
half of the vectorized evaluation pipeline.  Decoders return ``None``
(never wrong answers) whenever numpy is absent or a limb exceeds the
native 64-bit width; callers fall back to the reference codec.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Sequence, Tuple

from ..algebra.vkernels import numpy_or_none
from ..errors import ProtocolError

__all__ = [
    "PAGE_FORMAT_VERSION",
    "DEFAULT_PAGE_BYTES",
    "encode_coefficients",
    "decode_coefficients",
    "encode_coefficients_array",
    "decode_coefficients_array",
    "decode_coefficients_batch",
    "split_pages",
    "join_pages",
]

#: Version byte of the binary coefficient encoding (bumped on layout changes).
PAGE_FORMAT_VERSION = 1

#: Default byte budget per segment: the head segment kept inline in the
#: node row, and each overflow page row.
DEFAULT_PAGE_BYTES = 4096

#: Blob header: version, flags, limb width in bits, coefficient count.
_HEADER = struct.Struct("<BBII")

#: Flag bit: limbs are zigzag-encoded signed values.
_FLAG_ZIGZAG = 0x01


def _zigzag(value: int) -> int:
    """Map a signed integer to an unsigned one (order-preserving around 0)."""
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def _unzigzag(value: int) -> int:
    """Inverse of :func:`_zigzag`."""
    return (value >> 1) if (value & 1) == 0 else -((value + 1) >> 1)


def encode_coefficients(coeffs: Sequence[int]) -> bytes:
    """Serialise a coefficient vector into one binary blob.

    The limb width is the smallest number of bits that holds the largest
    (zigzag-mapped, when any coefficient is negative) value; an all-zero
    vector uses width 0 and carries no payload at all.
    """
    values = [int(c) for c in coeffs]
    flags = 0
    if any(value < 0 for value in values):
        flags |= _FLAG_ZIGZAG
        values = [_zigzag(value) for value in values]
    width = max((value.bit_length() for value in values), default=0)
    if width > 0xFFFFFFFF or len(values) > 0xFFFFFFFF:
        raise ProtocolError("coefficient vector exceeds the page encoding "
                            "limits (2^32 bits per limb / 2^32 limbs)")
    header = _HEADER.pack(PAGE_FORMAT_VERSION, flags, width, len(values))
    if width == 0:
        return header
    stream = 0
    for index, value in enumerate(values):
        stream |= value << (index * width)
    return header + stream.to_bytes((len(values) * width + 7) // 8, "little")


def _parse_header(blob: bytes) -> Tuple[int, int, int]:
    """Validate a blob's header and length; return ``(flags, width, count)``."""
    if len(blob) < _HEADER.size:
        raise ProtocolError(
            f"coefficient blob of {len(blob)} bytes is shorter than the "
            f"{_HEADER.size}-byte header")
    version, flags, width, count = _HEADER.unpack_from(blob)
    if version != PAGE_FORMAT_VERSION:
        raise ProtocolError(
            f"coefficient blob has format version {version}; this build "
            f"reads version {PAGE_FORMAT_VERSION}")
    expected = _HEADER.size + (count * width + 7) // 8
    if len(blob) != expected:
        raise ProtocolError(
            f"coefficient blob is {len(blob)} bytes but the header announces "
            f"{count} limbs of {width} bits ({expected} bytes total)")
    return flags, width, count


def decode_coefficients(blob: bytes) -> List[int]:
    """Inverse of :func:`encode_coefficients` (loud on any corruption)."""
    flags, width, count = _parse_header(blob)
    if width == 0:
        return [0] * count
    stream = int.from_bytes(blob[_HEADER.size:], "little")
    if stream >> (count * width):
        raise ProtocolError(
            "coefficient blob has bits set beyond its announced "
            f"{count}×{width}-bit payload")
    mask = (1 << width) - 1
    values = [(stream >> (index * width)) & mask for index in range(count)]
    if flags & _FLAG_ZIGZAG:
        values = [_unzigzag(value) for value in values]
    return values


def _native_width_limit(flags: int) -> int:
    """Largest limb width (bits) the array decoders handle for ``flags``.

    Plain limbs up to 63 bits fit a signed int64; zigzag limbs stop at 62
    because unzigzag computes ``value + 1`` before halving.
    """
    return 62 if flags & _FLAG_ZIGZAG else 63


def encode_coefficients_array(values) -> bytes:
    """Serialise a numpy ``int64`` vector, byte-identical to the int codec.

    Accepts an integer ndarray (or any sequence, which — like the cases the
    array path cannot express: numpy absent, magnitudes at or beyond
    ``2^62`` where the zigzag shift would overflow — is routed through
    :func:`encode_coefficients`).  The produced blob is byte-for-byte what
    :func:`encode_coefficients` yields for the same values, so the two
    encoders are interchangeable on disk.
    """
    np = numpy_or_none()
    if np is None or not isinstance(values, np.ndarray):
        return encode_coefficients([int(v) for v in values])
    if values.dtype.kind != "i" or values.ndim != 1:
        return encode_coefficients([int(v) for v in values])
    values = values.astype(np.int64, copy=False)
    count = int(values.size)
    flags = 0
    if count == 0:
        width = 0
    else:
        low = int(values.min())
        high = int(values.max())
        if low < 0:
            if low <= -(1 << 62) or high >= (1 << 62):
                return encode_coefficients(values.tolist())
            flags = _FLAG_ZIGZAG
            values = np.where(values >= 0,
                              values << 1, ((-values) << 1) - 1)
            width = int(values.max()).bit_length()
        else:
            width = high.bit_length()
    header = _HEADER.pack(PAGE_FORMAT_VERSION, flags, width, count)
    if width == 0:
        return header
    if width % 8 == 0:
        lanes = values.astype("<u8").view(np.uint8).reshape(count, 8)
        return header + lanes[:, :width // 8].tobytes()
    bits = ((values[:, None] >> np.arange(width, dtype=np.int64)) & 1)
    return header + np.packbits(
        bits.astype(np.uint8).ravel(), bitorder="little").tobytes()


def decode_coefficients_array(blob: bytes):
    """Decode one blob to an ``int64`` ndarray, or None when not expressible.

    ``None`` means "use :func:`decode_coefficients`" — returned when numpy
    is absent or the limb width exceeds the native 64-bit lane.  Corruption
    still raises :class:`ProtocolError` exactly like the reference decoder.
    """
    rows = decode_coefficients_batch([blob])
    return None if rows is None else rows[0]


def decode_coefficients_batch(blobs: Sequence[bytes]):
    """Decode many blobs to ``int64`` ndarrays in a few vectorized passes.

    Blobs are grouped by identical ``(flags, width, count)`` header; each
    group's payloads are joined and decoded in one ``frombuffer`` view
    (byte-aligned widths) or one ``unpackbits``/weight-dot pass (odd
    widths).  Returns a list of ``(count,)`` int64 arrays parallel to
    ``blobs``, or ``None`` when numpy is absent or **any** blob's width
    exceeds the native lane — mixed-width fallback keeps the caller on one
    code path per batch.  Headers are validated (and raise) either way.
    """
    np = numpy_or_none()
    headers = [_parse_header(blob) for blob in blobs]
    if np is None:
        return None
    if any(width > _native_width_limit(flags)
           for flags, width, _ in headers):
        return None
    groups = {}
    for index, header in enumerate(headers):
        groups.setdefault(header, []).append(index)
    result: List[Optional[object]] = [None] * len(blobs)
    for (flags, width, count), indices in groups.items():
        if width == 0:
            for index in indices:
                result[index] = np.zeros(count, dtype=np.int64)
            continue
        payload_bytes = (count * width + 7) // 8
        joined = b"".join(blobs[index][_HEADER.size:] for index in indices)
        raw = np.frombuffer(joined, dtype=np.uint8)
        raw = raw.reshape(len(indices), payload_bytes)
        if width % 8 == 0:
            lane_bytes = width // 8
            lanes = np.zeros((len(indices), count, 8), dtype=np.uint8)
            lanes[:, :, :lane_bytes] = raw.reshape(len(indices), count,
                                                   lane_bytes)
            values = lanes.view("<u8")[:, :, 0].astype(np.int64)
        else:
            bits = np.unpackbits(raw, axis=1, bitorder="little")
            if bits[:, count * width:].any():
                raise ProtocolError(
                    "coefficient blob has bits set beyond its announced "
                    f"{count}×{width}-bit payload")
            weights = np.int64(1) << np.arange(width, dtype=np.int64)
            values = bits[:, :count * width].astype(np.int64)
            values = values.reshape(len(indices), count, width) @ weights
        if flags & _FLAG_ZIGZAG:
            values = np.where(values & 1,
                              -((values + 1) >> 1), values >> 1)
        for row, index in enumerate(indices):
            result[index] = values[row]
    return result


def split_pages(blob: bytes, page_bytes: int = DEFAULT_PAGE_BYTES) -> List[bytes]:
    """Cut a blob into segments of at most ``page_bytes`` each.

    Segment 0 is the head kept inline in the node row; segments 1+ are the
    overflow page rows.  Every encoded share has a non-empty head (the
    header alone is 10 bytes), so a stored node always has one.
    """
    if page_bytes <= 0:
        raise ProtocolError(f"page size must be positive, not {page_bytes}")
    if not blob:
        raise ProtocolError("refusing to page an empty blob")
    return [bytes(blob[offset:offset + page_bytes])
            for offset in range(0, len(blob), page_bytes)]


def join_pages(pages: Sequence[bytes]) -> bytes:
    """Reassemble segments (head first, overflow in page order)."""
    if not pages:
        raise ProtocolError("a stored share has no segments; the store is torn")
    return b"".join(pages)
