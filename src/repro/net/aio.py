"""Asyncio socket transport with coalesced frontier rounds.

This module is the serving tentpole on top of the transport-agnostic
:class:`~repro.net.engine.ServingCore`:

* :class:`AsyncSearchServer` multiplexes many client sessions over one
  event loop.  Frames are length-prefixed (:mod:`repro.net.framing`) and
  carry the unchanged v1–v3 message encodings, so any framed client —
  the blocking :class:`~repro.net.channel.SocketChannel`, the async
  :class:`AsyncServerInterface`, or a from-spec implementation of
  ``docs/protocol.md`` — talks to it.  v3 update batches
  (:class:`~repro.net.messages.UpdateRequest`) need no transport support
  of their own: they route through the executor like any non-frontier
  request and serialise on the document lock inside
  :class:`~repro.net.engine.ServingCore`, so a coalesced tick never
  observes a half-applied batch.

* The headline optimisation: concurrent
  :class:`~repro.net.messages.FrontierRequest` s are not handled one by
  one.  Every frontier request that arrives while the previous batch is
  being evaluated queues up in the coalescer, and the whole tick is
  answered through :meth:`~repro.net.engine.ServingCore.frontier_batch`
  — **one** lock acquisition per document and **one** batched
  ``evaluate_many`` store pass per distinct query point for the entire
  batch.  N sessions descending the same document at the same points
  therefore cost roughly one session's worth of share evaluations
  instead of N.  Responses are bit-identical to per-request handling
  (share evaluation is deterministic per (node, point)), which the test
  suite asserts.

* Sessions are pipelined: the reader keeps accepting frames while
  earlier requests are still being evaluated, and responses are written
  strictly in request order.  A client may then overlap its own share
  generation with server evaluation (see
  :meth:`AsyncServerInterface.begin_frontier`).

Request handling runs in a thread-pool executor so the event loop stays
responsive for frame I/O; errors are reported in-band as
:class:`~repro.net.messages.ErrorResponse` frames, so one bad request
does not kill a session (an unframeable byte stream does — there is no
way to resynchronise).
"""

from __future__ import annotations

import asyncio
import threading
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

from collections import deque

from ..core.query import FrontierResult
from ..errors import (
    ProtocolError,
    ReproError,
    ServerBusyError,
    TransientServerError,
)
from .channel import ChannelStats
from .engine import ServingCore
from .framing import (
    FRAME_HEADER_BYTES,
    MAX_FRAME_BYTES,
    FrameAssembler,
    encode_frame,
)
from .messages import (
    SUPPORTED_PROTOCOL_VERSIONS,
    BusyResponse,
    ErrorResponse,
    FrontierRequest,
    FrontierResponse,
    HelloRequest,
    HelloResponse,
    Message,
    PruneNotice,
    StructureRequest,
    StructureResponse,
    decode_message,
)
from .server import SearchServer

__all__ = [
    "AsyncSearchServer",
    "AsyncServerInterface",
    "AsyncServerHandle",
    "start_async_server",
]


def _raise_in_band_failure(response: Message) -> None:
    """Re-raise the server's in-band failure replies as their exceptions."""
    if isinstance(response, BusyResponse):
        raise ServerBusyError(
            f"the server shed the request (retry after "
            f"{response.retry_after_s}s)",
            retry_after_s=response.retry_after_s)
    if isinstance(response, ErrorResponse):
        if response.retryable:
            raise TransientServerError(response.error)
        raise ProtocolError(response.error)


class AsyncSearchServer:
    """Asyncio TCP server multiplexing framed sessions over one event loop.

    ``core`` may be a :class:`~repro.net.engine.ServingCore` (shared with
    other transports) or anything :class:`~repro.net.server.SearchServer`
    accepts as a document source.  All CPU-bound message handling runs in
    the event loop's default thread-pool executor; frontier requests take
    the coalescing path described in the module docstring.
    """

    def __init__(self, core: Union[ServingCore, object],
                 host: str = "127.0.0.1", port: int = 0,
                 max_frame_bytes: int = MAX_FRAME_BYTES,
                 queue_limit: int = 0,
                 busy_retry_after_s: float = 0.05,
                 session_timeout_s: Optional[float] = 300.0,
                 drain_timeout_s: float = 10.0,
                 tick_size: int = 0) -> None:
        self.core = core if isinstance(core, ServingCore) else SearchServer(core)
        self.host = host
        self.requested_port = port
        self.max_frame_bytes = max_frame_bytes
        #: Coalescer backlog bound; ``0`` means unbounded.  The threshold
        #: is enforced against the live queue-depth *gauge* (the same
        #: number operators scrape): a frontier request arriving while
        #: the gauge is at the limit is shed with an in-band
        #: :class:`~repro.net.messages.BusyResponse` carrying
        #: ``busy_retry_after_s`` — graceful degradation, not a dropped
        #: connection.
        self.queue_limit = int(queue_limit)
        self.busy_retry_after_s = float(busy_retry_after_s)
        #: Cap on how many queued frontier requests one coalesced tick
        #: drains; ``0`` means "everything queued" (the adaptive
        #: default).  ``1`` disables coalescing entirely — the knob the
        #: BENCH_3/BENCH_7 tick-size sweeps turn.
        self.tick_size = int(tick_size)
        #: Per-session read/write inactivity bound; ``None`` disables it.
        #: A session that neither sends a parseable frame nor accepts a
        #: response within the bound is dropped, so one stuck peer cannot
        #: pin session resources forever.
        self.session_timeout_s = session_timeout_s
        #: How long :meth:`stop` waits for in-flight requests to finish
        #: before cancelling what remains.
        self.drain_timeout_s = float(drain_timeout_s)
        #: Per-session byte/round-trip accounting, in accept order.  Bounded
        #: so a long-lived daemon does not accumulate one entry per
        #: connection ever made; the newest sessions win.
        self.session_stats: Deque[ChannelStats] = deque(maxlen=4096)
        # Coalescer accounting lives in the serving stack's metrics
        # registry; the attribute API below is read-only views over it.
        metrics = self.core.metrics
        self._shed = metrics.counter("coalescer_shed_total")
        self._batches = metrics.counter("coalescer_batches_total")
        self._batched_requests = metrics.counter("coalescer_requests_total")
        self._largest_batch = metrics.gauge("coalescer_largest_batch")
        #: Live backlog of the coalescer queue; drives the backpressure
        #: decision in :meth:`_submit_frontier`.
        self._queue_depth = metrics.gauge("coalescer_queue_depth")
        self._bytes_in = metrics.counter("transport_bytes_to_server",
                                         transport="async")
        self._bytes_out = metrics.counter("transport_bytes_to_client",
                                          transport="async")
        self._server: Optional[asyncio.AbstractServer] = None
        self._queue: Optional[asyncio.Queue] = None
        self._coalescer_task: Optional[asyncio.Task] = None
        self._sessions: set = set()
        #: Outstanding per-request handler tasks (for graceful draining).
        self._inflight: set = set()

    # -- registry-backed accounting views ---------------------------------------------
    @property
    def shed_requests(self) -> int:
        """Requests shed with a busy reply (backpressure)."""
        return self._shed.value

    @property
    def coalesced_batches(self) -> int:
        """How many coalesced store passes the server ran."""
        return self._batches.value

    @property
    def coalesced_requests(self) -> int:
        """How many frontier requests those passes answered."""
        return self._batched_requests.value

    @property
    def largest_batch(self) -> int:
        """Largest number of frontier requests answered in one pass."""
        return int(self._largest_batch.value)

    @property
    def queue_depth(self) -> int:
        """Live coalescer backlog (the scraped gauge's current value)."""
        return int(self._queue_depth.value)

    # -- lifecycle -------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound TCP port (only valid after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise ProtocolError("the async server is not listening")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "AsyncSearchServer":
        """Bind the listener and start the coalescer (returns self).

        The queue itself is unbounded; the backpressure bound is enforced
        in :meth:`_submit_frontier` against the queue-depth gauge so the
        shed decision and the scraped number can never disagree.
        """
        self._queue = asyncio.Queue()
        self._coalescer_task = asyncio.create_task(self._coalesce_forever())
        self._server = await asyncio.start_server(
            self._handle_session, self.host, self.requested_port)
        return self

    async def serve_forever(self) -> None:
        """Run until cancelled (used by ``repro.cli serve --async``)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain in-flight rounds, close.

        The listener closes first (no new sessions), then in-flight
        request handling gets up to ``drain_timeout_s`` to produce its
        responses — a round that already cost a store pass is answered,
        not thrown away — and only then are the remaining session tasks
        cancelled and the coalescer stopped.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._inflight and self.drain_timeout_s > 0:
            await asyncio.wait(list(self._inflight),
                               timeout=self.drain_timeout_s)
        for task in list(self._sessions):
            task.cancel()
        if self._sessions:
            await asyncio.gather(*self._sessions, return_exceptions=True)
        if self._coalescer_task is not None:
            assert self._queue is not None
            await self._queue.put(None)
            await self._coalescer_task
            self._coalescer_task = None

    # -- the coalescer ---------------------------------------------------------------
    async def _submit_frontier(self, message: FrontierRequest) -> Message:
        """Queue a frontier request for the next coalesced pass.

        With a bounded queue, a full coalescer backlog sheds the request
        via an in-band busy reply instead of queueing unboundedly: the
        client's session (and its negotiated state) survives, and the
        carried retry-after hint paces its retry.
        """
        assert self._queue is not None
        if self.queue_limit and self._queue_depth.value >= self.queue_limit:
            self._shed.inc()
            self.core.count_transport_shed(message, reason="backpressure")
            return BusyResponse(retry_after_s=self.busy_retry_after_s)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._queue.put_nowait((message, future))
        self._queue_depth.inc()
        return await future

    async def _coalesce_forever(self) -> None:
        """Drain the frontier queue in ticks: everything queued, one pass.

        While a pass is being evaluated in the executor, newly arriving
        requests pile up in the queue and form the next tick's batch —
        under concurrent load the batch size converges on the number of
        active sessions without any timer.  A non-zero :attr:`tick_size`
        caps the drain (``1`` disables coalescing) so the tick-size
        sweeps can measure what the batching is actually worth.
        """
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            item = await self._queue.get()
            if item is None:
                return
            self._queue_depth.dec()
            batch: List[Tuple[FrontierRequest, asyncio.Future]] = [item]
            while self.tick_size <= 0 or len(batch) < self.tick_size:
                try:
                    extra = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is None:
                    await self._finish_batch(loop, batch)
                    return
                self._queue_depth.dec()
                batch.append(extra)
            await self._finish_batch(loop, batch)

    async def _finish_batch(self, loop: asyncio.AbstractEventLoop,
                            batch: List[Tuple[FrontierRequest, asyncio.Future]]
                            ) -> None:
        messages = [message for message, _ in batch]
        try:
            # frontier_batch isolates per-request failures itself (a bad
            # request comes back as an in-band ErrorResponse); anything
            # that still escapes is a backend failure affecting the whole
            # tick — it must never kill the coalescer, so it is mapped to
            # error responses here and the loop carries on.
            responses: Sequence[Message] = await loop.run_in_executor(
                None, self.core.frontier_batch, messages)
        except Exception as exc:  # noqa: BLE001 - coalescer must survive
            responses = [ErrorResponse(str(exc)) for _ in batch]
        self._batches.inc()
        self._batched_requests.inc(len(batch))
        if len(batch) > self._largest_batch.value:
            self._largest_batch.set(len(batch))
        for (_, future), response in zip(batch, responses):
            if not future.done():
                future.set_result(response)

    # -- sessions --------------------------------------------------------------------
    async def _handle_session(self, reader: asyncio.StreamReader,
                              writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._sessions.add(task)
            task.add_done_callback(self._sessions.discard)
        stats = ChannelStats()
        self.session_stats.append(stats)
        assembler = FrameAssembler(self.max_frame_bytes)
        pending: asyncio.Queue = asyncio.Queue()
        writer_task = asyncio.create_task(
            self._write_responses(writer, pending, stats))
        try:
            while True:
                read = reader.read(65536)
                if self.session_timeout_s is not None:
                    read = asyncio.wait_for(read, self.session_timeout_s)
                try:
                    chunk = await read
                except asyncio.TimeoutError:
                    break     # idle/stuck session: reclaim its resources
                if not chunk:
                    break
                try:
                    payloads = assembler.feed(chunk)
                except ProtocolError as exc:
                    # Unframeable stream: report once, then drop the
                    # session (there is no resynchronisation point).
                    await pending.put(self._immediate(ErrorResponse(str(exc))))
                    break
                for payload in payloads:
                    stats.bytes_to_server += len(payload)
                    stats.requests += 1
                    self._bytes_in.inc(len(payload))
                    # Pipelining: keep reading while this request is
                    # handled; the writer preserves request order.
                    answer = asyncio.ensure_future(self._answer(payload))
                    self._inflight.add(answer)
                    answer.add_done_callback(self._inflight.discard)
                    await pending.put(answer)
        except (asyncio.CancelledError, ConnectionError):
            pass
        finally:
            await pending.put(None)
            try:
                await writer_task
            except asyncio.CancelledError:
                pass
            except Exception:  # noqa: BLE001 - cleanup must always run
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionError, OSError):
                pass  # stop() cancels sessions mid-close; nothing to flush

    @staticmethod
    def _immediate(message: Message) -> "asyncio.Future":
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        future.set_result(message)
        return future

    async def _answer(self, payload: bytes) -> Message:
        """Handle one framed request; failures become in-band errors.

        Every request — even a cheap structural one — goes through the
        executor: any handler may block on a document lock held by a
        long coalesced pass, and the event loop must keep serving frame
        I/O for every other session while it waits.
        """
        try:
            message = decode_message(payload)
        except ReproError as exc:
            return ErrorResponse(str(exc))
        try:
            if isinstance(message, FrontierRequest):
                return await self._submit_frontier(message)
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(None, self.core.handle, message)
        except asyncio.CancelledError:
            raise
        except ReproError as exc:
            # Preserves the failure class in-band: busy shedding becomes
            # a BusyResponse, transient store failures a retryable error.
            return ServingCore.error_response(exc)
        except Exception as exc:  # noqa: BLE001 - answered in-band
            return ErrorResponse(str(exc))

    async def _write_responses(self, writer: asyncio.StreamWriter,
                               pending: asyncio.Queue,
                               stats: ChannelStats) -> None:
        while True:
            future = await pending.get()
            if future is None:
                return
            response: Message = await future
            try:
                frame = encode_frame(response.encode(), self.max_frame_bytes)
            except ProtocolError as exc:
                # The handler produced a response above the frame limit
                # (e.g. a verification fetch over a huge closure); the
                # session must still get *an* answer in order.
                response = ErrorResponse(
                    f"response exceeds the frame limit: {exc}")
                frame = encode_frame(response.encode(), self.max_frame_bytes)
            writer.write(frame)
            drain = writer.drain()
            if self.session_timeout_s is not None:
                drain = asyncio.wait_for(drain, self.session_timeout_s)
            try:
                await drain
            except asyncio.TimeoutError:
                # The peer stopped reading: drop the session rather than
                # buffer responses for it indefinitely.
                return
            stats.bytes_to_client += len(frame) - FRAME_HEADER_BYTES
            stats.responses += 1
            self._bytes_out.inc(len(frame) - FRAME_HEADER_BYTES)


class AsyncServerInterface:
    """Async-native client session against a framed socket server.

    Mirrors :class:`~repro.net.client.RemoteServerAdapter` method for
    method, with every call a coroutine, and adds
    :meth:`begin_frontier`: the request frame goes out immediately and
    the caller gets a future for the response, so client-side share
    generation for the round overlaps the server's evaluation of it
    (pipelined rounds).  Responses are matched to requests by order —
    the session is the only writer on its connection, and the server
    answers in request order even when it pipelines internally.

    Open with :meth:`open`; close with :meth:`close`.  Byte and
    round-trip totals land in :attr:`stats` (one
    :class:`~repro.net.channel.ChannelStats` per session, as with every
    other transport).
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, ring,
                 document_id: Optional[str] = None,
                 max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self.ring = ring
        self.document_id = document_id
        self.max_frame_bytes = max_frame_bytes
        self.stats = ChannelStats()
        self.protocol_version: Optional[int] = None
        self._reader = reader
        self._writer = writer
        self._assembler = FrameAssembler(max_frame_bytes)
        self._pending: Deque[asyncio.Future] = deque()
        self._pending_prune: List[int] = []
        self._structure: Optional[Tuple[int, int]] = None
        #: Terminal session failure; set once the reader dies so later
        #: requests fail fast instead of hanging on a never-resolved future.
        self._failure: Optional[ProtocolError] = None
        self._reader_task = asyncio.create_task(self._read_responses())

    @classmethod
    async def open(cls, host: str, port: int, ring,
                   document_id: Optional[str] = None,
                   protocol_version: Optional[int] = None,
                   max_frame_bytes: int = MAX_FRAME_BYTES
                   ) -> "AsyncServerInterface":
        """Connect, run the hello negotiation, and return a live session."""
        reader, writer = await asyncio.open_connection(host, port)
        session = cls(reader, writer, ring, document_id=document_id,
                      max_frame_bytes=max_frame_bytes)
        try:
            if protocol_version == 1:
                session.protocol_version = 1   # legacy: no hello exchange in v1
            else:
                versions = (SUPPORTED_PROTOCOL_VERSIONS
                            if protocol_version is None else [protocol_version])
                response = await session._request(HelloRequest(versions),
                                                  HelloResponse)
                if response.version not in versions:
                    raise ProtocolError(
                        f"server negotiated protocol version "
                        f"{response.version}, which this client did not "
                        f"offer ({list(versions)})")
                session.protocol_version = response.version
                if response.root_id is not None:
                    session._structure = (response.root_id,
                                          response.node_count)
        except BaseException:
            await session.close()   # no leaked socket/reader on failed hello
            raise
        return session

    @property
    def batched_rounds(self) -> bool:
        """v2 sessions answer whole frontier rounds in one exchange."""
        return (self.protocol_version or 0) >= 2

    # -- plumbing --------------------------------------------------------------------
    async def _read_responses(self) -> None:
        try:
            while True:
                chunk = await self._reader.read(65536)
                if not chunk:
                    raise ProtocolError("the server closed the connection")
                for payload in self._assembler.feed(chunk):
                    self.stats.bytes_to_client += len(payload)
                    self.stats.responses += 1
                    if not self._pending:
                        raise ProtocolError("unsolicited response frame")
                    future = self._pending.popleft()
                    if not future.done():
                        future.set_result(decode_message(payload))
        except (asyncio.CancelledError, ConnectionError, ProtocolError) as exc:
            cancelled = isinstance(exc, asyncio.CancelledError)
            if not cancelled:
                self._failure = (exc if isinstance(exc, ProtocolError)
                                 else ProtocolError(str(exc)))
            while self._pending:
                future = self._pending.popleft()
                if not future.done():
                    if cancelled:
                        future.cancel()
                    else:
                        future.set_exception(self._failure)

    def _send(self, message: Message) -> "asyncio.Future":
        """Write one request frame now; return a future for its response."""
        if self._failure is not None:
            raise self._failure
        if self._reader_task.done():
            raise ProtocolError("the session is closed")
        if self.document_id is not None:
            message.for_document(self.document_id)
        encoded = message.encode()
        self._writer.write(encode_frame(encoded, self.max_frame_bytes))
        self.stats.bytes_to_server += len(encoded)
        self.stats.requests += 1
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending.append(future)
        return future

    async def _request(self, message: Message, expected: type) -> Message:
        response = await self._send(message)
        await self._drain()
        _raise_in_band_failure(response)
        if not isinstance(response, expected):
            raise ProtocolError(f"unexpected response {response.kind!r}")
        return response

    async def _drain(self) -> None:
        try:
            await self._writer.drain()
        except ConnectionError as exc:
            raise ProtocolError(str(exc)) from exc

    def _take_prunes(self) -> List[int]:
        pending, self._pending_prune = self._pending_prune, []
        return pending

    async def _structure_summary(self) -> Tuple[int, int]:
        if self._structure is None:
            response = await self._request(StructureRequest(), StructureResponse)
            self._structure = (response.root_id, response.node_count)
        return self._structure

    # -- the async ServerInterface surface -------------------------------------------
    async def root_id(self) -> int:
        """Identifier of the root node."""
        return (await self._structure_summary())[0]

    async def node_count(self) -> int:
        """Total number of nodes stored (public)."""
        return (await self._structure_summary())[1]

    async def children_of(self, node_ids: Sequence[int]) -> Dict[int, List[int]]:
        """Public child lists for a batch of nodes."""
        from .messages import ChildrenRequest, ChildrenResponse

        response = await self._request(ChildrenRequest(node_ids),
                                       ChildrenResponse)
        return response.children

    async def evaluate(self, node_ids: Sequence[int], point: int
                       ) -> Dict[int, int]:
        """Server-share evaluations at ``point`` for a batch of nodes."""
        from .messages import EvaluateRequest, EvaluateResponse

        response = await self._request(EvaluateRequest(node_ids, point),
                                       EvaluateResponse)
        return response.values

    async def fetch_polynomials(self, node_ids: Sequence[int]
                                ) -> Dict[int, object]:
        """Full server-share polynomials (used by FULL verification)."""
        from .messages import FetchPolynomialsRequest, FetchPolynomialsResponse

        if self.batched_rounds:
            request = FrontierRequest(prune=self._take_prunes(),
                                      include_children=False,
                                      fetch_polynomials=node_ids)
            response = await self._request(request, FrontierResponse)
            return {node_id: self.ring.from_coefficients(
                        response.polynomials[node_id])
                    for node_id in node_ids}
        response = await self._request(FetchPolynomialsRequest(node_ids),
                                       FetchPolynomialsResponse)
        return {node_id: self.ring.from_coefficients(coeffs)
                for node_id, coeffs in response.coefficients.items()}

    async def fetch_constants(self, node_ids: Sequence[int]) -> Dict[int, int]:
        """Constant coefficients of server shares (CONSTANT_ONLY mode)."""
        from .messages import FetchConstantsRequest, FetchConstantsResponse

        if self.batched_rounds:
            request = FrontierRequest(prune=self._take_prunes(),
                                      include_children=False,
                                      fetch_constants=node_ids)
            response = await self._request(request, FrontierResponse)
            return {node_id: response.constants[node_id]
                    for node_id in node_ids}
        response = await self._request(FetchConstantsRequest(node_ids),
                                       FetchConstantsResponse)
        return response.constants

    async def prune(self, node_ids: Sequence[int]) -> None:
        """Notify dead branches (buffered onto the next v2 request)."""
        if self.batched_rounds:
            self._pending_prune.extend(node_ids)
            return
        await self._request(PruneNotice(node_ids), Message)

    async def update(self, request: "Message") -> "Message":
        """Send one v3 update batch; returns the UpdateResponse.

        The async twin of
        :meth:`~repro.net.client.RemoteServerAdapter.apply_update`: a
        :class:`~repro.net.messages.ConflictResponse` raises
        :class:`~repro.errors.UpdateConflictError` with the conflicting
        ids and current versions, an in-band error raises its mapped
        exception, anything else must be an
        :class:`~repro.net.messages.UpdateResponse`.
        """
        from ..errors import UpdateConflictError
        from .messages import ConflictResponse, UpdateResponse

        if self.protocol_version < 3:
            raise ProtocolError(
                f"remote updates need protocol v3; this session negotiated "
                f"v{self.protocol_version}")
        response = await self._request(request, Message)
        if isinstance(response, ConflictResponse):
            raise UpdateConflictError(
                f"update batch rejected: nodes {response.conflicts} changed "
                "under this client (refetch and rebase)",
                conflicts=response.conflicts, versions=response.versions)
        if not isinstance(response, UpdateResponse):
            raise ProtocolError(f"unexpected response {response.kind!r}")
        return response

    def begin_frontier(self, node_ids: Sequence[int], points: Sequence[int],
                       prune: Sequence[int] = (),
                       include_children: bool = True,
                       lookahead: int = 0) -> "asyncio.Future":
        """Fire a frontier request *now*, answer later (pipelined round).

        The frame is written immediately; the returned future resolves to
        the raw :class:`~repro.net.messages.FrontierResponse`.  Between
        the two the caller is free to evaluate its own shares for the
        round — that client-side work overlaps the server's store pass.
        v2 sessions only: v1 has no frontier message.
        """
        if not self.batched_rounds:
            raise ProtocolError(
                "begin_frontier needs a v2 session; this session speaks "
                f"protocol version {self.protocol_version}")
        self._pending_prune.extend(prune)
        request = FrontierRequest(node_ids, points, prune=self._take_prunes(),
                                  include_children=include_children,
                                  lookahead=lookahead)
        return self._send(request)

    async def frontier_round(self, node_ids: Sequence[int],
                             points: Sequence[int],
                             prune: Sequence[int] = (),
                             include_children: bool = True,
                             lookahead: int = 0) -> FrontierResult:
        """One whole descent round: single exchange on v2, composed on v1."""
        if not self.batched_rounds:
            # v1: compose the per-kind primitives, one exchange each,
            # exactly like the sync RemoteServerAdapter's fallback.
            round_trips = 0
            if prune:
                await self.prune(list(prune))
                round_trips += 1
            evaluations: Dict[int, Dict[int, int]] = {}
            for point in points:
                evaluations[point] = await self.evaluate(node_ids, point)
                round_trips += 1
            children: Dict[int, List[int]] = {}
            if include_children and node_ids:
                children = await self.children_of(node_ids)
                round_trips += 1
            return FrontierResult(evaluations, children, round_trips)
        future = self.begin_frontier(node_ids, points, prune=prune,
                                     include_children=include_children,
                                     lookahead=lookahead)
        await self._drain()
        response = await future
        _raise_in_band_failure(response)
        if not isinstance(response, FrontierResponse):
            raise ProtocolError(f"unexpected response {response.kind!r}")
        return FrontierResult(response.evaluations, response.children,
                              round_trips=1)

    async def verification_bundle(self, node_ids: Sequence[int],
                                  constants_only: bool = False
                                  ) -> Tuple[Dict[int, List[int]],
                                             Dict[int, object], int]:
        """Child lists plus share data for ``node_ids`` and their children."""
        if not self.batched_rounds:
            # v1: a children exchange plus a fetch over the closure.
            children = await self.children_of(node_ids)
            needed = sorted(set(node_ids) | {
                child for node_id in node_ids for child in children[node_id]})
            if constants_only:
                data: Dict[int, object] = dict(
                    await self.fetch_constants(needed))
            else:
                data = dict(await self.fetch_polynomials(needed))
            return children, data, 2
        request = FrontierRequest(
            prune=self._take_prunes(), include_children=True,
            fetch_constants=node_ids if constants_only else (),
            fetch_polynomials=() if constants_only else node_ids)
        response = await self._request(request, FrontierResponse)
        if constants_only:
            data = dict(response.constants)
        else:
            data = {node_id: self.ring.from_coefficients(coeffs)
                    for node_id, coeffs in response.polynomials.items()}
        children = {node_id: response.children[node_id] for node_id in node_ids}
        return children, data, 1

    async def close(self) -> None:
        """Tear the session down (cancels the response reader)."""
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class AsyncServerHandle:
    """A running :class:`AsyncSearchServer` on a background event loop.

    Lets synchronous code (the CLI, BENCH_3, pytest) start and stop the
    asyncio transport without owning an event loop.  Use as a context
    manager or call :meth:`stop` explicitly.
    """

    def __init__(self, server: AsyncSearchServer,
                 loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def port(self) -> int:
        """The TCP port the server listens on."""
        return self.server.port

    def stop(self) -> None:
        """Stop the server and join the loop thread."""
        if self._thread.is_alive():
            asyncio.run_coroutine_threadsafe(
                self.server.stop(), self._loop).result(timeout=10.0)
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)

    def __enter__(self) -> "AsyncServerHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def start_async_server(core: Union[ServingCore, object],
                       host: str = "127.0.0.1", port: int = 0,
                       max_frame_bytes: int = MAX_FRAME_BYTES,
                       queue_limit: int = 0,
                       busy_retry_after_s: float = 0.05,
                       session_timeout_s: Optional[float] = 300.0,
                       drain_timeout_s: float = 10.0,
                       tick_size: int = 0) -> AsyncServerHandle:
    """Run an :class:`AsyncSearchServer` on a fresh background event loop."""
    loop = asyncio.new_event_loop()
    server = AsyncSearchServer(core, host=host, port=port,
                               max_frame_bytes=max_frame_bytes,
                               queue_limit=queue_limit,
                               busy_retry_after_s=busy_retry_after_s,
                               session_timeout_s=session_timeout_s,
                               drain_timeout_s=drain_timeout_s,
                               tick_size=tick_size)
    started = threading.Event()
    failure: List[BaseException] = []

    def run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # pragma: no cover - bind failures
            failure.append(exc)
            started.set()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    thread = threading.Thread(target=run, name="async-search-server",
                              daemon=True)
    thread.start()
    started.wait(timeout=10.0)
    if failure:
        raise failure[0]
    return AsyncServerHandle(server, loop, thread)
