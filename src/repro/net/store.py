"""Pluggable server-side share-store backends.

The server engine does not care *where* its half of the shared polynomial
tree lives; it talks to a :class:`ShareStore`.  Two backends ship with the
reproduction:

* :class:`InMemoryShareStore` — wraps a
  :class:`~repro.core.share_tree.ServerShareTree`; everything lives in
  process memory (the PR-1 behaviour, and still the fastest option);
* :class:`SQLiteShareStore` — a durable single-file backend that keeps the
  node table on disk and loads share polynomials *lazily* through an LRU
  cache, so a server can host documents far larger than its memory and
  restart without a separate load step.

Both expose the same read/write surface as ``ServerShareTree`` (the store
API is a strict superset of what :class:`~repro.net.server.SearchServer`
and :class:`~repro.core.updates.UpdatableTree` need), so every code path —
queries, verification, dynamic updates — works identically against either
backend.  Tests assert bit-identical query results across backends.

Since format ``share-store-sqlite-v2`` the durable backend is also
**crash-safe under multi-mutation updates**: every
:class:`~repro.core.updates.UpdatableTree` operation travels as one
:meth:`ShareStore.transaction` batch, which SQLite applies through the
write-ahead update log of :mod:`repro.net.wal` (intent record, per-mutation
apply, commit marker, checkpoint — replayed or rolled back on open).
Coefficients are stored as binary pages (:mod:`repro.net.pages`) instead
of the v1 JSON text rows; v1 files are migrated losslessly with
:func:`migrate_share_store` (``python -m repro.cli migrate-store``).
"""

from __future__ import annotations

import abc
import json
import os
import sqlite3
import threading
import time
from collections import OrderedDict
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..algebra.poly import Polynomial
from ..algebra.quotient import EncodingRing
from ..algebra.vkernels import VecFpKernel, numpy_or_none
from ..core.share_tree import ServerShareTree
from ..errors import ProtocolError, SharingError
from . import wal
from .pages import (
    DEFAULT_PAGE_BYTES,
    decode_coefficients,
    decode_coefficients_batch,
    encode_coefficients,
    join_pages,
)

__all__ = [
    "ShareStore",
    "StoreTransaction",
    "InMemoryShareStore",
    "SQLiteShareStore",
    "as_share_store",
    "open_share_store",
    "migrate_share_store",
    "write_v1_share_store",
]

#: Format marker written into every SQLite store; unknown formats are
#: rejected loudly (same spirit as the client's ``share_derivation`` marker).
SQLITE_STORE_FORMAT = "share-store-sqlite-v2"

#: Advisory memory-map budget for the SQLite page cache (256 MiB): batched
#: reads of the overflow-page region stream from the mapped file instead of
#: going through read() copies.
SQLITE_MMAP_BYTES = 256 * 1024 * 1024

#: The PR-2 format (JSON coefficient text rows, rowid child order).  Files
#: in this format are readable only through :func:`migrate_share_store`.
LEGACY_SQLITE_STORE_FORMAT = "share-store-sqlite-v1"

_SQLITE_MAGIC = b"SQLite format 3\x00"

#: SQLite caps host parameters per statement; stay well under the limit.
_SQL_CHUNK = 500


class ShareStore(abc.ABC):
    """Storage backend for one document's server share tree."""

    #: The encoding ring of the stored polynomials.
    ring: EncodingRing

    # Metrics instruments, bound when the store becomes a hosted document
    # (:meth:`bind_metrics`); ``None`` until then, so an unhosted store
    # pays nothing.
    _metrics = None
    _metrics_document = ""
    _txn_seconds = None
    _cache_hits = None
    _cache_misses = None

    # -- observability ----------------------------------------------------------------
    def bind_metrics(self, metrics: Any, document_id: str) -> None:
        """Emit this store's operational signals into ``metrics``.

        Called by :meth:`~repro.net.engine.DocumentRegistry.add` when the
        store is hosted.  Binds transaction latency
        (``store_transaction_seconds``) and page-cache hit/miss counters
        (``store_cache_hits_total``/``store_cache_misses_total``), all
        labelled with the hosting document; durable backends additionally
        report recovery events (``store_recovery_total``).
        """
        self._metrics = metrics
        self._metrics_document = str(document_id)
        self._txn_seconds = metrics.histogram(
            "store_transaction_seconds", document=self._metrics_document)
        self._cache_hits = metrics.counter(
            "store_cache_hits_total", document=self._metrics_document)
        self._cache_misses = metrics.counter(
            "store_cache_misses_total", document=self._metrics_document)

    def _record_recovery(self, result: str) -> None:
        """Count one WAL recovery outcome ("replayed"/"rolled-back")."""
        if self._metrics is not None and result != "clean":
            self._metrics.counter(
                "store_recovery_total", document=self._metrics_document,
                result=result).inc()

    # -- read side (what the query protocol needs) ---------------------------------
    @property
    @abc.abstractmethod
    def root_id(self) -> Optional[int]:
        """Identifier of the root node (``None`` for an empty store)."""

    @abc.abstractmethod
    def node_count(self) -> int:
        """Number of nodes stored."""

    @abc.abstractmethod
    def node_ids(self) -> List[int]:
        """All node identifiers, sorted."""

    @abc.abstractmethod
    def child_ids(self, node_id: int) -> List[int]:
        """Public child list of a node (document order)."""

    @abc.abstractmethod
    def parent_id(self, node_id: int) -> Optional[int]:
        """Public parent of a node."""

    @abc.abstractmethod
    def share_of(self, node_id: int) -> Polynomial:
        """The stored share polynomial of a node."""

    @abc.abstractmethod
    def __contains__(self, node_id: int) -> bool:
        """Whether the store holds a node with this id."""

    def max_node_id(self) -> Optional[int]:
        """Largest stored node id (``None`` for an empty store).

        Used by :class:`~repro.core.updates.UpdatableTree` to allocate
        fresh ids with one query per batch instead of one full id scan per
        inserted node.  Backends with an index on the id column should
        override this.
        """
        ids = self.node_ids()
        return max(ids) if ids else None

    # -- write side (outsourcing and dynamic updates) ------------------------------
    @abc.abstractmethod
    def add_node(self, node_id: int, parent_id: Optional[int],
                 share: Polynomial) -> None:
        """Insert one node's share; parents must precede children."""

    @abc.abstractmethod
    def replace_share(self, node_id: int, share: Polynomial) -> None:
        """Overwrite the share of an existing node (dynamic updates)."""

    @abc.abstractmethod
    def remove_subtree(self, node_id: int) -> List[int]:
        """Remove a node and every descendant; returns the removed ids."""

    # -- transactional batches -------------------------------------------------------
    def transaction(self) -> "StoreTransaction":
        """Open a buffered mutation batch (a context manager).

        Mutations recorded on the returned :class:`StoreTransaction` are
        validated immediately against the pre-batch state but applied only
        when the ``with`` block exits cleanly, through
        :meth:`apply_batch` — on the durable backend that application is
        atomic across crashes (write-ahead logged), which is what makes
        multi-node dynamic updates safe.
        """
        return StoreTransaction(self)

    def apply_batch(self, ops: Sequence[Tuple]) -> None:
        """Apply a validated batch of mutation ops.

        The base implementation simply replays the ops through the
        single-mutation methods; it provides batching semantics (one call
        site, one lock round on backends that lock per call) but no crash
        atomicity — memory-backed stores have no durable state to tear.
        """
        started = time.perf_counter()
        try:
            self._apply_ops(ops)
        finally:
            if self._txn_seconds is not None:
                self._txn_seconds.observe(time.perf_counter() - started)

    def _apply_ops(self, ops: Sequence[Tuple]) -> None:
        for op in ops:
            kind = op[0]
            if kind == "add":
                _, node_id, parent_id, share = op
                self.add_node(node_id, parent_id, share)
            elif kind == "replace":
                _, node_id, share = op
                self.replace_share(node_id, share)
            elif kind == "remove_subtree":
                _, node_id, expected = op
                removed = self.remove_subtree(node_id)
                if sorted(removed) != sorted(expected):
                    raise SharingError(
                        f"subtree {node_id} changed between transaction "
                        "recording and apply; refusing the batch")
            else:
                raise ProtocolError(f"unknown batch op {kind!r}")

    # -- generic helpers (shared by every backend) ----------------------------------
    def evaluate(self, node_id: int, point: int) -> int:
        """Evaluate the stored share of a node at a query point."""
        return self.ring.evaluate(self.share_of(node_id), point)

    def evaluate_many(self, node_ids: Sequence[int], point: int) -> Dict[int, int]:
        """Evaluate many node shares at one point (one batched pass)."""
        shares = [self.share_of(node_id) for node_id in node_ids]
        return dict(zip(node_ids, self.ring.evaluate_many(shares, point)))

    def depth_of(self, node_id: int) -> int:
        """Depth of a node computed from the public structure."""
        depth = 0
        current = self.parent_id(node_id)
        while current is not None:
            depth += 1
            current = self.parent_id(current)
        return depth

    def storage_bits(self) -> int:
        """Measured storage of all share polynomials (the §5 server cost)."""
        return sum(self.ring.element_storage_bits(self.share_of(node_id))
                   for node_id in self.node_ids())

    def close(self) -> None:
        """Release backend resources (no-op for memory-backed stores)."""

    def __len__(self) -> int:
        return len(self.node_ids())

    def __enter__(self) -> "ShareStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class StoreTransaction:
    """A buffered batch of mutations against one :class:`ShareStore`.

    Mutations are validated against the **pre-batch** state when recorded
    and applied together on clean exit; an exception inside the ``with``
    block discards the batch without touching the store.  Reads performed
    while the transaction is open still see the pre-batch state — callers
    (:class:`~repro.core.updates.UpdatableTree`) therefore compute every
    new polynomial first and only then record the writes.

    Structural ops may not overlap within one batch: a node removed by the
    batch cannot also be added or replaced by it (and vice versa).  The
    update layer never needs that, and refusing it keeps the write-ahead
    images unambiguous.
    """

    def __init__(self, store: ShareStore) -> None:
        self._store = store
        self._ops: List[Tuple] = []
        self._added: set = set()
        self._replaced: set = set()
        self._removed: set = set()
        self._added_root = False
        self._done = False

    # -- recording -----------------------------------------------------------------
    def _open_check(self, node_id: int) -> None:
        if self._done:
            raise ProtocolError("this store transaction has already finished")
        if node_id in self._removed:
            raise SharingError(
                f"node {node_id} was removed earlier in this transaction")

    def add_node(self, node_id: int, parent_id: Optional[int],
                 share: Polynomial) -> None:
        """Buffer one node insertion (parents must precede children)."""
        self._open_check(node_id)
        if node_id in self._added or node_id in self._store:
            raise SharingError(f"duplicate node id {node_id}")
        if parent_id is None:
            if self._store.root_id is not None or self._added_root:
                raise SharingError("the share tree already has a root")
            self._added_root = True
        elif parent_id not in self._added and (
                parent_id not in self._store or parent_id in self._removed):
            raise SharingError(f"parent {parent_id} of node {node_id} is unknown")
        self._added.add(node_id)
        self._ops.append(("add", node_id, parent_id, share))

    def replace_share(self, node_id: int, share: Polynomial) -> None:
        """Buffer one share overwrite of an existing (or just-added) node."""
        self._open_check(node_id)
        if node_id not in self._added and node_id not in self._store:
            raise SharingError(f"unknown node id {node_id}")
        self._replaced.add(node_id)
        self._ops.append(("replace", node_id, share))

    def remove_subtree(self, node_id: int) -> List[int]:
        """Buffer the removal of a whole subtree; returns the doomed ids."""
        self._open_check(node_id)
        if node_id not in self._store:
            raise SharingError(f"unknown node id {node_id}")
        if self._store.parent_id(node_id) is None:
            raise SharingError("the root node cannot be removed")
        removed: List[int] = []
        stack = [node_id]
        while stack:
            current = stack.pop()
            removed.append(current)
            stack.extend(self._store.child_ids(current))
        overlap = set(removed) & (self._added | self._replaced)
        if overlap:
            raise SharingError(
                f"nodes {sorted(overlap)} were touched earlier in this "
                "transaction and cannot also be removed by it")
        self._removed.update(removed)
        self._ops.append(("remove_subtree", node_id, removed))
        return removed

    # -- lifecycle -----------------------------------------------------------------
    @property
    def ops(self) -> List[Tuple]:
        """The buffered ops (recorded order)."""
        return list(self._ops)

    def __enter__(self) -> "StoreTransaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._done:
            return
        self._done = True
        if exc_type is None and self._ops:
            self._store.apply_batch(self._ops)


class InMemoryShareStore(ShareStore):
    """A :class:`ShareStore` view over an in-memory ``ServerShareTree``."""

    def __init__(self, tree: ServerShareTree) -> None:
        #: The wrapped tree (shared, not copied).
        self.tree = tree
        self.ring = tree.ring

    @property
    def root_id(self) -> Optional[int]:
        return self.tree.root_id

    def node_count(self) -> int:
        return self.tree.node_count()

    def node_ids(self) -> List[int]:
        return self.tree.node_ids()

    def max_node_id(self) -> Optional[int]:
        return self.tree.max_node_id()

    def child_ids(self, node_id: int) -> List[int]:
        return self.tree.child_ids(node_id)

    def parent_id(self, node_id: int) -> Optional[int]:
        return self.tree.parent_id(node_id)

    def share_of(self, node_id: int) -> Polynomial:
        return self.tree.share_of(node_id)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self.tree

    def add_node(self, node_id: int, parent_id: Optional[int],
                 share: Polynomial) -> None:
        self.tree.add_node(node_id, parent_id, share)

    def replace_share(self, node_id: int, share: Polynomial) -> None:
        self.tree.replace_share(node_id, share)

    def remove_subtree(self, node_id: int) -> List[int]:
        return self.tree.remove_subtree(node_id)

    def evaluate(self, node_id: int, point: int) -> int:
        return self.tree.evaluate(node_id, point)

    def evaluate_many(self, node_ids: Sequence[int], point: int) -> Dict[int, int]:
        """Batched evaluation; rides the vectorized kernel tier when active.

        The resident shares are scattered into one padded int64 matrix and
        evaluated in a single :meth:`VecFpKernel.evaluate_matrix` pass —
        the same point coercion and final reduction as
        :meth:`EncodingRing.evaluate_many`, so the result stays
        bit-identical to the generic path (asserted by the tier-identity
        suite).  Without numpy, on the flat/generic tiers, or for rings
        beyond the native width, this falls back to the wrapped tree's
        batched path unchanged.
        """
        kernel = self.ring.coefficient_ring.kernel()
        if node_ids and isinstance(kernel, VecFpKernel):
            shares = [self.tree.share_of(node_id) for node_id in node_ids]
            longest = max(len(share.coeffs) for share in shares)
            if longest:
                np = numpy_or_none()
                matrix = np.zeros((len(shares), longest), dtype=np.int64)
                for index, share in enumerate(shares):
                    if share.coeffs:
                        matrix[index, :len(share.coeffs)] = share.coeffs
                coerced = self.ring.coefficient_ring.coerce(point)
                values = kernel.evaluate_matrix(matrix, coerced)
                modulus = self.ring.evaluation_modulus(point)
                if modulus is not None:
                    values = [value % modulus for value in values]
                return dict(zip(node_ids, values))
        return self.tree.evaluate_many(node_ids, point)

    def storage_bits(self) -> int:
        return self.tree.storage_bits()

    def __repr__(self) -> str:
        return f"<InMemoryShareStore nodes={self.tree.node_count()}>"


class SQLiteShareStore(ShareStore):
    """Durable single-file backend with lazy share loading (format v2).

    The structure table (``node_id``, ``parent``, explicit sibling order
    ``ord``) and the binary coefficient pages (:mod:`repro.net.pages`)
    live in SQLite under ``PRAGMA journal_mode=WAL``; share polynomials
    are decoded on demand and kept in a bounded LRU cache, so opening a
    store does *not* materialise the tree and resident memory stays flat
    in the document size.  All access is serialised by an internal lock;
    the connection is shared across threads.

    Single mutations are atomic SQLite transactions.  Multi-mutation
    batches (:meth:`transaction` / :meth:`apply_batch`) additionally go
    through the application write-ahead log of :mod:`repro.net.wal`; an
    interrupted batch is replayed or rolled back on the next open, and
    ``last_recovery`` reports which of the two happened.
    """

    def __init__(self, path: str, ring: Optional[EncodingRing] = None,
                 cache_size: int = 4096,
                 page_bytes: int = DEFAULT_PAGE_BYTES) -> None:
        # Imported here: storage.py imports this module at load time.
        from .storage import ring_from_dict, ring_to_dict

        self.path = path
        self.cache_size = cache_size
        # Entries are Polynomials, or decoded int64 coefficient rows when
        # the vectorized read path filled them; `_entry_share` converts on
        # first structural access and replaces the entry in place.
        self._cache: "OrderedDict[int, Any]" = OrderedDict()
        self._lock = threading.RLock()
        #: Test-only crash-point hook; called with an increasing step index
        #: at every batch crash point (after intent, after each mutation,
        #: after the commit marker).  Raising from it simulates dying there.
        self.fault_injection_hook = None
        #: What opening this file required: "clean", "replayed" or "rolled-back".
        self.last_recovery = "clean"
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        # Map the database read-only into the address space: large batched
        # SELECTs over the overflow-page region then stream straight from
        # the page cache's mmap view instead of read() copies.  SQLite
        # treats the pragma as advisory, so this is a no-op where mmap is
        # unavailable.
        self._conn.execute(f"PRAGMA mmap_size={SQLITE_MMAP_BYTES}")
        existing = self._conn.execute(
            "SELECT name FROM sqlite_master WHERE type='table' AND name='meta'"
        ).fetchone()
        if existing:
            stored_format = self._meta("format")
            if stored_format == LEGACY_SQLITE_STORE_FORMAT:
                self._conn.close()
                raise ProtocolError(
                    f"share store {path!r} uses the legacy JSON-row format "
                    f"{LEGACY_SQLITE_STORE_FORMAT!r}; migrate it losslessly "
                    "with `python -m repro.cli migrate-store PATH` and reopen")
            if stored_format != SQLITE_STORE_FORMAT:
                self._conn.close()
                raise ProtocolError(
                    f"share store {path!r} uses format {stored_format!r} but this "
                    f"version reads {SQLITE_STORE_FORMAT!r}; refusing to guess")
            self.ring = ring_from_dict(json.loads(self._meta("ring")))
            if ring is not None and ring_to_dict(ring) != ring_to_dict(self.ring):
                self._conn.close()
                raise ProtocolError(
                    f"share store {path!r} was written for ring {self.ring.name} "
                    f"but ring {ring.name} was requested")
            self.page_bytes = int(self._meta("page_bytes") or DEFAULT_PAGE_BYTES)
            self.last_recovery = wal.recover(self._conn, self.page_bytes)
        else:
            if ring is None:
                self._conn.close()
                raise ProtocolError(
                    f"{path!r} is not an existing share store; creating one "
                    "requires an encoding ring")
            self.ring = ring
            self.page_bytes = page_bytes
            with self._conn:
                self._conn.execute(
                    "CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT)")
                self._conn.execute(
                    "CREATE TABLE nodes (node_id INTEGER PRIMARY KEY, "
                    "parent INTEGER, ord INTEGER NOT NULL, "
                    "head BLOB NOT NULL)")
                self._conn.execute("CREATE INDEX nodes_parent ON nodes (parent)")
                self._conn.execute(
                    "CREATE TABLE pages (node_id INTEGER NOT NULL, "
                    "page_no INTEGER NOT NULL, payload BLOB NOT NULL, "
                    "PRIMARY KEY (node_id, page_no)) WITHOUT ROWID")
                wal.ensure_wal_table(self._conn)
                self._set_meta("format", SQLITE_STORE_FORMAT)
                self._set_meta("ring", json.dumps(ring_to_dict(ring),
                                                  separators=(",", ":")))
                self._set_meta("page_bytes", str(page_bytes))
        self._next_ord = self._max_ord() + 1

    # -- construction ---------------------------------------------------------------
    @classmethod
    def from_tree(cls, path: str, tree: ServerShareTree,
                  cache_size: int = 4096,
                  page_bytes: int = DEFAULT_PAGE_BYTES) -> "SQLiteShareStore":
        """Create (or overwrite) a store file from an in-memory share tree."""
        if os.path.exists(path):
            os.remove(path)
        store = cls(path, ring=tree.ring, cache_size=cache_size,
                    page_bytes=page_bytes)
        with store._lock, store._conn:
            for ord_, node_id in enumerate(store._preorder(tree)):
                wal.upsert_node(store._conn, node_id, tree.parent_id(node_id),
                                ord_)
                wal.write_node_pages(
                    store._conn, node_id,
                    store._encode_share(tree.share_of(node_id)),
                    store.page_bytes)
            store._next_ord = tree.node_count()
        return store

    @staticmethod
    def _preorder(tree: ServerShareTree) -> Iterator[int]:
        if tree.root_id is None:
            return
        stack = [tree.root_id]
        while stack:
            node_id = stack.pop()
            yield node_id
            stack.extend(reversed(tree.child_ids(node_id)))

    @staticmethod
    def _encode_share(share: Polynomial) -> bytes:
        return encode_coefficients([int(c) for c in share.coeffs])

    def _decode_share(self, blob: bytes) -> Polynomial:
        return self.ring.from_coefficients(decode_coefficients(blob))

    # -- meta table -----------------------------------------------------------------
    def _meta(self, key: str) -> Optional[str]:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)).fetchone()
        return None if row is None else row[0]

    def _set_meta(self, key: str, value: str) -> None:
        self._conn.execute(
            "INSERT INTO meta (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET value = excluded.value", (key, value))

    def _max_ord(self) -> int:
        row = self._conn.execute("SELECT MAX(ord) FROM nodes").fetchone()
        return -1 if row is None or row[0] is None else int(row[0])

    # -- read side -------------------------------------------------------------------
    @property
    def root_id(self) -> Optional[int]:
        with self._lock:
            row = self._conn.execute(
                "SELECT node_id FROM nodes WHERE parent IS NULL").fetchone()
        return None if row is None else int(row[0])

    def node_count(self) -> int:
        with self._lock:
            return int(self._conn.execute("SELECT COUNT(*) FROM nodes").fetchone()[0])

    def node_ids(self) -> List[int]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT node_id FROM nodes ORDER BY node_id").fetchall()
        return [int(row[0]) for row in rows]

    def max_node_id(self) -> Optional[int]:
        with self._lock:
            row = self._conn.execute("SELECT MAX(node_id) FROM nodes").fetchone()
        return None if row is None or row[0] is None else int(row[0])

    def child_ids(self, node_id: int) -> List[int]:
        with self._lock:
            self._require(node_id)
            rows = self._conn.execute(
                "SELECT node_id FROM nodes WHERE parent = ? ORDER BY ord",
                (node_id,)).fetchall()
        return [int(row[0]) for row in rows]

    def parent_id(self, node_id: int) -> Optional[int]:
        with self._lock:
            row = self._conn.execute(
                "SELECT parent FROM nodes WHERE node_id = ?", (node_id,)).fetchone()
        if row is None:
            raise SharingError(f"unknown node id {node_id}")
        return None if row[0] is None else int(row[0])

    def _load_blob(self, node_id: int) -> Optional[bytes]:
        row = self._conn.execute(
            "SELECT head FROM nodes WHERE node_id = ?", (node_id,)).fetchone()
        if row is None:
            return None
        rows = self._conn.execute(
            "SELECT payload FROM pages WHERE node_id = ? ORDER BY page_no",
            (node_id,)).fetchall()
        return join_pages([row[0]] + [overflow[0] for overflow in rows])

    def _cache_put(self, node_id: int, entry: Any) -> None:
        if self.cache_size > 0:
            if not isinstance(entry, Polynomial):
                # Decoded rows from a batch decode are views into one group
                # matrix; copy so a cached row never pins its whole batch.
                entry = entry.copy()
            self._cache[node_id] = entry
            if len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)

    def _entry_share(self, node_id: int, entry: Any) -> Polynomial:
        """A cache entry as a Polynomial, upgrading int64 rows in place."""
        if isinstance(entry, Polynomial):
            return entry
        share = self.ring.from_coefficients(entry.tolist())
        if node_id in self._cache:
            self._cache[node_id] = share
        return share

    def share_of(self, node_id: int) -> Polynomial:
        with self._lock:
            entry = self._cache.get(node_id)
            if entry is not None:
                self._cache.move_to_end(node_id)
                if self._cache_hits is not None:
                    self._cache_hits.inc()
                return self._entry_share(node_id, entry)
            if self._cache_misses is not None:
                self._cache_misses.inc()
            blob = self._load_blob(node_id)
            if blob is None:
                raise SharingError(f"unknown node id {node_id}")
            share = self._decode_share(blob)
            self._cache_put(node_id, share)
            return share

    def evaluate_many(self, node_ids: Sequence[int], point: int) -> Dict[int, int]:
        """Evaluate many node shares at one point: one lock round, one
        ``SELECT ... IN`` per chunk of cache misses, one batched ring pass.

        When the ring's kernel is the vectorized tier, cache misses never
        become Python coefficient lists at all: the head+overflow blobs are
        batch-decoded into int64 rows (:func:`decode_coefficients_batch`),
        scattered into one padded matrix together with any cached entries,
        and evaluated in a single :meth:`VecFpKernel.evaluate_matrix` pass —
        one chunked SELECT, one array decode, one batched ring pass.  Any
        fallback condition (no numpy, flat/generic tier, limbs beyond the
        native width) reverts to the decoded-Polynomial path, which remains
        bit-identical.
        """
        ring = self.ring
        kernel = ring.coefficient_ring.kernel()
        vec = kernel if isinstance(kernel, VecFpKernel) else None
        with self._lock:
            entries: Dict[int, Any] = {}
            misses: List[int] = []
            for node_id in node_ids:
                cached = self._cache.get(node_id)
                if cached is not None:
                    self._cache.move_to_end(node_id)
                    entries[node_id] = cached
                elif node_id not in entries:
                    entries[node_id] = None
                    misses.append(node_id)
            if self._cache_hits is not None:
                hits = len(entries) - len(misses)
                if hits:
                    self._cache_hits.inc(hits)
                if misses:
                    self._cache_misses.inc(len(misses))
            if misses:
                blobs: Dict[int, List[bytes]] = {}
                for start in range(0, len(misses), _SQL_CHUNK):
                    chunk = misses[start:start + _SQL_CHUNK]
                    marks = ",".join("?" * len(chunk))
                    rows = self._conn.execute(
                        f"SELECT node_id, head FROM nodes "
                        f"WHERE node_id IN ({marks})", chunk).fetchall()
                    for row_node, head in rows:
                        blobs[int(row_node)] = [head]
                    rows = self._conn.execute(
                        f"SELECT node_id, page_no, payload FROM pages "
                        f"WHERE node_id IN ({marks}) ORDER BY node_id, page_no",
                        chunk).fetchall()
                    for row_node, _, payload in rows:
                        blobs[int(row_node)].append(payload)
                joined: List[bytes] = []
                for node_id in misses:
                    payloads = blobs.get(node_id)
                    if payloads is None:
                        raise SharingError(f"unknown node id {node_id}")
                    joined.append(join_pages(payloads))
                rows64 = (decode_coefficients_batch(joined)
                          if vec is not None else None)
                if rows64 is None:
                    vec = None
                    for node_id, blob in zip(misses, joined):
                        share = self._decode_share(blob)
                        entries[node_id] = share
                        self._cache_put(node_id, share)
                else:
                    for node_id, row in zip(misses, rows64):
                        entries[node_id] = row
                        self._cache_put(node_id, row)
            if vec is not None:
                return dict(zip(node_ids, self._evaluate_rows_locked(
                    vec, node_ids, entries, point)))
            ordered = [self._entry_share(node_id, entries[node_id])
                       for node_id in node_ids]
        return dict(zip(node_ids, ring.evaluate_many(ordered, point)))

    def _evaluate_rows_locked(self, vec: VecFpKernel,
                              node_ids: Sequence[int],
                              entries: Dict[int, Any],
                              point: int) -> List[int]:
        """One padded-matrix evaluation over mixed row/Polynomial entries.

        Mirrors :meth:`EncodingRing.evaluate_many` exactly: same point
        coercion, same final reduction — the property suite asserts the
        results bit-identical to the generic path.
        """
        np = numpy_or_none()
        ring = self.ring
        longest = 0
        for entry in entries.values():
            length = (len(entry.coeffs) if isinstance(entry, Polynomial)
                      else int(entry.size))
            if length > longest:
                longest = length
        matrix = np.zeros((len(node_ids), longest), dtype=np.int64)
        for index, node_id in enumerate(node_ids):
            entry = entries[node_id]
            if isinstance(entry, Polynomial):
                if entry.coeffs:
                    matrix[index, :len(entry.coeffs)] = entry.coeffs
            elif entry.size:
                matrix[index, :entry.size] = entry
        coerced = ring.coefficient_ring.coerce(point)
        values = vec.evaluate_matrix(matrix, coerced)
        modulus = ring.evaluation_modulus(point)
        if modulus is None:
            return values
        return [value % modulus for value in values]

    def __contains__(self, node_id: int) -> bool:
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM nodes WHERE node_id = ?", (node_id,)).fetchone()
        return row is not None

    def bind_metrics(self, metrics: Any, document_id: str) -> None:
        """Bind instruments, back-reporting the open-time recovery outcome.

        A store that replayed or rolled back its application WAL did so
        *before* it was hosted; recording it at bind time means the event
        still shows up in ``store_recovery_total`` for operators.
        """
        super().bind_metrics(metrics, document_id)
        self._record_recovery(self.last_recovery)

    def cached_share_count(self) -> int:
        """How many share polynomials are currently resident (lazy-load probe)."""
        with self._lock:
            return len(self._cache)

    def storage_bits(self) -> int:
        # Stream over the tables instead of share_of() so a full scan does
        # not evict the query working set from the LRU cache.
        with self._lock:
            rows = self._conn.execute(
                "SELECT node_id, head FROM nodes ORDER BY node_id").fetchall()
            overflow_rows = self._conn.execute(
                "SELECT node_id, page_no, payload FROM pages "
                "ORDER BY node_id, page_no").fetchall()
        blobs: Dict[int, List[bytes]] = {int(node_id): [head]
                                         for node_id, head in rows}
        for node_id, _, payload in overflow_rows:
            blobs[int(node_id)].append(payload)
        return sum(self.ring.element_storage_bits(
                       self._decode_share(join_pages(payloads)))
                   for payloads in blobs.values())

    def file_bytes(self) -> int:
        """Current on-disk size of the store file (WAL folded in)."""
        with self._lock:
            self._conn.commit()
            self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        return os.path.getsize(self.path)

    def _require(self, node_id: int) -> None:
        row = self._conn.execute(
            "SELECT 1 FROM nodes WHERE node_id = ?", (node_id,)).fetchone()
        if row is None:
            raise SharingError(f"unknown node id {node_id}")

    # -- write side ------------------------------------------------------------------
    def add_node(self, node_id: int, parent_id: Optional[int],
                 share: Polynomial) -> None:
        share = share if self.ring.is_canonical(share) else self.ring.reduce(share)
        with self._lock:
            if node_id in self:
                raise SharingError(f"duplicate node id {node_id}")
            if parent_id is None:
                if self.root_id is not None:
                    raise SharingError("the share tree already has a root")
            elif parent_id not in self:
                raise SharingError(f"parent {parent_id} of node {node_id} is unknown")
            with self._conn:
                wal.upsert_node(self._conn, node_id, parent_id, self._next_ord)
                wal.write_node_pages(self._conn, node_id,
                                     self._encode_share(share), self.page_bytes)
            self._next_ord += 1
            self._cache_put(node_id, share)

    def replace_share(self, node_id: int, share: Polynomial) -> None:
        share = share if self.ring.is_canonical(share) else self.ring.reduce(share)
        with self._lock:
            if node_id not in self:
                raise SharingError(f"unknown node id {node_id}")
            with self._conn:
                wal.write_node_pages(self._conn, node_id,
                                     self._encode_share(share), self.page_bytes)
            if node_id in self._cache:
                self._cache[node_id] = share

    def remove_subtree(self, node_id: int) -> List[int]:
        with self._lock:
            self._require(node_id)
            if self.parent_id(node_id) is None:
                raise SharingError("the root node cannot be removed")
            removed = self._descendants(node_id)
            with self._conn:
                for current in removed:
                    wal.delete_node(self._conn, current)
            for current in removed:
                self._cache.pop(current, None)
            return removed

    def _descendants(self, node_id: int) -> List[int]:
        removed: List[int] = []
        stack = [node_id]
        while stack:
            current = stack.pop()
            removed.append(current)
            rows = self._conn.execute(
                "SELECT node_id FROM nodes WHERE parent = ? ORDER BY ord",
                (current,)).fetchall()
            stack.extend(int(row[0]) for row in rows)
        return removed

    # -- crash-safe batches ------------------------------------------------------------
    def apply_batch(self, ops: Sequence[Tuple]) -> None:
        """Apply a mutation batch through the write-ahead update log.

        Protocol (each numbered step is one committed SQLite transaction;
        a crash between any two steps is recovered on the next open):

        1. the full intent — ``begin`` marker plus one
           :class:`~repro.net.wal.WalRecord` per mutation with redo *and*
           undo images;
        2..n+1. each mutation, applied to ``nodes``/``pages``;
        n+2. the ``commit`` marker (the batch is now durable);
        n+3. the checkpoint (log cleared).

        If applying raises in-process (I/O error, injected fault), the
        store immediately runs the same recovery the next open would, so a
        *surviving* process also never observes a torn batch.
        """
        if not ops:
            return
        started = time.perf_counter()
        try:
            self._apply_batch_logged(ops)
        finally:
            if self._txn_seconds is not None:
                self._txn_seconds.observe(time.perf_counter() - started)

    def _apply_batch_logged(self, ops: Sequence[Tuple]) -> None:
        with self._lock:
            records = self._build_intent(ops)
            with self._conn:
                wal.write_intent(self._conn, records)
            try:
                self._fault_point(0)
                for step, record in enumerate(records, start=1):
                    with self._conn:
                        wal.apply_record(self._conn, record, self.page_bytes)
                    self._fault_point(step)
                with self._conn:
                    wal.mark_commit(self._conn)
                self._fault_point(len(records) + 1)
                with self._conn:
                    wal.clear(self._conn)
                self._apply_to_cache(records)
            except BaseException:
                # Recovery inspects the log: no commit marker yet rolls the
                # batch back, a failure after the marker (checkpoint or
                # cache fold) replays it — either way the log ends empty
                # and the LRU/ord state is rebuilt from disk.
                self._recover_in_place()
                raise

    def _fault_point(self, step: int) -> None:
        hook = self.fault_injection_hook
        if hook is not None:
            hook(step)

    def _recover_in_place(self) -> None:
        """Best-effort recovery after a failed batch (see :meth:`apply_batch`).

        Swallows secondary errors: if the connection itself is gone (a
        simulated or real crash) the on-disk log is intact and the next
        open recovers instead.
        """
        try:
            self.last_recovery = wal.recover(self._conn, self.page_bytes)
            self._record_recovery(self.last_recovery)
            self._cache.clear()
            self._next_ord = self._max_ord() + 1
        except Exception:
            pass

    def _build_intent(self, ops: Sequence[Tuple]) -> List[wal.WalRecord]:
        """Expand batch ops into WAL records with redo and undo images.

        Before-images are read against an overlay of the earlier records
        in the same batch, so e.g. a ``replace`` of a node added moments
        before undoes to "absent", not to a stale disk read.
        """
        records: List[wal.WalRecord] = []
        overlay: Dict[int, bytes] = {}
        next_ord = self._next_ord
        for op in ops:
            kind = op[0]
            if kind == "add":
                _, node_id, parent_id, share = op
                share = (share if self.ring.is_canonical(share)
                         else self.ring.reduce(share))
                blob = self._encode_share(share)
                records.append(wal.WalRecord("add", node_id, parent_id,
                                             next_ord, after=blob))
                overlay[node_id] = blob
                next_ord += 1
            elif kind == "replace":
                _, node_id, share = op
                share = (share if self.ring.is_canonical(share)
                         else self.ring.reduce(share))
                before = overlay.get(node_id)
                if before is None:
                    before = self._load_blob(node_id)
                    if before is None:
                        raise SharingError(f"unknown node id {node_id}")
                blob = self._encode_share(share)
                records.append(wal.WalRecord("replace", node_id,
                                             after=blob, before=before))
                overlay[node_id] = blob
            elif kind == "remove_subtree":
                _, node_id, expected = op
                self._require(node_id)
                removed = self._descendants(node_id)
                if sorted(removed) != sorted(expected):
                    raise SharingError(
                        f"subtree {node_id} changed between transaction "
                        "recording and apply; refusing the batch")
                for current in removed:
                    row = self._conn.execute(
                        "SELECT parent, ord FROM nodes WHERE node_id = ?",
                        (current,)).fetchone()
                    before = self._load_blob(current)
                    records.append(wal.WalRecord(
                        "remove", current, parent=row[0], ord=int(row[1]),
                        before=before))
            else:
                raise ProtocolError(f"unknown batch op {kind!r}")
        return records

    def _apply_to_cache(self, records: Sequence[wal.WalRecord]) -> None:
        """Fold a successfully committed batch into the LRU and ord counter."""
        for record in records:
            if record.op == "remove":
                self._cache.pop(record.node_id, None)
            elif record.op in ("add", "replace"):
                if record.op == "add" or record.node_id in self._cache:
                    self._cache_put(record.node_id,
                                    self._decode_share(record.after))
                if record.op == "add":
                    self._next_ord = record.ord + 1

    # -- lifecycle -------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            self._conn.commit()
            self._conn.close()

    def __repr__(self) -> str:
        return f"<SQLiteShareStore path={self.path!r}>"


def as_share_store(source: Any) -> ShareStore:
    """Coerce a tree or store into a :class:`ShareStore` (stores pass through)."""
    if isinstance(source, ShareStore):
        return source
    if isinstance(source, ServerShareTree):
        return InMemoryShareStore(source)
    raise ProtocolError(f"cannot build a share store from {type(source).__name__}")


def open_share_store(path: str) -> ShareStore:
    """Open a server file written by either backend, sniffing the format.

    SQLite files are recognised by their magic header and opened lazily;
    anything else is treated as the JSON format of
    :func:`repro.net.storage.load_share_tree` (fully materialised).
    Empty, truncated or unrecognisable files are rejected with a
    :class:`~repro.errors.ProtocolError` naming the path and the sniffed
    header instead of dying inside a decoder.
    """
    with open(path, "rb") as handle:
        magic = handle.read(len(_SQLITE_MAGIC))
    if magic == _SQLITE_MAGIC:
        return SQLiteShareStore(path)
    if not magic:
        raise ProtocolError(
            f"share store {path!r} is empty — neither a SQLite store nor a "
            "JSON share tree")
    if _SQLITE_MAGIC.startswith(magic):
        raise ProtocolError(
            f"share store {path!r} is a truncated SQLite file "
            f"(header {magic!r}, {len(magic)} of {len(_SQLITE_MAGIC)} magic "
            "bytes); restore it from a backup")
    from .storage import load_share_tree

    try:
        return InMemoryShareStore(load_share_tree(path))
    except ProtocolError:
        raise
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(
            f"cannot open share store {path!r}: header {magic!r} is not "
            f"SQLite and the JSON loader failed ({exc})") from exc


# -- legacy v1 format -----------------------------------------------------------------

def write_v1_share_store(path: str, tree: ServerShareTree) -> int:
    """Write a legacy ``share-store-sqlite-v1`` file (JSON coefficient rows).

    Kept so migration tooling, tests and the BENCH_4 size comparison can
    fabricate the PR-2 on-disk format; new stores are always v2.  Returns
    the file size in bytes.
    """
    from .storage import ring_to_dict

    if os.path.exists(path):
        os.remove(path)
    conn = sqlite3.connect(path)
    try:
        with conn:
            conn.execute("CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT)")
            conn.execute("CREATE TABLE nodes (node_id INTEGER PRIMARY KEY, "
                         "parent INTEGER, coefficients TEXT NOT NULL)")
            conn.execute("CREATE INDEX nodes_parent ON nodes (parent)")
            conn.execute("INSERT INTO meta (key, value) VALUES ('format', ?)",
                         (LEGACY_SQLITE_STORE_FORMAT,))
            conn.execute("INSERT INTO meta (key, value) VALUES ('ring', ?)",
                         (json.dumps(ring_to_dict(tree.ring),
                                     separators=(",", ":")),))
            for node_id in SQLiteShareStore._preorder(tree):
                conn.execute(
                    "INSERT INTO nodes (node_id, parent, coefficients) "
                    "VALUES (?, ?, ?)",
                    (node_id, tree.parent_id(node_id),
                     json.dumps([int(c) for c in tree.share_of(node_id).coeffs],
                                separators=(",", ":"))))
    finally:
        conn.close()
    return os.path.getsize(path)


def migrate_share_store(path: str,
                        page_bytes: int = DEFAULT_PAGE_BYTES) -> Dict[str, int]:
    """Migrate a legacy v1 store file to the v2 format, in place and lossless.

    The v2 file is built alongside the original and atomically
    :func:`os.replace`-d over it, so a crash mid-migration leaves the v1
    file untouched.  Returns ``{"nodes", "before_bytes", "after_bytes"}``.
    A file already in v2 format is left alone (``nodes`` still reported).
    """
    from .storage import ring_from_dict

    with open(path, "rb") as handle:
        if handle.read(len(_SQLITE_MAGIC)) != _SQLITE_MAGIC:
            raise ProtocolError(
                f"{path!r} is not a SQLite share store; only "
                f"{LEGACY_SQLITE_STORE_FORMAT!r} files need migration")
    before_bytes = os.path.getsize(path)
    conn = sqlite3.connect(path)
    try:
        try:
            row = conn.execute(
                "SELECT value FROM meta WHERE key = 'format'").fetchone()
            stored_format = None if row is None else row[0]
            if stored_format == SQLITE_STORE_FORMAT:
                nodes = int(conn.execute(
                    "SELECT COUNT(*) FROM nodes").fetchone()[0])
                return {"nodes": nodes, "before_bytes": before_bytes,
                        "after_bytes": before_bytes}
            if stored_format != LEGACY_SQLITE_STORE_FORMAT:
                raise ProtocolError(
                    f"share store {path!r} has format {stored_format!r}; only "
                    f"{LEGACY_SQLITE_STORE_FORMAT!r} files can be migrated")
            ring = ring_from_dict(json.loads(conn.execute(
                "SELECT value FROM meta WHERE key = 'ring'").fetchone()[0]))
            rows = conn.execute(
                "SELECT node_id, parent, coefficients FROM nodes "
                "ORDER BY rowid").fetchall()
        except sqlite3.Error as exc:
            raise ProtocolError(
                f"{path!r} is a SQLite database but not a share store "
                f"({exc})") from exc
    finally:
        conn.close()

    temp_path = f"{path}.migrate-{os.getpid()}"
    try:
        store = SQLiteShareStore(temp_path, ring=ring, page_bytes=page_bytes)
        with store._lock, store._conn:
            for ord_, (node_id, parent, coefficients) in enumerate(rows):
                share = ring.from_coefficients(json.loads(coefficients))
                wal.upsert_node(store._conn, int(node_id),
                                None if parent is None else int(parent), ord_)
                wal.write_node_pages(store._conn, int(node_id),
                                     store._encode_share(share),
                                     store.page_bytes)
        after_bytes = store.file_bytes()
        store.close()
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.remove(temp_path)
        except OSError:
            pass
        raise
    return {"nodes": len(rows), "before_bytes": before_bytes,
            "after_bytes": after_bytes}
