"""Pluggable server-side share-store backends.

The server engine does not care *where* its half of the shared polynomial
tree lives; it talks to a :class:`ShareStore`.  Two backends ship with the
reproduction:

* :class:`InMemoryShareStore` — wraps a
  :class:`~repro.core.share_tree.ServerShareTree`; everything lives in
  process memory (the PR-1 behaviour, and still the fastest option);
* :class:`SQLiteShareStore` — a durable single-file backend that keeps the
  node table on disk and loads share polynomials *lazily* through an LRU
  cache, so a server can host documents far larger than its memory and
  restart without a separate load step.

Both expose the same read/write surface as ``ServerShareTree`` (the store
API is a strict superset of what :class:`~repro.net.server.SearchServer`
and :class:`~repro.core.updates.UpdatableTree` need), so every code path —
queries, verification, dynamic updates — works identically against either
backend.  Tests assert bit-identical query results across backends.
"""

from __future__ import annotations

import abc
import json
import os
import sqlite3
import threading
from collections import OrderedDict
from typing import Any, Dict, Iterator, List, Optional, Sequence

from ..algebra.poly import Polynomial
from ..algebra.quotient import EncodingRing
from ..core.share_tree import ServerShareTree
from ..errors import ProtocolError, SharingError

__all__ = [
    "ShareStore",
    "InMemoryShareStore",
    "SQLiteShareStore",
    "as_share_store",
    "open_share_store",
]

#: Format marker written into every SQLite store; unknown formats are
#: rejected loudly (same spirit as the client's ``share_derivation`` marker).
SQLITE_STORE_FORMAT = "share-store-sqlite-v1"

_SQLITE_MAGIC = b"SQLite format 3\x00"


class ShareStore(abc.ABC):
    """Storage backend for one document's server share tree."""

    #: The encoding ring of the stored polynomials.
    ring: EncodingRing

    # -- read side (what the query protocol needs) ---------------------------------
    @property
    @abc.abstractmethod
    def root_id(self) -> Optional[int]:
        """Identifier of the root node (``None`` for an empty store)."""

    @abc.abstractmethod
    def node_count(self) -> int:
        """Number of nodes stored."""

    @abc.abstractmethod
    def node_ids(self) -> List[int]:
        """All node identifiers, sorted."""

    @abc.abstractmethod
    def child_ids(self, node_id: int) -> List[int]:
        """Public child list of a node (document order)."""

    @abc.abstractmethod
    def parent_id(self, node_id: int) -> Optional[int]:
        """Public parent of a node."""

    @abc.abstractmethod
    def share_of(self, node_id: int) -> Polynomial:
        """The stored share polynomial of a node."""

    @abc.abstractmethod
    def __contains__(self, node_id: int) -> bool:
        """Whether the store holds a node with this id."""

    # -- write side (outsourcing and dynamic updates) ------------------------------
    @abc.abstractmethod
    def add_node(self, node_id: int, parent_id: Optional[int],
                 share: Polynomial) -> None:
        """Insert one node's share; parents must precede children."""

    @abc.abstractmethod
    def replace_share(self, node_id: int, share: Polynomial) -> None:
        """Overwrite the share of an existing node (dynamic updates)."""

    @abc.abstractmethod
    def remove_subtree(self, node_id: int) -> List[int]:
        """Remove a node and every descendant; returns the removed ids."""

    # -- generic helpers (shared by every backend) ----------------------------------
    def evaluate(self, node_id: int, point: int) -> int:
        """Evaluate the stored share of a node at a query point."""
        return self.ring.evaluate(self.share_of(node_id), point)

    def evaluate_many(self, node_ids: Sequence[int], point: int) -> Dict[int, int]:
        """Evaluate many node shares at one point (one batched pass)."""
        shares = [self.share_of(node_id) for node_id in node_ids]
        return dict(zip(node_ids, self.ring.evaluate_many(shares, point)))

    def depth_of(self, node_id: int) -> int:
        """Depth of a node computed from the public structure."""
        depth = 0
        current = self.parent_id(node_id)
        while current is not None:
            depth += 1
            current = self.parent_id(current)
        return depth

    def storage_bits(self) -> int:
        """Measured storage of all share polynomials (the §5 server cost)."""
        return sum(self.ring.element_storage_bits(self.share_of(node_id))
                   for node_id in self.node_ids())

    def close(self) -> None:
        """Release backend resources (no-op for memory-backed stores)."""

    def __len__(self) -> int:
        return len(self.node_ids())

    def __enter__(self) -> "ShareStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class InMemoryShareStore(ShareStore):
    """A :class:`ShareStore` view over an in-memory ``ServerShareTree``."""

    def __init__(self, tree: ServerShareTree) -> None:
        #: The wrapped tree (shared, not copied).
        self.tree = tree
        self.ring = tree.ring

    @property
    def root_id(self) -> Optional[int]:
        return self.tree.root_id

    def node_count(self) -> int:
        return self.tree.node_count()

    def node_ids(self) -> List[int]:
        return self.tree.node_ids()

    def child_ids(self, node_id: int) -> List[int]:
        return self.tree.child_ids(node_id)

    def parent_id(self, node_id: int) -> Optional[int]:
        return self.tree.parent_id(node_id)

    def share_of(self, node_id: int) -> Polynomial:
        return self.tree.share_of(node_id)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self.tree

    def add_node(self, node_id: int, parent_id: Optional[int],
                 share: Polynomial) -> None:
        self.tree.add_node(node_id, parent_id, share)

    def replace_share(self, node_id: int, share: Polynomial) -> None:
        self.tree.replace_share(node_id, share)

    def remove_subtree(self, node_id: int) -> List[int]:
        return self.tree.remove_subtree(node_id)

    def evaluate(self, node_id: int, point: int) -> int:
        return self.tree.evaluate(node_id, point)

    def evaluate_many(self, node_ids: Sequence[int], point: int) -> Dict[int, int]:
        return self.tree.evaluate_many(node_ids, point)

    def storage_bits(self) -> int:
        return self.tree.storage_bits()

    def __repr__(self) -> str:
        return f"<InMemoryShareStore nodes={self.tree.node_count()}>"


class SQLiteShareStore(ShareStore):
    """Durable single-file backend with lazy share loading.

    The node table (``node_id``, ``parent``, JSON coefficient vector) lives
    in SQLite; child order is insertion order (``rowid``), matching the
    append semantics of the in-memory tree.  Share polynomials are decoded
    on demand and kept in a bounded LRU cache — opening a store does *not*
    materialise the tree, so startup cost and resident memory stay flat in
    the document size.  All access is serialised by an internal lock; the
    connection is shared across threads.
    """

    def __init__(self, path: str, ring: Optional[EncodingRing] = None,
                 cache_size: int = 4096) -> None:
        # Imported here: storage.py imports this module at load time.
        from .storage import ring_from_dict, ring_to_dict

        self.path = path
        self.cache_size = cache_size
        self._cache: "OrderedDict[int, Polynomial]" = OrderedDict()
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=TRUNCATE")
        existing = self._conn.execute(
            "SELECT name FROM sqlite_master WHERE type='table' AND name='meta'"
        ).fetchone()
        if existing:
            stored_format = self._meta("format")
            if stored_format != SQLITE_STORE_FORMAT:
                raise ProtocolError(
                    f"share store {path!r} uses format {stored_format!r} but this "
                    f"version reads {SQLITE_STORE_FORMAT!r}; refusing to guess")
            self.ring = ring_from_dict(json.loads(self._meta("ring")))
            if ring is not None and ring_to_dict(ring) != ring_to_dict(self.ring):
                raise ProtocolError(
                    f"share store {path!r} was written for ring {self.ring.name} "
                    f"but ring {ring.name} was requested")
        else:
            if ring is None:
                raise ProtocolError(
                    f"{path!r} is not an existing share store; creating one "
                    "requires an encoding ring")
            self.ring = ring
            with self._conn:
                self._conn.execute(
                    "CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT)")
                self._conn.execute(
                    "CREATE TABLE nodes (node_id INTEGER PRIMARY KEY, "
                    "parent INTEGER, coefficients TEXT NOT NULL)")
                self._conn.execute("CREATE INDEX nodes_parent ON nodes (parent)")
                self._set_meta("format", SQLITE_STORE_FORMAT)
                self._set_meta("ring", json.dumps(ring_to_dict(ring),
                                                  separators=(",", ":")))

    # -- construction ---------------------------------------------------------------
    @classmethod
    def from_tree(cls, path: str, tree: ServerShareTree,
                  cache_size: int = 4096) -> "SQLiteShareStore":
        """Create (or overwrite) a store file from an in-memory share tree."""
        if os.path.exists(path):
            os.remove(path)
        store = cls(path, ring=tree.ring, cache_size=cache_size)
        with store._lock, store._conn:
            for node_id in store._preorder(tree):
                store._conn.execute(
                    "INSERT INTO nodes (node_id, parent, coefficients) "
                    "VALUES (?, ?, ?)",
                    (node_id, tree.parent_id(node_id),
                     cls._encode_share(tree.share_of(node_id))))
        return store

    @staticmethod
    def _preorder(tree: ServerShareTree) -> Iterator[int]:
        if tree.root_id is None:
            return
        stack = [tree.root_id]
        while stack:
            node_id = stack.pop()
            yield node_id
            stack.extend(reversed(tree.child_ids(node_id)))

    @staticmethod
    def _encode_share(share: Polynomial) -> str:
        return json.dumps([int(c) for c in share.coeffs], separators=(",", ":"))

    def _decode_share(self, text: str) -> Polynomial:
        return self.ring.from_coefficients(json.loads(text))

    # -- meta table -----------------------------------------------------------------
    def _meta(self, key: str) -> Optional[str]:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)).fetchone()
        return None if row is None else row[0]

    def _set_meta(self, key: str, value: str) -> None:
        self._conn.execute(
            "INSERT INTO meta (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET value = excluded.value", (key, value))

    # -- read side -------------------------------------------------------------------
    @property
    def root_id(self) -> Optional[int]:
        with self._lock:
            row = self._conn.execute(
                "SELECT node_id FROM nodes WHERE parent IS NULL").fetchone()
        return None if row is None else int(row[0])

    def node_count(self) -> int:
        with self._lock:
            return int(self._conn.execute("SELECT COUNT(*) FROM nodes").fetchone()[0])

    def node_ids(self) -> List[int]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT node_id FROM nodes ORDER BY node_id").fetchall()
        return [int(row[0]) for row in rows]

    def child_ids(self, node_id: int) -> List[int]:
        with self._lock:
            self._require(node_id)
            rows = self._conn.execute(
                "SELECT node_id FROM nodes WHERE parent = ? ORDER BY rowid",
                (node_id,)).fetchall()
        return [int(row[0]) for row in rows]

    def parent_id(self, node_id: int) -> Optional[int]:
        with self._lock:
            row = self._conn.execute(
                "SELECT parent FROM nodes WHERE node_id = ?", (node_id,)).fetchone()
        if row is None:
            raise SharingError(f"unknown node id {node_id}")
        return None if row[0] is None else int(row[0])

    def share_of(self, node_id: int) -> Polynomial:
        with self._lock:
            share = self._cache.get(node_id)
            if share is not None:
                self._cache.move_to_end(node_id)
                return share
            row = self._conn.execute(
                "SELECT coefficients FROM nodes WHERE node_id = ?",
                (node_id,)).fetchone()
            if row is None:
                raise SharingError(f"unknown node id {node_id}")
            share = self._decode_share(row[0])
            if self.cache_size > 0:
                self._cache[node_id] = share
                if len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)
            return share

    def __contains__(self, node_id: int) -> bool:
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM nodes WHERE node_id = ?", (node_id,)).fetchone()
        return row is not None

    def cached_share_count(self) -> int:
        """How many share polynomials are currently resident (lazy-load probe)."""
        with self._lock:
            return len(self._cache)

    def storage_bits(self) -> int:
        # Stream over the table instead of share_of() so a full scan does not
        # evict the query working set from the LRU cache.
        with self._lock:
            rows = self._conn.execute("SELECT coefficients FROM nodes").fetchall()
        return sum(self.ring.element_storage_bits(self._decode_share(row[0]))
                   for row in rows)

    def file_bytes(self) -> int:
        """Current on-disk size of the store file."""
        with self._lock:
            self._conn.commit()
        return os.path.getsize(self.path)

    def _require(self, node_id: int) -> None:
        row = self._conn.execute(
            "SELECT 1 FROM nodes WHERE node_id = ?", (node_id,)).fetchone()
        if row is None:
            raise SharingError(f"unknown node id {node_id}")

    # -- write side ------------------------------------------------------------------
    def add_node(self, node_id: int, parent_id: Optional[int],
                 share: Polynomial) -> None:
        share = share if self.ring.is_canonical(share) else self.ring.reduce(share)
        with self._lock:
            if node_id in self:
                raise SharingError(f"duplicate node id {node_id}")
            if parent_id is None:
                if self.root_id is not None:
                    raise SharingError("the share tree already has a root")
            elif parent_id not in self:
                raise SharingError(f"parent {parent_id} of node {node_id} is unknown")
            with self._conn:
                self._conn.execute(
                    "INSERT INTO nodes (node_id, parent, coefficients) "
                    "VALUES (?, ?, ?)",
                    (node_id, parent_id, self._encode_share(share)))
            if self.cache_size > 0:
                self._cache[node_id] = share
                if len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)

    def replace_share(self, node_id: int, share: Polynomial) -> None:
        share = share if self.ring.is_canonical(share) else self.ring.reduce(share)
        with self._lock:
            with self._conn:
                updated = self._conn.execute(
                    "UPDATE nodes SET coefficients = ? WHERE node_id = ?",
                    (self._encode_share(share), node_id)).rowcount
            if not updated:
                raise SharingError(f"unknown node id {node_id}")
            if node_id in self._cache:
                self._cache[node_id] = share

    def remove_subtree(self, node_id: int) -> List[int]:
        with self._lock:
            self._require(node_id)
            if self.parent_id(node_id) is None:
                raise SharingError("the root node cannot be removed")
            removed: List[int] = []
            stack = [node_id]
            while stack:
                current = stack.pop()
                removed.append(current)
                rows = self._conn.execute(
                    "SELECT node_id FROM nodes WHERE parent = ? ORDER BY rowid",
                    (current,)).fetchall()
                stack.extend(int(row[0]) for row in rows)
            with self._conn:
                self._conn.executemany(
                    "DELETE FROM nodes WHERE node_id = ?",
                    [(current,) for current in removed])
            for current in removed:
                self._cache.pop(current, None)
            return removed

    # -- lifecycle -------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            self._conn.commit()
            self._conn.close()

    def __repr__(self) -> str:
        return f"<SQLiteShareStore path={self.path!r}>"


def as_share_store(source: Any) -> ShareStore:
    """Coerce a tree or store into a :class:`ShareStore` (stores pass through)."""
    if isinstance(source, ShareStore):
        return source
    if isinstance(source, ServerShareTree):
        return InMemoryShareStore(source)
    raise ProtocolError(f"cannot build a share store from {type(source).__name__}")


def open_share_store(path: str) -> ShareStore:
    """Open a server file written by either backend, sniffing the format.

    SQLite files are recognised by their magic header and opened lazily;
    anything else is treated as the JSON format of
    :func:`repro.net.storage.load_share_tree` (fully materialised).
    """
    with open(path, "rb") as handle:
        magic = handle.read(len(_SQLITE_MAGIC))
    if magic == _SQLITE_MAGIC:
        return SQLiteShareStore(path)
    from .storage import load_share_tree

    return InMemoryShareStore(load_share_tree(path))
