"""The paper's core contribution: polynomial-tree encoding of XML, additive
client/server sharing, and the interactive search protocol with dead-branch
pruning and answer verification."""

from .advanced import AdvancedQueryExecutor, AdvancedQueryResult, AdvancedStrategy
from .encoder import PolynomialNode, PolynomialTree, encode_document, encode_element
from .mapping import TagMapping
from .query import (
    AdaptiveLookahead,
    FrontierResult,
    LocalServerAdapter,
    LookupOutcome,
    QueryEngine,
    QueryStats,
    ServerInterface,
    VerificationMode,
)
from .reconstruct import (
    decode_tree,
    recover_all_tag_values,
    recover_tag_value,
    verify_node_claim,
)
from .multiserver import ThresholdServerGroup, outsource_document_multi_server
from .scheme import ClientContext, choose_fp_ring, choose_int_ring, outsource_document
from .share_tree import (
    ClientShareGenerator,
    ServerShareTree,
    reconstruct_tree,
    share_tree,
)
from .text_index import (
    ContentIndexBuilder,
    ContentSearchClient,
    EncryptedContentStore,
    KeywordHasher,
    KeywordSearchResult,
    tokenize,
)
from .updates import UpdatableTree, UpdateReport

__all__ = [
    "TagMapping",
    "PolynomialNode",
    "PolynomialTree",
    "encode_document",
    "encode_element",
    "decode_tree",
    "recover_tag_value",
    "recover_all_tag_values",
    "verify_node_claim",
    "ClientShareGenerator",
    "ServerShareTree",
    "share_tree",
    "reconstruct_tree",
    "AdaptiveLookahead",
    "QueryEngine",
    "QueryStats",
    "FrontierResult",
    "LookupOutcome",
    "LocalServerAdapter",
    "ServerInterface",
    "VerificationMode",
    "AdvancedQueryExecutor",
    "AdvancedQueryResult",
    "AdvancedStrategy",
    "ClientContext",
    "choose_fp_ring",
    "choose_int_ring",
    "outsource_document",
    "ThresholdServerGroup",
    "outsource_document_multi_server",
    "UpdatableTree",
    "UpdateReport",
    "tokenize",
    "KeywordHasher",
    "EncryptedContentStore",
    "ContentIndexBuilder",
    "ContentSearchClient",
    "KeywordSearchResult",
]
