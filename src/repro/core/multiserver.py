"""Querying with multiple servers: the k-out-of-n extension of §4.2.

The paper notes that the two-party split "can easily be extended to a model
with multiple servers, in which the client together with k out of n servers
(or any other access structure) can reconstruct the shared secret
polynomial".  This module completes that extension into a working query
path:

* the document is encoded and additively split exactly as in the two-party
  scheme (client share from the seed, server share the difference);
* the *server* share of every node is then Shamir-shared coefficient-wise
  across ``n`` servers with threshold ``k``
  (:class:`~repro.sharing.multiserver.ThresholdPolynomialSharing`), so no
  coalition of fewer than ``k`` servers learns anything about the server
  share, and any ``k`` servers can stand in for the single server of §4.3;
* :class:`ThresholdServerGroup` exposes the ordinary
  :class:`~repro.core.query.ServerInterface`: evaluations and fetched
  polynomials from ``k`` live servers are recombined by Lagrange
  interpolation (evaluation is linear in the coefficients), so the existing
  :class:`~repro.core.query.QueryEngine`, verification machinery and
  advanced-query strategies work unchanged on top of it.

Only the ``F_p`` encoding ring is supported (Shamir needs field
coefficients); this mirrors the sharing-layer restriction.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..algebra.poly import Polynomial
from ..algebra.quotient import FpQuotientRing
from ..errors import QueryError, SharingError, ThresholdError
from ..prg import DeterministicPRG
from ..sharing.multiserver import ThresholdPolynomialSharing
from ..xmltree import XmlDocument
from .mapping import TagMapping
from .query import FrontierResult, ServerInterface
from .scheme import ClientContext, choose_fp_ring, outsource_document
from .share_tree import ServerShareTree

__all__ = ["ThresholdServerGroup", "outsource_document_multi_server"]


class ThresholdServerGroup(ServerInterface):
    """A quorum of ``k`` servers presented as one logical search server.

    ``server_trees`` maps the 1-based server index to that server's share
    tree (each a :class:`~repro.core.share_tree.ServerShareTree` holding its
    Shamir share polynomials plus the replicated public structure).  Only
    the servers listed in ``online`` are contacted; at least ``threshold``
    of them must be present.
    """

    #: A quorum exchange is expensive (k parallel requests), so whole
    #: frontier rounds are batched into one exchange per tree level.
    batched_rounds = True

    def __init__(self, sharing: ThresholdPolynomialSharing,
                 server_trees: Dict[int, ServerShareTree],
                 online: Optional[Sequence[int]] = None) -> None:
        self.sharing = sharing
        self.ring = sharing.ring
        self.server_trees = dict(server_trees)
        available = sorted(self.server_trees)
        selected = sorted(online) if online is not None else available
        unknown = [index for index in selected if index not in self.server_trees]
        if unknown:
            raise QueryError(f"unknown server indices {unknown}")
        if len(selected) < sharing.threshold:
            raise ThresholdError(
                f"need at least {sharing.threshold} online servers, got {len(selected)}")
        #: The quorum actually used for queries (the first ``threshold`` online).
        self.quorum = selected[: sharing.threshold]
        #: Per-server count of evaluation requests (for cost reporting).
        self.evaluations_per_server: Dict[int, int] = {index: 0 for index in self.quorum}

    # -- structure (replicated on every server) ------------------------------------
    def _any_tree(self) -> ServerShareTree:
        return self.server_trees[self.quorum[0]]

    def root_id(self) -> int:
        root = self._any_tree().root_id
        if root is None:
            raise QueryError("the server group stores no data")
        return root

    def node_count(self) -> int:
        return self._any_tree().node_count()

    def children_of(self, node_ids: Sequence[int]) -> Dict[int, List[int]]:
        tree = self._any_tree()
        return {node_id: tree.child_ids(node_id) for node_id in node_ids}

    # -- shared-value access (recombined from the quorum) -------------------------------
    def evaluate(self, node_ids: Sequence[int], point: int) -> Dict[int, int]:
        per_server: Dict[int, Dict[int, int]] = {}
        for index in self.quorum:
            tree = self.server_trees[index]
            per_server[index] = {node_id: tree.evaluate(node_id, point)
                                 for node_id in node_ids}
            self.evaluations_per_server[index] += len(node_ids)
        combined: Dict[int, int] = {}
        for node_id in node_ids:
            combined[node_id] = self.sharing.combine_evaluations(
                {index: per_server[index][node_id] for index in self.quorum})
        return combined

    def frontier_round(self, node_ids: Sequence[int], points: Sequence[int],
                       prune: Sequence[int] = (), include_children: bool = True,
                       lookahead: int = 0) -> FrontierResult:
        """One descent round against the quorum as a single batched exchange.

        Every member of the quorum is visited once for the whole round (all
        points at a time) instead of once per request kind, mirroring the
        v2 single-server protocol: the round costs one parallel quorum
        exchange, counted as one round trip.  ``lookahead`` is ignored —
        the group is in-process, so speculation would only waste work.
        """
        if prune:
            self.prune(list(prune))
        evaluations: Dict[int, Dict[int, int]] = {}
        per_server: Dict[int, Dict[int, Dict[int, int]]] = {}
        for index in self.quorum:
            tree = self.server_trees[index]
            per_server[index] = {
                point: {node_id: tree.evaluate(node_id, point)
                        for node_id in node_ids}
                for point in points}
            self.evaluations_per_server[index] += len(node_ids) * len(points)
        for point in points:
            evaluations[point] = {
                node_id: self.sharing.combine_evaluations(
                    {index: per_server[index][point][node_id]
                     for index in self.quorum})
                for node_id in node_ids}
        children = (self.children_of(node_ids)
                    if include_children and node_ids else {})
        return FrontierResult(evaluations, children, round_trips=1)

    def fetch_polynomials(self, node_ids: Sequence[int]) -> Dict[int, Polynomial]:
        result: Dict[int, Polynomial] = {}
        for node_id in node_ids:
            shares = {index: self.server_trees[index].share_of(node_id)
                      for index in self.quorum}
            result[node_id] = self.sharing.reconstruct(shares)
        return result

    def fetch_constants(self, node_ids: Sequence[int]) -> Dict[int, int]:
        polynomials = self.fetch_polynomials(node_ids)
        return {node_id: int(poly.constant_term)
                for node_id, poly in polynomials.items()}

    def prune(self, node_ids: Sequence[int]) -> None:
        # Informational, as in the single-server protocol; nothing to combine.
        return None

    # -- reporting ---------------------------------------------------------------------
    def storage_bits(self) -> int:
        """Aggregate storage across every server replica."""
        return sum(tree.storage_bits() for tree in self.server_trees.values())

    def __repr__(self) -> str:
        return (f"ThresholdServerGroup(servers={sorted(self.server_trees)}, "
                f"quorum={self.quorum})")


def outsource_document_multi_server(
        document: XmlDocument,
        servers: int,
        threshold: int,
        ring: Optional[FpQuotientRing] = None,
        mapping: Optional[TagMapping] = None,
        seed: Optional[Union[bytes, str, int]] = None,
        sharing_rng: Optional[random.Random] = None,
        strict: bool = True,
) -> Tuple[ClientContext, Dict[int, ServerShareTree], ThresholdPolynomialSharing]:
    """Outsource a document to ``servers`` servers with reconstruction threshold ``threshold``.

    Returns ``(client, per_server_trees, sharing)``.  Build a
    :class:`ThresholdServerGroup` from any ``threshold`` of the returned
    trees and pass it wherever a single server is expected::

        client, trees, sharing = outsource_document_multi_server(doc, 4, 3)
        group = ThresholdServerGroup(sharing, trees, online=[1, 3, 4])
        client.lookup(group, "client")
    """
    if servers < 1:
        raise SharingError("need at least one server")
    ring = ring or choose_fp_ring(document, strict=strict)
    if not isinstance(ring, FpQuotientRing):
        raise SharingError("multi-server sharing requires the F_p encoding ring")
    if servers >= ring.p:
        raise ThresholdError(
            f"F_{ring.p} has too few evaluation points for {servers} servers; "
            "choose a larger prime")
    client, single_server_tree, _ = outsource_document(
        document, ring=ring, mapping=mapping, seed=seed, strict=strict)
    sharing = ThresholdPolynomialSharing(ring, threshold=threshold, servers=servers)
    sharing_rng = sharing_rng or random.Random(0x5EC2E7)

    per_server: Dict[int, ServerShareTree] = {
        index: ServerShareTree(ring) for index in range(1, servers + 1)}
    for node_id in single_server_tree.node_ids():
        parent_id = single_server_tree.parent_id(node_id)
        shares = sharing.share(single_server_tree.share_of(node_id), sharing_rng)
        for index, share in shares.items():
            per_server[index].add_node(node_id, parent_id, share)
    return client, per_server, sharing
