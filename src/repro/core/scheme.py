"""High-level facade: outsource an XML document, then search it.

This module glues the pieces of the scheme together into the API most
applications use:

* :func:`choose_fp_ring` / :func:`choose_int_ring` pick an encoding ring
  that fits a document (§4.1);
* :func:`outsource_document` encodes, splits and hands back a
  :class:`ClientContext` (the client's secret state: seed + tag mapping)
  and a :class:`~repro.core.share_tree.ServerShareTree` (everything the
  untrusted server stores);
* :class:`ClientContext` runs element lookups and XPath queries against
  any :class:`~repro.core.query.ServerInterface` — in-process for tests
  and examples, or remote via :mod:`repro.net` when bandwidth matters.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..algebra.poly import Polynomial
from ..algebra.primes import smallest_prime_at_least
from ..algebra.quotient import (
    EncodingRing,
    FpQuotientRing,
    IntQuotientRing,
    default_int_modulus,
)
from ..errors import MappingCapacityError, QueryError
from ..prg import DeterministicPRG
from ..xmltree import XmlDocument
from ..xpath import LocationPath, TagQueryPlan
from .advanced import AdvancedQueryExecutor, AdvancedQueryResult, AdvancedStrategy
from .encoder import PolynomialTree, encode_document
from .mapping import TagMapping
from .query import (
    LocalServerAdapter,
    LookupOutcome,
    QueryEngine,
    QueryStats,
    ServerInterface,
    VerificationMode,
)
from .share_tree import ClientShareGenerator, ServerShareTree, share_tree

__all__ = [
    "choose_fp_ring",
    "choose_int_ring",
    "ClientContext",
    "outsource_document",
]


def choose_fp_ring(document_or_tag_count: Union[XmlDocument, int],
                   strict: bool = True, minimum_prime: int = 5) -> FpQuotientRing:
    """Choose a prime ``p`` large enough for the document's tag vocabulary.

    With ``strict=True`` the mapping may use values ``1..p-2`` (avoiding the
    zero-divisor value ``p-1`` that the paper warns about), so ``p`` must be
    at least ``tag_count + 2``; otherwise ``tag_count + 1`` suffices.
    """
    if isinstance(document_or_tag_count, XmlDocument):
        tag_count = len(document_or_tag_count.distinct_tags())
    else:
        tag_count = int(document_or_tag_count)
    if tag_count < 1:
        raise MappingCapacityError("the document has no tags to encode")
    needed = tag_count + (2 if strict else 1)
    return FpQuotientRing(smallest_prime_at_least(max(needed, minimum_prime)))


def choose_int_ring(degree: int = 2, random_bound: int = 2 ** 32) -> IntQuotientRing:
    """The ``Z[x]/(r(x))`` ring with the default irreducible modulus."""
    return IntQuotientRing(default_int_modulus(degree), random_bound=random_bound)


class ClientContext:
    """The client's secret state plus the query-side API of the scheme."""

    def __init__(self, ring: EncodingRing, mapping: TagMapping,
                 prg: DeterministicPRG,
                 verification: VerificationMode = VerificationMode.FULL,
                 share_cache_size: int = 1024) -> None:
        self.ring = ring
        self.mapping = mapping
        self.prg = prg
        self.verification = verification
        # The generator (and its share LRU) is shared by every engine this
        # context creates, so repeated queries reuse derived shares.
        self._share_generator = ClientShareGenerator(ring, prg,
                                                     cache_size=share_cache_size)

    # -- plumbing ---------------------------------------------------------------
    @property
    def share_generator(self) -> ClientShareGenerator:
        """The seed-backed generator of the client's share polynomials."""
        return self._share_generator

    def engine(self, server: ServerInterface,
               verification: Optional[VerificationMode] = None) -> QueryEngine:
        """A query engine bound to a server interface."""
        return QueryEngine(self.ring, self.mapping, self._share_generator, server,
                           verification or self.verification)

    @staticmethod
    def adapt(server: Union[ServerInterface, ServerShareTree]) -> ServerInterface:
        """Accept a server interface, a raw share tree, or a share store.

        Anything that is not already a :class:`ServerInterface` is wrapped
        in a :class:`LocalServerAdapter` — the adapter only needs the
        ``ServerShareTree`` read API, which every
        :class:`repro.net.store.ShareStore` backend also provides.
        """
        if isinstance(server, ServerInterface):
            return server
        return LocalServerAdapter(server)

    # -- queries ------------------------------------------------------------------
    def lookup(self, server: Union[ServerInterface, ServerShareTree],
               tag: str,
               verification: Optional[VerificationMode] = None) -> LookupOutcome:
        """The basic element lookup ``//tag``."""
        engine = self.engine(self.adapt(server), verification)
        return engine.lookup(tag)

    def xpath(self, server: Union[ServerInterface, ServerShareTree],
              query: Union[str, LocationPath, TagQueryPlan],
              strategy: AdvancedStrategy = AdvancedStrategy.SINGLE_PASS,
              verification: Optional[VerificationMode] = None) -> AdvancedQueryResult:
        """Evaluate an XPath-subset query (advanced querying, §4.3)."""
        engine = self.engine(self.adapt(server), verification)
        return AdvancedQueryExecutor(engine).execute(query, strategy)

    # -- decoding results -------------------------------------------------------------
    def tag_of(self, server: Union[ServerInterface, ServerShareTree],
               node_id: int) -> str:
        """Recover the tag name of one node by Theorem 1/2 reconstruction."""
        adapter = self.adapt(server)
        stats = QueryStats()
        engine = self.engine(adapter)
        children = engine.children_of([node_id], stats)[node_id]
        needed = [node_id] + list(children)
        polynomials = engine._reconstruct_polynomials(needed, stats)
        value = self.ring.recover_tag(polynomials[node_id],
                                      [polynomials[c] for c in children])
        return self.mapping.tag(value)

    def tag_path_of(self, server: Union[ServerInterface, ServerShareTree],
                    node_id: int) -> str:
        """Slash-separated tag path of a node, recovered from the shares.

        Demonstrates that query answers can be turned back into meaningful
        locations without the client storing the document.
        """
        adapter = self.adapt(server)
        path_tags: List[str] = []
        current: Optional[int] = node_id
        visited = set()
        while current is not None:
            if current in visited:
                raise QueryError("cycle detected in the server's structure data")
            visited.add(current)
            path_tags.append(self.tag_of(adapter, current))
            current = self._parent_of(adapter, current)
        return "/".join(reversed(path_tags))

    @staticmethod
    def _parent_of(server: ServerInterface, node_id: int) -> Optional[int]:
        if isinstance(server, LocalServerAdapter):
            return server.share_tree.parent_id(node_id)
        # Generic fallback: walk the structure from the root.
        parent: Dict[int, Optional[int]] = {server.root_id(): None}
        frontier = [server.root_id()]
        while frontier:
            children_map = server.children_of(frontier)
            next_frontier: List[int] = []
            for parent_id, children in children_map.items():
                for child in children:
                    parent[child] = parent_id
                    next_frontier.append(child)
            frontier = next_frontier
        if node_id not in parent:
            raise QueryError(f"unknown node id {node_id}")
        return parent[node_id]

    # -- persistence ---------------------------------------------------------------------
    #: Identifies how client shares are derived from the seed.  Server shares
    #: are ``polynomial - client_share``, so a client state replayed against a
    #: server tree written under a *different* derivation would silently
    #: reconstruct garbage; the marker turns that into a loud error.
    SHARE_DERIVATION = "hmac-stream-v2"

    def secret_state(self) -> Dict[str, str]:
        """The client's durable secrets: the seed and the tag mapping."""
        return {
            "seed": self.prg.seed.hex(),
            "mapping": self.mapping.to_json(),
            "share_derivation": self.SHARE_DERIVATION,
        }

    @classmethod
    def from_secret_state(cls, ring: EncodingRing, state: Dict[str, str],
                          verification: VerificationMode = VerificationMode.FULL
                          ) -> "ClientContext":
        """Rebuild a client context from :meth:`secret_state` output."""
        derivation = state.get("share_derivation", "python-random-v1")
        if derivation != cls.SHARE_DERIVATION:
            raise QueryError(
                f"client state uses share derivation {derivation!r} but this "
                f"version regenerates shares with {cls.SHARE_DERIVATION!r}; "
                "lookups would silently return wrong results — re-outsource "
                "the document to refresh both files")
        prg = DeterministicPRG(bytes.fromhex(state["seed"]))
        mapping = TagMapping.from_json(state["mapping"])
        return cls(ring, mapping, prg, verification)


def outsource_document(document: XmlDocument,
                       ring: Optional[EncodingRing] = None,
                       mapping: Optional[TagMapping] = None,
                       seed: Optional[Union[bytes, str, int]] = None,
                       mapping_rng: Optional[random.Random] = None,
                       strict: bool = True,
                       verification: VerificationMode = VerificationMode.FULL,
                       ) -> Tuple[ClientContext, ServerShareTree, PolynomialTree]:
    """Encode, split and return ``(client, server_tree, plaintext_polynomial_tree)``.

    The polynomial tree is returned for inspection and testing; a real
    deployment would discard it (the client keeps only the seed and mapping,
    the server keeps only its share tree).
    """
    ring = ring or choose_fp_ring(document, strict=strict)
    if mapping is None:
        if isinstance(ring, FpQuotientRing):
            max_value = ring.p - 2 if strict else ring.p - 1
        else:
            max_value = None
        mapping = TagMapping.for_tags(document.distinct_tags(), max_value=max_value,
                                      rng=mapping_rng, strict=strict)
    else:
        mapping.extend(document.distinct_tags())
    prg = DeterministicPRG(seed) if seed is not None else DeterministicPRG.generate()
    tree = encode_document(document, mapping, ring)
    client = ClientContext(ring, mapping, prg, verification)
    # Split with the client's own generator so its share cache is already
    # warm when the first queries arrive.
    client_generator, server_tree = share_tree(tree, prg,
                                               generator=client.share_generator)
    return client, server_tree, tree
