"""Indexing element *content*: the hash-based extension sketched in §5.

The paper's conclusion: "We can use a hash function to map the data to an
element of Z_p but in that case the mapping function is no longer
invertible.  In this case the data polynomials can be used as an index to
the encrypted data."

This module implements exactly that extension:

* every element's text is tokenised into words; each word is hashed with a
  keyed hash into a non-zero point of the evaluation domain (the hash is
  *not* invertible — by design the stored polynomials cannot be decoded
  back into words, they only serve as an index);
* per element a *content polynomial* ``∏ (x − h(word))`` over the subtree's
  words is built, so the same dead-branch pruning as for tag names applies
  to keyword search;
* the content polynomials are additively shared exactly like the structure
  polynomials and queried with the same protocol;
* the actual element text is stored server-side as ciphertext (stream
  cipher keyed by the client seed), addressable by node id, so confirmed
  matches can be retrieved and decrypted by the client.

Hash collisions are possible (the mapping is not invertible), so keyword
matches are *candidates*; the client filters false positives after
decrypting the retrieved payloads, and the tests measure that the false
positive rate behaves like ``#distinct words / p``.
"""

from __future__ import annotations

import hashlib
import hmac
import re
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..algebra.quotient import EncodingRing
from ..errors import QueryError
from ..prg import DeterministicPRG, derive_seed
from ..xmltree import XmlDocument
from .query import QueryStats, ServerInterface, VerificationMode
from .share_tree import ClientShareGenerator, ServerShareTree
from .encoder import PolynomialTree
from .query import LocalServerAdapter, QueryEngine
from .mapping import TagMapping

__all__ = ["tokenize", "KeywordHasher", "EncryptedContentStore",
           "ContentIndexBuilder", "ContentSearchClient", "KeywordSearchResult"]

_WORD_PATTERN = re.compile(r"[A-Za-z0-9]+")
_HASH_LABEL = "content-word-hash"
_PAYLOAD_LABEL = "content-payload"


def tokenize(text: str) -> List[str]:
    """Lower-cased alphanumeric word tokens of a text fragment."""
    return [word.lower() for word in _WORD_PATTERN.findall(text or "")]


class KeywordHasher:
    """Keyed, non-invertible mapping from words to query points.

    Words map into ``{1, …, modulus − 1}``: zero is excluded because the
    factor ``x`` would be indistinguishable from "no word".  The key is part
    of the client's secret, so the server cannot run dictionary attacks on
    the points it sees.
    """

    def __init__(self, seed: bytes, modulus: int) -> None:
        if modulus < 3:
            raise QueryError("the hash range must contain at least two points")
        self.key = derive_seed(seed, _HASH_LABEL)
        self.modulus = modulus

    def point(self, word: str) -> int:
        """Hash a word into a non-zero evaluation point."""
        digest = hmac.new(self.key, word.lower().encode("utf-8"),
                          hashlib.sha256).digest()
        return 1 + int.from_bytes(digest, "big") % (self.modulus - 1)


class EncryptedContentStore:
    """Server-side store of per-node encrypted text payloads."""

    def __init__(self) -> None:
        self._payloads: Dict[int, bytes] = {}

    def put(self, node_id: int, ciphertext: bytes) -> None:
        """Store one node's encrypted payload."""
        self._payloads[node_id] = bytes(ciphertext)

    def get(self, node_id: int) -> bytes:
        """Fetch one node's encrypted payload (empty bytes when absent)."""
        return self._payloads.get(node_id, b"")

    def storage_bits(self) -> int:
        """Total ciphertext volume."""
        return sum(len(blob) for blob in self._payloads.values()) * 8

    def __len__(self) -> int:
        return len(self._payloads)


class ContentIndexBuilder:
    """Client-side construction of the shared content index."""

    def __init__(self, ring: EncodingRing, prg: DeterministicPRG) -> None:
        self.ring = ring
        self.prg = prg.child("content-index")
        # Hash words into the evaluation domain; for F_p rings that is F_p,
        # for Z[x]/(r) we use a fixed public hash range (the evaluation
        # modulus varies per point, so points are reduced at query time).
        modulus = getattr(ring, "p", None) or (1 << 31)
        self.hasher = KeywordHasher(self.prg.seed, modulus)

    def build(self, document: XmlDocument
              ) -> Tuple[ClientShareGenerator, ServerShareTree, EncryptedContentStore]:
        """Build the shared content-polynomial tree and the payload store."""
        elements = document.elements()
        index_of = {id(element): index for index, element in enumerate(elements)}
        # Words of the subtree of each element (descendant-or-self), so that
        # the same top-down pruning as for tag names works for keywords.
        subtree_words: Dict[int, Set[str]] = {}

        def collect_preorder(element):
            words = set(tokenize(element.text))
            for value in element.attributes.values():
                words.update(tokenize(value))
            for child in element.children:
                words |= collect_preorder(child)
            subtree_words[index_of[id(element)]] = words
            return words

        collect_preorder(document.root)

        # Content polynomial per node: product of (x - h(word)) over subtree words.
        tree = PolynomialTree(self.ring)
        for index, element in enumerate(elements):
            polynomial = self.ring.one
            for word in sorted(subtree_words[index]):
                polynomial = self.ring.mul(
                    polynomial, self.ring.from_tag_value(self.hasher.point(word)))
            parent = element.parent
            parent_id = index_of[id(parent)] if parent is not None else None
            tree.add_node(index, parent_id, polynomial, element.depth())

        # Share the content tree and encrypt the raw text payloads.
        generator = ClientShareGenerator(self.ring, self.prg.child("shares"))
        server = ServerShareTree(self.ring)
        store = EncryptedContentStore()
        for node in tree.iter_preorder():
            client_share = generator.share_for(node.node_id)
            server.add_node(node.node_id, node.parent_id,
                            self.ring.sub(node.polynomial, client_share))
            element = elements[node.node_id]
            if element.text:
                store.put(node.node_id,
                          self._encrypt_payload(node.node_id, element.text))
        return generator, server, store

    def _encrypt_payload(self, node_id: int, text: str) -> bytes:
        plaintext = text.encode("utf-8")
        keystream = self.prg.stream(_PAYLOAD_LABEL, node_id).read(len(plaintext))
        return bytes(p ^ k for p, k in zip(plaintext, keystream))

    def decrypt_payload(self, node_id: int, ciphertext: bytes) -> str:
        """Inverse of the payload encryption (XOR stream cipher)."""
        keystream = self.prg.stream(_PAYLOAD_LABEL, node_id).read(len(ciphertext))
        return bytes(c ^ k for c, k in zip(ciphertext, keystream)).decode("utf-8")


class KeywordSearchResult:
    """Result of a keyword search over the content index."""

    __slots__ = ("word", "candidate_nodes", "confirmed_nodes", "false_positives",
                 "stats", "payloads")

    def __init__(self, word: str) -> None:
        self.word = word
        #: Nodes whose content polynomial vanished at the hashed point.
        self.candidate_nodes: List[int] = []
        #: Candidates whose decrypted payload really contains the word.
        self.confirmed_nodes: List[int] = []
        #: Hash-collision candidates discarded after decryption.
        self.false_positives = 0
        self.stats = QueryStats()
        #: Decrypted text of confirmed nodes, keyed by node id.
        self.payloads: Dict[int, str] = {}

    def __repr__(self) -> str:
        return (f"KeywordSearchResult(word={self.word!r}, "
                f"confirmed={self.confirmed_nodes}, "
                f"false_positives={self.false_positives})")


class ContentSearchClient:
    """Keyword search over the shared content index.

    Reuses the §4.3 descent: evaluate shares at the hashed point, prune
    non-zero branches, then fetch and decrypt the payloads of the deepest
    candidates to drop hash collisions.
    """

    def __init__(self, builder: ContentIndexBuilder,
                 generator: ClientShareGenerator,
                 server_tree: ServerShareTree,
                 store: EncryptedContentStore) -> None:
        self.builder = builder
        self.ring = builder.ring
        self.generator = generator
        self.server_tree = server_tree
        self.store = store

    def search(self, word: str) -> KeywordSearchResult:
        """Find the elements whose own text contains ``word``."""
        result = KeywordSearchResult(word)
        point = self.builder.hasher.point(word)
        # A one-off mapping exposing the hashed point as a pseudo-tag lets the
        # generic engine drive the descent unchanged.
        pseudo_mapping = TagMapping({word or "empty": point})
        engine = QueryEngine(self.ring, pseudo_mapping, self.generator,
                             LocalServerAdapter(self.server_tree),
                             VerificationMode.NONE)
        zero_nodes, stats = engine.containment_frontier([word or "empty"])
        result.stats = stats
        result.candidate_nodes = sorted(zero_nodes)

        # Confirm candidates by decrypting their payloads (client side only).
        for node_id in result.candidate_nodes:
            ciphertext = self.store.get(node_id)
            if not ciphertext:
                continue
            text = self.builder.decrypt_payload(node_id, ciphertext)
            if word.lower() in tokenize(text):
                result.confirmed_nodes.append(node_id)
                result.payloads[node_id] = text
            else:
                result.false_positives += 1
        return result
