"""Recovering tag names from a polynomial tree (Theorems 1 and 2).

No information about the original tag names is lost by the encoding: given
the polynomial ``f`` of an element node and the polynomials ``q_1..q_n``
of its children, the mapped value ``t`` is the unique solution of
``f ≡ (x - t)·∏ q_i`` in the encoding ring.  This module walks a whole
:class:`~repro.core.encoder.PolynomialTree`, recovers every node's tag
value and rebuilds the original :class:`~repro.xmltree.XmlDocument` —
proving the scheme is lossless, and providing the verification primitive
the client uses against an untrusted server (§4.3, eq. (1)–(3)).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..algebra.poly import Polynomial
from ..algebra.quotient import EncodingRing
from ..errors import TagRecoveryError, VerificationError
from ..xmltree import XmlDocument, XmlElement
from .encoder import PolynomialTree
from .mapping import TagMapping

__all__ = [
    "recover_tag_value",
    "recover_all_tag_values",
    "decode_tree",
    "verify_node_claim",
]


def recover_tag_value(tree: PolynomialTree, node_id: int) -> int:
    """Recover the mapped tag value of one node (Theorem 1 / Theorem 2)."""
    node = tree.node(node_id)
    children = [child.polynomial for child in tree.children(node_id)]
    return tree.ring.recover_tag(node.polynomial, children)


def recover_all_tag_values(tree: PolynomialTree) -> Dict[int, int]:
    """Recover every node's mapped value, keyed by node id."""
    return {node.node_id: recover_tag_value(tree, node.node_id) for node in tree}


def decode_tree(tree: PolynomialTree, mapping: TagMapping) -> XmlDocument:
    """Rebuild the original document structure and tag names from the encoding.

    Attribute and text content is not part of the encoding (§5), so the
    reconstructed document carries tags and structure only.
    """
    values = recover_all_tag_values(tree)
    elements: Dict[int, XmlElement] = {}
    root_element: Optional[XmlElement] = None
    for node in tree.iter_preorder():
        element = XmlElement(mapping.tag(values[node.node_id]))
        elements[node.node_id] = element
        if node.parent_id is None:
            root_element = element
        else:
            elements[node.parent_id].add_child(element)
    if root_element is None:
        raise TagRecoveryError("the polynomial tree is empty")
    return XmlDocument(root_element)


def verify_node_claim(ring: EncodingRing, node_polynomial: Polynomial,
                      child_polynomials: List[Polynomial],
                      claimed_value: int) -> bool:
    """Check a server's claim that a node carries the tag mapped to ``claimed_value``.

    This is the client-side verification of §4.3: with the full polynomials
    in hand, *all* coefficient equations of eq. (3) are checked, so a
    malicious server cannot make the client accept a wrong tag value
    (uniqueness is Theorem 1/2).
    """
    try:
        recovered = ring.recover_tag(node_polynomial, child_polynomials)
    except TagRecoveryError as exc:
        raise VerificationError(
            "the node polynomial is inconsistent with its children; "
            "the server's data cannot be trusted") from exc
    return recovered == claimed_value
