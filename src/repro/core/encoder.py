"""Encoding XML trees as polynomial trees (§4.1).

Every element node of the document becomes one node of a
:class:`PolynomialTree` holding a polynomial in the chosen encoding ring:

* a leaf named ``n`` becomes ``(x - map(n))``;
* an inner node is ``(x - map(node)) · ∏ child polynomials``.

The *structure* of the tree (node identities and parent/child relations) is
considered public — this is exactly the information the server needs to
drive the §4.3 search protocol — while the tag names themselves are hidden
inside the polynomials.

Node identifiers are pre-order positions, so node ``0`` is always the root
and children always have larger identifiers than their parent.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..algebra.poly import Polynomial
from ..algebra.quotient import EncodingRing
from ..errors import EncodingError
from ..xmltree import XmlDocument, XmlElement
from .mapping import TagMapping

__all__ = ["PolynomialNode", "PolynomialTree", "encode_document", "encode_element"]


class PolynomialNode:
    """One node of the encoded tree."""

    __slots__ = ("node_id", "parent_id", "child_ids", "polynomial", "depth")

    def __init__(self, node_id: int, parent_id: Optional[int],
                 polynomial: Polynomial, depth: int) -> None:
        self.node_id = node_id
        self.parent_id = parent_id
        self.child_ids: List[int] = []
        self.polynomial = polynomial
        self.depth = depth

    def is_leaf(self) -> bool:
        """True when the node has no children."""
        return not self.child_ids

    def is_root(self) -> bool:
        """True for the document root."""
        return self.parent_id is None

    def __repr__(self) -> str:
        return (f"PolynomialNode(id={self.node_id}, parent={self.parent_id}, "
                f"children={self.child_ids}, poly={self.polynomial!s})")


class PolynomialTree:
    """The encoded document: ring, public structure and per-node polynomials."""

    def __init__(self, ring: EncodingRing) -> None:
        self.ring = ring
        self.nodes: Dict[int, PolynomialNode] = {}
        self.root_id: Optional[int] = None

    # -- construction -------------------------------------------------------------
    def add_node(self, node_id: int, parent_id: Optional[int],
                 polynomial: Polynomial, depth: int) -> PolynomialNode:
        """Insert a node; parents must be inserted before their children."""
        if node_id in self.nodes:
            raise EncodingError(f"duplicate node id {node_id}")
        if parent_id is None:
            if self.root_id is not None:
                raise EncodingError("the tree already has a root")
            self.root_id = node_id
        elif parent_id not in self.nodes:
            raise EncodingError(f"parent {parent_id} of node {node_id} is unknown")
        node = PolynomialNode(node_id, parent_id, self.ring.reduce(polynomial), depth)
        self.nodes[node_id] = node
        if parent_id is not None:
            self.nodes[parent_id].child_ids.append(node_id)
        return node

    # -- access ----------------------------------------------------------------------
    def node(self, node_id: int) -> PolynomialNode:
        """Node by identifier."""
        try:
            return self.nodes[node_id]
        except KeyError:
            raise EncodingError(f"unknown node id {node_id}") from None

    def root(self) -> PolynomialNode:
        """The root node."""
        if self.root_id is None:
            raise EncodingError("the tree is empty")
        return self.nodes[self.root_id]

    def polynomial(self, node_id: int) -> Polynomial:
        """Polynomial stored at a node."""
        return self.node(node_id).polynomial

    def children(self, node_id: int) -> List[PolynomialNode]:
        """Child nodes of a node, in document order."""
        return [self.nodes[cid] for cid in self.node(node_id).child_ids]

    def parent(self, node_id: int) -> Optional[PolynomialNode]:
        """Parent node, or ``None`` for the root."""
        parent_id = self.node(node_id).parent_id
        return None if parent_id is None else self.nodes[parent_id]

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[PolynomialNode]:
        return self.iter_preorder()

    def iter_preorder(self) -> Iterator[PolynomialNode]:
        """Pre-order traversal (node ids are pre-order, so this is sorted order)."""
        for node_id in sorted(self.nodes):
            yield self.nodes[node_id]

    def iter_postorder(self) -> Iterator[PolynomialNode]:
        """Post-order traversal (children before parents)."""
        def _walk(node_id: int) -> Iterator[PolynomialNode]:
            for child_id in self.nodes[node_id].child_ids:
                yield from _walk(child_id)
            yield self.nodes[node_id]

        if self.root_id is not None:
            yield from _walk(self.root_id)

    def node_ids(self) -> List[int]:
        """All node identifiers in pre-order."""
        return sorted(self.nodes)

    def subtree_ids(self, node_id: int) -> List[int]:
        """Identifiers of the subtree rooted at ``node_id`` (pre-order)."""
        result: List[int] = []
        stack = [node_id]
        while stack:
            current = stack.pop()
            result.append(current)
            stack.extend(reversed(self.nodes[current].child_ids))
        return result

    def depth_of(self, node_id: int) -> int:
        """Depth of a node (the root has depth 0)."""
        return self.node(node_id).depth

    # -- structure export ---------------------------------------------------------------
    def structure(self) -> Dict[int, Tuple[Optional[int], Tuple[int, ...]]]:
        """Public structure: ``{node_id: (parent_id, child_ids)}``.

        This is what the server is allowed to know about the tree shape.
        """
        return {node_id: (node.parent_id, tuple(node.child_ids))
                for node_id, node in self.nodes.items()}

    # -- measurements ---------------------------------------------------------------------
    def storage_bits(self) -> int:
        """Total measured storage of all polynomials (for the §5 analysis)."""
        return sum(self.ring.element_storage_bits(node.polynomial)
                   for node in self.nodes.values())

    def __repr__(self) -> str:
        return f"<PolynomialTree ring={self.ring.name} nodes={len(self.nodes)}>"


def encode_element(element: XmlElement, mapping: TagMapping,
                   ring: EncodingRing) -> PolynomialTree:
    """Encode the subtree rooted at ``element`` into a :class:`PolynomialTree`.

    The encoding is built bottom-up exactly as §4.1 describes: every node's
    polynomial is the product of its children's polynomials with its own
    linear factor ``(x - map(tag))``.
    """
    tree = PolynomialTree(ring)
    # First pass: assign pre-order identifiers.
    order: List[Tuple[XmlElement, Optional[int], int]] = []
    ids: Dict[int, int] = {}
    counter = 0
    stack: List[Tuple[XmlElement, Optional[int], int]] = [(element, None, 0)]
    while stack:
        node, parent_id, depth = stack.pop()
        ids[id(node)] = counter
        order.append((node, parent_id, depth))
        current_id = counter
        counter += 1
        for child in reversed(node.children):
            stack.append((child, current_id, depth + 1))

    # Second pass (bottom-up): compute polynomials from the leaves upwards.
    polynomials: Dict[int, Polynomial] = {}
    for node, _, _ in sorted(order, key=lambda item: -ids[id(item[0])]):
        own_factor = ring.from_tag_value(mapping.value(node.tag))
        product = own_factor
        for child in node.children:
            product = ring.mul(product, polynomials[ids[id(child)]])
        polynomials[ids[id(node)]] = product

    # Third pass (top-down): populate the tree so parents exist before children.
    for node, parent_id, depth in order:
        tree.add_node(ids[id(node)], parent_id, polynomials[ids[id(node)]], depth)
    return tree


def encode_document(document: XmlDocument, mapping: TagMapping,
                    ring: EncodingRing) -> PolynomialTree:
    """Encode a whole document (convenience wrapper over :func:`encode_element`)."""
    missing = [tag for tag in document.distinct_tags() if tag not in mapping]
    if missing:
        raise EncodingError(
            f"the mapping lacks values for tags {missing}; call mapping.extend() first")
    return encode_element(document.root, mapping, ring)
