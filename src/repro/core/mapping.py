"""The private tag-name mapping function ``map : tagnames → Z`` (§4.1).

The mapping is the client's secret: the server only ever sees polynomials
built from mapped values and query points, never tag names.  Figure 1(b)
of the paper shows the example mapping ``client → 2, customers → 3,
name → 4`` that this library reproduces in
:mod:`repro.workloads.figure1`.

Constraints
-----------
* Values must be distinct (the mapping must be invertible, Theorem 1/2).
* For the ``F_p[x]/(x^{p-1}-1)`` ring the paper asks to avoid the value
  ``p - 1`` "in order to avoid zero divisors" (after Lemma 3).  The
  paper's own worked example maps ``name → 4 = p - 1`` for ``p = 5``, so
  strict enforcement is optional (``strict=True`` enables it); the
  EXPERIMENTS log discusses the discrepancy.
* Value ``0`` is always rejected: a factor ``x`` would make the encoding
  of a node indistinguishable from a missing tag at the query point 0.
"""

from __future__ import annotations

import json
import random
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..errors import MappingCapacityError, MappingError, UnknownTagError

__all__ = ["TagMapping"]


class TagMapping:
    """An invertible private mapping from tag names to integers."""

    def __init__(self, assignments: Optional[Mapping[str, int]] = None,
                 max_value: Optional[int] = None,
                 strict: bool = False) -> None:
        """Create a mapping.

        ``max_value`` is the largest assignable value (for the ``F_p`` ring
        this should be ``p - 2`` in strict mode or ``p - 1`` otherwise);
        ``None`` means unbounded, which suits the ``Z[x]/(r(x))`` ring.
        """
        self.max_value = max_value
        self.strict = strict
        self._forward: Dict[str, int] = {}
        self._backward: Dict[int, str] = {}
        if assignments:
            for tag, value in assignments.items():
                self.assign(tag, value)

    # -- construction -------------------------------------------------------------
    @classmethod
    def for_tags(cls, tags: Iterable[str], max_value: Optional[int] = None,
                 rng: Optional[random.Random] = None,
                 strict: bool = False) -> "TagMapping":
        """Assign values to ``tags``.

        With an ``rng`` the values are a random permutation of the available
        range (the recommended, least-leaky choice); without one the tags
        are numbered 1, 2, 3, ... in sorted order (deterministic, handy for
        tests and for reproducing the paper's figures).
        """
        tag_list = sorted(set(tags))
        mapping = cls(max_value=max_value, strict=strict)
        capacity = mapping.capacity()
        if capacity is not None and len(tag_list) > capacity:
            raise MappingCapacityError(
                f"{len(tag_list)} tags do not fit into {capacity} available values; "
                "choose a larger prime p or a larger ring")
        if rng is None:
            values: Sequence[int] = range(1, len(tag_list) + 1)
        else:
            upper = capacity if capacity is not None else max(len(tag_list) * 4, 16)
            values = rng.sample(range(1, upper + 1), len(tag_list))
        for tag, value in zip(tag_list, values):
            mapping.assign(tag, value)
        return mapping

    def assign(self, tag: str, value: int) -> None:
        """Assign ``value`` to ``tag``, enforcing the invertibility constraints."""
        if not tag:
            raise MappingError("tag names must be non-empty")
        value = int(value)
        if value <= 0:
            raise MappingError(f"mapping values must be positive, got {value} for {tag!r}")
        if self.max_value is not None and value > self.max_value:
            raise MappingError(
                f"mapping value {value} for {tag!r} exceeds the maximum {self.max_value}"
                + (" (p-2 in strict mode avoids the zero-divisor value p-1)"
                   if self.strict else ""))
        if tag in self._forward and self._forward[tag] != value:
            raise MappingError(f"{tag!r} is already mapped to {self._forward[tag]}")
        if value in self._backward and self._backward[value] != tag:
            raise MappingError(
                f"value {value} is already used by {self._backward[value]!r}; "
                "the mapping must stay invertible")
        self._forward[tag] = value
        self._backward[value] = tag

    def extend(self, tags: Iterable[str]) -> None:
        """Assign values to any tags not yet present (smallest free values)."""
        for tag in sorted(set(tags)):
            if tag in self._forward:
                continue
            value = 1
            while value in self._backward or (
                    self.max_value is not None and value > self.max_value):
                if self.max_value is not None and value > self.max_value:
                    raise MappingCapacityError(
                        "no free mapping values left; choose a larger ring")
                value += 1
            if self.max_value is not None and value > self.max_value:
                raise MappingCapacityError("no free mapping values left")
            self.assign(tag, value)

    # -- lookups -----------------------------------------------------------------------
    def value(self, tag: str) -> int:
        """Mapped value of ``tag``; raises :class:`UnknownTagError` if absent."""
        try:
            return self._forward[tag]
        except KeyError:
            raise UnknownTagError(tag) from None

    def tag(self, value: int) -> str:
        """Inverse lookup; raises :class:`UnknownTagError` if absent."""
        try:
            return self._backward[int(value)]
        except KeyError:
            raise UnknownTagError(value) from None

    def __contains__(self, tag: str) -> bool:
        return tag in self._forward

    def __len__(self) -> int:
        return len(self._forward)

    def tags(self) -> List[str]:
        """All mapped tag names, sorted."""
        return sorted(self._forward)

    def values(self) -> List[int]:
        """All mapped values, sorted."""
        return sorted(self._backward)

    def as_dict(self) -> Dict[str, int]:
        """A copy of the forward mapping."""
        return dict(self._forward)

    def capacity(self) -> Optional[int]:
        """Number of assignable values, or ``None`` when unbounded."""
        if self.max_value is None:
            return None
        return self.max_value if not self.strict else self.max_value

    # -- persistence ----------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialise the mapping (it is part of the client's secret state)."""
        return json.dumps({
            "max_value": self.max_value,
            "strict": self.strict,
            "assignments": self._forward,
        }, sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "TagMapping":
        """Inverse of :meth:`to_json`."""
        data = json.loads(payload)
        return cls(assignments=data["assignments"], max_value=data["max_value"],
                   strict=data["strict"])

    def __repr__(self) -> str:
        return f"TagMapping({self._forward!r})"
