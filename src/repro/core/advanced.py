"""Advanced querying: multi-step XPath evaluation over shared trees (§4.3).

The paper describes two strategies for a query like ``//a/b//c/d/e``:

* **left-to-right** — evaluate ``//a`` over the whole tree, then search for
  ``b`` within the found branches, and so on.  Simple, but every descent
  prunes on a single tag only.
* **single-pass** (the paper's recommendation) — exploit the fact that a
  node's polynomial contains the roots of *all* its descendants, so one
  descent can require the whole remaining tag multiset at once: "a single
  query can find all elements that contains the elements a, b, c, d and e
  (in any order)", after which each location step anchors the candidates
  top-down.  "Using this strategy elements are filtered out in a very
  early stage and therefore increases efficiency."

Both strategies return exactly the XPath answer (they are checked against
the plaintext evaluator in the tests); they differ only in how much of the
tree they touch, which is what experiment E11 measures.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..errors import QueryError
from ..xpath import Axis, LocationPath, TagQueryPlan, compile_plan
from .query import QueryEngine, QueryStats

__all__ = ["AdvancedStrategy", "AdvancedQueryResult", "AdvancedQueryExecutor"]


class AdvancedStrategy(enum.Enum):
    """How multi-step queries are evaluated."""

    #: One descent per step pruning on the full remaining tag multiset.
    SINGLE_PASS = "single-pass"

    #: The naive strategy: each step prunes only on its own tag.
    LEFT_TO_RIGHT = "left-to-right"


class AdvancedQueryResult:
    """Answer of a multi-step query."""

    __slots__ = ("plan", "strategy", "matches", "stats", "per_step_candidates")

    def __init__(self, plan: TagQueryPlan, strategy: AdvancedStrategy) -> None:
        self.plan = plan
        self.strategy = strategy
        #: Node ids matching the full location path, sorted.
        self.matches: List[int] = []
        self.stats = QueryStats()
        #: Number of anchored candidates after each step (for analysis).
        self.per_step_candidates: List[int] = []

    def __repr__(self) -> str:
        return (f"AdvancedQueryResult(query={str(self.plan.path)!r}, "
                f"strategy={self.strategy.value}, matches={self.matches})")


class AdvancedQueryExecutor:
    """Executes compiled :class:`~repro.xpath.TagQueryPlan` objects."""

    def __init__(self, engine: QueryEngine) -> None:
        self.engine = engine

    # -- public API -----------------------------------------------------------------
    def execute(self, query: Union[str, LocationPath, TagQueryPlan],
                strategy: AdvancedStrategy = AdvancedStrategy.SINGLE_PASS
                ) -> AdvancedQueryResult:
        """Evaluate a location path and return the matching node ids."""
        plan = query if isinstance(query, TagQueryPlan) else compile_plan(query)
        result = AdvancedQueryResult(plan, strategy)
        stats = result.stats

        context: Optional[List[int]] = None  # None = the virtual document context
        try:
            for index, step in enumerate(plan.steps):
                containment_tags = self._containment_tags(step, strategy)
                candidates = self._candidates_for_step(context, step.axis, index == 0,
                                                       containment_tags, stats)
                anchored = self._anchor(candidates, step.tag, stats)
                result.per_step_candidates.append(len(anchored))
                if not anchored:
                    result.matches = []
                    return result
                context = sorted(anchored)
            result.matches = sorted(set(context or []))
            return result
        finally:
            # Deliver prune notices still buffered by a batched transport.
            stats.round_trips += self.engine.server.flush_prunes()

    # -- step machinery --------------------------------------------------------------------
    @staticmethod
    def _containment_tags(step, strategy: AdvancedStrategy) -> List[str]:
        if strategy is AdvancedStrategy.SINGLE_PASS:
            return list(step.remaining_tags)
        return [] if step.is_wildcard() else [step.tag]

    def _candidates_for_step(self, context: Optional[List[int]], axis: Axis,
                             is_first: bool, containment_tags: Sequence[str],
                             stats: QueryStats) -> List[int]:
        """Nodes reachable via ``axis`` whose subtree contains ``containment_tags``."""
        if is_first:
            if axis is Axis.DESCENDANT:
                # descendant-or-self of the document: the whole tree.
                zero_nodes, _ = self.engine.containment_frontier(
                    containment_tags, start_nodes=None, stats=stats)
                return sorted(zero_nodes)
            # A leading child step anchors at the root element itself.
            root = [self.engine.server.root_id()]
            return self.engine.filter_containing(root, containment_tags, stats)

        if context is None:
            raise QueryError("non-initial step executed without a context")

        children_map = self.engine.children_of(context, stats)
        child_ids = sorted({child for node in context for child in children_map[node]})
        if axis is Axis.CHILD:
            return self.engine.filter_containing(child_ids, containment_tags, stats)
        # DESCENDANT: strict descendants of the context nodes.
        if not child_ids:
            return []
        zero_nodes, _ = self.engine.containment_frontier(
            containment_tags, start_nodes=child_ids, stats=stats)
        return sorted(zero_nodes)

    def _anchor(self, candidates: Sequence[int], tag: str,
                stats: QueryStats) -> List[int]:
        """Restrict candidates to the nodes actually carrying the step's tag."""
        if not candidates:
            return []
        if tag == "*":
            return sorted(set(candidates))
        return self.engine.confirm_tag_nodes(candidates, tag, stats)
