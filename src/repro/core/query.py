"""The interactive search protocol over shared polynomial trees (§4.3).

The client and the server evaluate a query together:

1. the client maps the queried tag name to its secret point ``x = map(tag)``
   and sends the point to the server;
2. the server evaluates *its* share polynomial of every live node at the
   point and returns the values;
3. the client evaluates its own (regenerated) shares, adds the two values
   per node, and interprets the sum: zero means the subtree contains the
   tag, non-zero marks a dead branch which the client tells the server to
   prune;
4. zero nodes that have no zero child are definite answers; other zero
   nodes are *candidates* that the client confirms by reconstructing the
   node's tag value from the node polynomial and its children
   (Theorem 1/2, eq. (1)–(3)) — this is also how an untrusted server's
   answers are verified.

The module is network-agnostic: the client-side engine talks to a
:class:`ServerInterface`.  :class:`LocalServerAdapter` runs the server
in-process (used by tests and the plain API), while
:class:`repro.net.client.RemoteServerAdapter` sends the same requests over
an instrumented channel to measure bandwidth and round trips.
"""

from __future__ import annotations

import abc
import enum
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..algebra.poly import Polynomial
from ..algebra.quotient import EncodingRing, FpQuotientRing
from ..errors import QueryError, TagRecoveryError, VerificationError
from .mapping import TagMapping
from .share_tree import ClientShareGenerator, ServerShareTree

__all__ = [
    "VerificationMode",
    "QueryStats",
    "FrontierResult",
    "ServerInterface",
    "LocalServerAdapter",
    "LookupOutcome",
    "AdaptiveLookahead",
    "QueryEngine",
]


class AdaptiveLookahead:
    """Speculation-depth controller driven by the observed prune rate.

    Batched v2 transports accept a ``lookahead`` depth per
    :meth:`ServerInterface.frontier_round`: the server speculatively
    evaluates that many extra levels below the requested frontier.  Deep
    speculation is free bandwidth-wise only while the frontier stays alive
    — every child of a node that turns out dead was evaluated and shipped
    for nothing.  This controller tracks the fraction of each round's
    frontier that got pruned and adjusts the depth one step at a time:
    deepen while the prune rate stays at or below ``deepen_below``, back
    off when it reaches ``backoff_above`` (between the two thresholds the
    depth holds).

    Instances are plain ``lookahead`` values: ``int(controller)`` (and
    hence :class:`~repro.net.messages.FrontierRequest`, which coerces with
    ``int``) sees the current depth, so a controller can be passed wherever
    a fixed depth is accepted — ``QueryEngine(frontier_lookahead=...)``,
    :meth:`ServerInterface.frontier_round`, or the async
    ``AsyncServerInterface.begin_frontier``/``frontier_round`` pair.  The
    engine feeds it automatically; callers driving a transport by hand
    call :meth:`observe` with each round's frontier size and prune count.
    """

    #: How many per-round trajectory entries are retained (newest win), so
    #: a long-lived serving controller cannot grow without bound.
    TRAJECTORY_LIMIT = 1024

    def __init__(self, initial: int = 1, min_depth: int = 0,
                 max_depth: int = 4, deepen_below: float = 0.25,
                 backoff_above: float = 0.5,
                 trajectory_limit: int = TRAJECTORY_LIMIT) -> None:
        if not 0 <= min_depth <= max_depth:
            raise ValueError(
                f"need 0 <= min_depth <= max_depth, got {min_depth}..{max_depth}")
        if not 0.0 <= deepen_below <= backoff_above:
            raise ValueError(
                f"need 0 <= deepen_below <= backoff_above, got "
                f"{deepen_below}/{backoff_above}")
        self.min_depth = min_depth
        self.max_depth = max_depth
        self.deepen_below = deepen_below
        self.backoff_above = backoff_above
        self.depth = max(min_depth, min(initial, max_depth))
        #: Rounds observed (diagnostics; mirrored into bench output).
        self.rounds = 0
        #: Depth increases / decreases taken so far.
        self.deepened = 0
        self.backed_off = 0
        #: Bounded per-round history: the prune-rate trajectory the
        #: controller steered by, exported via :meth:`trajectory` /
        #: :meth:`as_dict` for the observability layer and BENCH_7.
        self._trajectory: Deque[Dict[str, float]] = deque(
            maxlen=max(int(trajectory_limit), 1))

    def observe(self, frontier_size: int, pruned: int) -> int:
        """Fold one descent round's outcome in; returns the new depth."""
        if frontier_size > 0:
            self.rounds += 1
            rate = pruned / frontier_size
            if rate <= self.deepen_below and self.depth < self.max_depth:
                self.depth += 1
                self.deepened += 1
            elif rate >= self.backoff_above and self.depth > self.min_depth:
                self.depth -= 1
                self.backed_off += 1
            self._trajectory.append({
                "round": self.rounds,
                "frontier_size": int(frontier_size),
                "pruned": int(pruned),
                "prune_rate": rate,
                "depth": self.depth,
            })
        return self.depth

    def trajectory(self) -> List[Dict[str, float]]:
        """Per-round history entries, oldest first (bounded, newest win).

        Each entry records the round number, the observed frontier size
        and prune count, the resulting prune rate, and the depth the
        controller chose *after* folding that round in.
        """
        return [dict(entry) for entry in self._trajectory]

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly summary plus the trajectory (for stats/bench payloads)."""
        return {
            "depth": self.depth,
            "min_depth": self.min_depth,
            "max_depth": self.max_depth,
            "rounds": self.rounds,
            "deepened": self.deepened,
            "backed_off": self.backed_off,
            "trajectory": self.trajectory(),
        }

    def __int__(self) -> int:
        return self.depth

    def __index__(self) -> int:
        return self.depth

    def __repr__(self) -> str:
        return (f"AdaptiveLookahead(depth={self.depth}, rounds={self.rounds}, "
                f"deepened={self.deepened}, backed_off={self.backed_off})")


class VerificationMode(enum.Enum):
    """How much the client checks the server's answers (§4.3, last paragraph)."""

    #: Untrusted server: fetch full share polynomials of every candidate and
    #: its children, solve for the tag value and check all coefficient
    #: equations.  Results are exact and verified.
    FULL = "full"

    #: Trusted server: only constant coefficients are transmitted and only the
    #: constant-term equation is checked.  Cheaper in bandwidth, weaker in
    #: assurance (candidates whose check is inconclusive are accepted).
    CONSTANT_ONLY = "constant-only"

    #: No verification traffic at all: structural evidence only.  In the
    #: ``F_p`` ring deepest-zero nodes are still exact; other zero nodes are
    #: reported as unverified candidates.
    NONE = "none"


class QueryStats:
    """Work and communication accounting for one query execution."""

    __slots__ = ("nodes_evaluated", "evaluations", "nodes_pruned", "round_trips",
                 "candidates_verified", "polynomials_fetched", "constants_fetched",
                 "points_sent")

    def __init__(self) -> None:
        self.nodes_evaluated = 0       # distinct nodes whose share was evaluated
        self.evaluations = 0           # (node, point) evaluation pairs
        self.nodes_pruned = 0          # nodes reported as dead branches
        self.round_trips = 0           # request/response exchanges with the server
        self.candidates_verified = 0   # candidate nodes run through verification
        self.polynomials_fetched = 0   # full share polynomials transferred
        self.constants_fetched = 0     # constant coefficients transferred
        self.points_sent = 0           # query points revealed to the server

    def merge(self, other: "QueryStats") -> "QueryStats":
        """Accumulate another stats record into this one (returns self)."""
        for name in self.__slots__:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        return self

    def as_dict(self) -> Dict[str, int]:
        """Dictionary form for tabular reporting."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        fields = ", ".join(f"{name}={getattr(self, name)}" for name in self.__slots__)
        return f"QueryStats({fields})"


class FrontierResult:
    """What one descent round returns, plus its transport cost."""

    __slots__ = ("evaluations", "children", "round_trips")

    def __init__(self, evaluations: Dict[int, Dict[int, int]],
                 children: Dict[int, List[int]], round_trips: int) -> None:
        #: ``point -> node_id -> server share evaluation``.
        self.evaluations = evaluations
        #: Child lists of every frontier node (empty when not requested).
        self.children = children
        #: Request/response exchanges this round actually cost.
        self.round_trips = round_trips


class ServerInterface(abc.ABC):
    """The requests a client may send to the (untrusted) search server."""

    #: True for transports that answer a whole frontier round natively in
    #: one exchange (the batched v2 protocol).  The engine then evaluates
    #: the full frontier at every point up front — extra share evaluations
    #: for nodes that die at the first point, in exchange for O(depth)
    #: round trips.  Chatty-but-minimal-work transports (in-process, v1)
    #: leave this False and get the original lazy per-point descent.
    batched_rounds = False

    @abc.abstractmethod
    def root_id(self) -> int:
        """Identifier of the root node."""

    @abc.abstractmethod
    def node_count(self) -> int:
        """Total number of nodes stored (public)."""

    @abc.abstractmethod
    def children_of(self, node_ids: Sequence[int]) -> Dict[int, List[int]]:
        """Public child lists for a batch of nodes."""

    @abc.abstractmethod
    def evaluate(self, node_ids: Sequence[int], point: int) -> Dict[int, int]:
        """Server-share evaluations at ``point`` for a batch of nodes."""

    @abc.abstractmethod
    def fetch_polynomials(self, node_ids: Sequence[int]) -> Dict[int, Polynomial]:
        """Full server-share polynomials (used by FULL verification)."""

    @abc.abstractmethod
    def fetch_constants(self, node_ids: Sequence[int]) -> Dict[int, int]:
        """Constant coefficients of server shares (CONSTANT_ONLY verification)."""

    @abc.abstractmethod
    def prune(self, node_ids: Sequence[int]) -> None:
        """Inform the server that these subtrees are dead for the current query."""

    # -- batched protocol (default: composed from the primitives above) ---------------
    def frontier_round(self, node_ids: Sequence[int], points: Sequence[int],
                       prune: Sequence[int] = (), include_children: bool = True,
                       lookahead: int = 0) -> FrontierResult:
        """One whole descent round: prune notice, evaluations, child lists.

        The base implementation composes the per-kind primitives (one
        exchange each — the v1 behaviour) and never speculates
        (``lookahead`` is ignored: a chatty transport gains nothing from
        it); transports that support the v2 wire protocol override it with
        a single batched exchange that may cover several levels.
        """
        round_trips = 0
        if prune:
            self.prune(list(prune))
            round_trips += 1
        evaluations: Dict[int, Dict[int, int]] = {}
        for point in points:
            evaluations[point] = self.evaluate(node_ids, point)
            round_trips += 1
        children: Dict[int, List[int]] = {}
        if include_children and node_ids:
            children = self.children_of(node_ids)
            round_trips += 1
        return FrontierResult(evaluations, children, round_trips)

    def verification_bundle(self, node_ids: Sequence[int],
                            constants_only: bool = False
                            ) -> Tuple[Dict[int, List[int]], Dict[int, object], int]:
        """Child lists plus share data for ``node_ids`` *and their children*.

        Verification (Theorem 1/2) always needs a candidate's children, so
        the v2 transport answers both in one exchange; the base
        implementation composes the two v1 requests.  Returns
        ``(children, data, round_trips)`` where ``data`` maps every node in
        the closure to its share polynomial (or constant coefficient when
        ``constants_only``).
        """
        children = self.children_of(node_ids)
        needed = sorted(set(node_ids) | {
            child for node_id in node_ids for child in children[node_id]})
        if constants_only:
            data: Dict[int, object] = dict(self.fetch_constants(needed))
        else:
            data = dict(self.fetch_polynomials(needed))
        return children, data, 2

    def flush_prunes(self) -> int:
        """Deliver any buffered prune notices; returns round trips spent.

        Transports that piggyback prune notices on later requests override
        this; for everything else pruning is immediate and there is nothing
        to flush.
        """
        return 0


class LocalServerAdapter(ServerInterface):
    """Runs the server role in-process against a :class:`ServerShareTree`.

    Also keeps the server-visible trace (queried points, pruned nodes) so the
    leakage analysis (:mod:`repro.analysis.leakage`) can audit exactly what an
    honest-but-curious server observes.
    """

    def __init__(self, share_tree: ServerShareTree) -> None:
        self.share_tree = share_tree
        self.observed_points: List[int] = []
        self.observed_prunes: List[int] = []
        self.evaluation_requests = 0

    def root_id(self) -> int:
        if self.share_tree.root_id is None:
            raise QueryError("the server share tree is empty")
        return self.share_tree.root_id

    def node_count(self) -> int:
        return self.share_tree.node_count()

    def children_of(self, node_ids: Sequence[int]) -> Dict[int, List[int]]:
        return {node_id: self.share_tree.child_ids(node_id) for node_id in node_ids}

    def evaluate(self, node_ids: Sequence[int], point: int) -> Dict[int, int]:
        self.observed_points.append(point)
        self.evaluation_requests += len(node_ids)
        return self.share_tree.evaluate_many(node_ids, point)

    def fetch_polynomials(self, node_ids: Sequence[int]) -> Dict[int, Polynomial]:
        return {node_id: self.share_tree.share_of(node_id) for node_id in node_ids}

    def fetch_constants(self, node_ids: Sequence[int]) -> Dict[int, int]:
        return {node_id: self.share_tree.share_of(node_id).constant_term
                for node_id in node_ids}

    def prune(self, node_ids: Sequence[int]) -> None:
        self.observed_prunes.extend(node_ids)


class LookupOutcome:
    """Result of one element lookup ``//tag``."""

    __slots__ = ("tag", "point", "matches", "unverified_candidates", "zero_nodes",
                 "pruned_nodes", "stats")

    def __init__(self, tag: str, point: int) -> None:
        self.tag = tag
        self.point = point
        #: Node ids confirmed to carry the queried tag.
        self.matches: List[int] = []
        #: Zero-sum nodes that could not be confirmed (only in relaxed modes).
        self.unverified_candidates: List[int] = []
        #: Every node whose sum evaluated to zero (subtree contains the tag).
        self.zero_nodes: List[int] = []
        #: Nodes reported to the server as dead branches.
        self.pruned_nodes: List[int] = []
        self.stats = QueryStats()

    def all_answers(self) -> List[int]:
        """Matches plus unverified candidates (what a trusting client would use)."""
        return sorted(set(self.matches) | set(self.unverified_candidates))

    def __repr__(self) -> str:
        return (f"LookupOutcome(tag={self.tag!r}, matches={self.matches}, "
                f"candidates={self.unverified_candidates})")


class QueryEngine:
    """Client-side query engine implementing the §4.3 protocol."""

    def __init__(self, ring: EncodingRing, mapping: TagMapping,
                 client_shares: ClientShareGenerator, server: ServerInterface,
                 verification: VerificationMode = VerificationMode.FULL,
                 frontier_lookahead: int = 1) -> None:
        self.ring = ring
        self.mapping = mapping
        self.client_shares = client_shares
        self.server = server
        self.verification = verification
        #: Speculative depth per batched frontier exchange (v2 transports):
        #: a fixed int, an :class:`AdaptiveLookahead` controller, or the
        #: string ``"adaptive"`` for a controller with default thresholds.
        if frontier_lookahead == "adaptive":
            frontier_lookahead = AdaptiveLookahead()
        self.frontier_lookahead = frontier_lookahead
        # Cache of the public structure discovered so far (children lists).
        self._children_cache: Dict[int, List[int]] = {}

    # -- public entry points ----------------------------------------------------------
    def lookup(self, tag: str) -> LookupOutcome:
        """Evaluate the element lookup ``//tag`` (§4.3 "Element Lookup")."""
        point = self.mapping.value(tag)
        outcome = LookupOutcome(tag, point)
        stats = outcome.stats
        stats.points_sent += 1

        zero_nodes, pruned, evaluations = self._descend([point], stats)
        outcome.zero_nodes = sorted(zero_nodes)
        outcome.pruned_nodes = sorted(pruned)

        self._classify_candidates(outcome, point, evaluations, stats)
        stats.round_trips += self.server.flush_prunes()
        return outcome

    def containment_frontier(self, tags: Sequence[str],
                             start_nodes: Optional[Sequence[int]] = None,
                             stats: Optional[QueryStats] = None) -> Tuple[Set[int], QueryStats]:
        """Nodes (from ``start_nodes`` downwards) whose subtree contains *all* ``tags``.

        This is the primitive behind the paper's advanced querying: a single
        descent prunes on every queried tag at once.
        """
        stats = stats if stats is not None else QueryStats()
        points = [self.mapping.value(tag) for tag in tags]
        stats.points_sent += len(set(points))
        zero_nodes, _, _ = self._descend(points, stats, start_nodes=start_nodes)
        return zero_nodes, stats

    def filter_containing(self, node_ids: Sequence[int], tags: Sequence[str],
                          stats: QueryStats) -> List[int]:
        """Subset of ``node_ids`` whose subtree contains *all* ``tags``.

        A single evaluation round per tag (or, over a batched transport, one
        exchange for *all* tags), no descent — used by the advanced query
        executor for child-axis steps.
        """
        alive = list(node_ids)
        if self.server.batched_rounds and alive and tags:
            points = [self.mapping.value(tag) for tag in tags]
            stats.points_sent += len(set(points))
            result = self.server.frontier_round(alive, points,
                                                include_children=False)
            stats.round_trips += result.round_trips
            for point in points:
                server_values = result.evaluations[point]
                stats.evaluations += len(server_values)
                client_values = self.client_shares.evaluate_many(alive, point)
                modulus = self.ring.evaluation_modulus(point)
                still_alive = []
                for node_id in alive:
                    total = client_values[node_id] + server_values[node_id]
                    if modulus is not None:
                        total %= modulus
                    if self.ring.evaluation_is_zero(total, point):
                        still_alive.append(node_id)
                alive = still_alive
            stats.nodes_evaluated += len(set(node_ids))
            return alive
        for tag in tags:
            if not alive:
                break
            point = self.mapping.value(tag)
            stats.points_sent += 1
            sums = self._sum_evaluations(alive, point, stats)
            alive = [node_id for node_id in alive
                     if self.ring.evaluation_is_zero(sums[node_id], point)]
        stats.nodes_evaluated += len(set(node_ids))
        return alive

    def confirm_tag_nodes(self, node_ids: Sequence[int], tag: str,
                          stats: QueryStats) -> List[int]:
        """Which of ``node_ids`` actually carry ``tag`` (not just a descendant).

        Uses full Theorem-1/2 reconstruction, i.e. the untrusted-server
        verification path; the advanced query strategies rely on it to anchor
        each location step.
        """
        if not node_ids:
            return []
        point = self.mapping.value(tag)
        confirmed, _ = self._verify_full(sorted(set(node_ids)), point, stats)
        return confirmed

    def children_of(self, node_ids: Sequence[int], stats: QueryStats) -> Dict[int, List[int]]:
        """Public child lists (cached; counts a round trip on cache misses)."""
        return self._children(node_ids, stats)

    # -- protocol internals --------------------------------------------------------------
    def _children(self, node_ids: Sequence[int], stats: QueryStats) -> Dict[int, List[int]]:
        missing = [node_id for node_id in node_ids if node_id not in self._children_cache]
        if missing:
            fetched = self.server.children_of(missing)
            self._children_cache.update(fetched)
            stats.round_trips += 1
        return {node_id: self._children_cache[node_id] for node_id in node_ids}

    def _sum_evaluations(self, node_ids: Sequence[int], point: int,
                         stats: QueryStats) -> Dict[int, int]:
        """Server round trip + batched local share evaluation + per-node sums."""
        if not node_ids:
            return {}
        server_values = self.server.evaluate(node_ids, point)
        stats.round_trips += 1
        stats.evaluations += len(node_ids)
        client_values = self.client_shares.evaluate_many(node_ids, point)
        modulus = self.ring.evaluation_modulus(point)
        sums: Dict[int, int] = {}
        for node_id in node_ids:
            total = client_values[node_id] + server_values[node_id]
            sums[node_id] = total if modulus is None else total % modulus
        return sums

    def _descend(self, points: Sequence[int], stats: QueryStats,
                 start_nodes: Optional[Sequence[int]] = None
                 ) -> Tuple[Set[int], Set[int], Dict[Tuple[int, int], int]]:
        """Breadth-first descent pruning on *all* ``points`` simultaneously.

        Each level is one :meth:`ServerInterface.frontier_round`: the whole
        frontier is evaluated at every query point and its child lists are
        fetched speculatively in the same exchange (children of nodes that
        turn out dead cost bytes but never an extra round trip).  Dead
        branches found at one level are reported as the prune list of the
        *next* level's round — batched transports piggyback them for free.

        Returns ``(zero_nodes, pruned_nodes, evaluations)`` where
        ``evaluations[(node_id, point)]`` is the summed evaluation value and
        ``zero_nodes`` are the nodes whose sums are zero at *every* point.
        """
        if self.server.batched_rounds:
            return self._descend_batched(points, stats, start_nodes)
        return self._descend_lazy(points, stats, start_nodes)

    def _descend_batched(self, points: Sequence[int], stats: QueryStats,
                         start_nodes: Optional[Sequence[int]] = None
                         ) -> Tuple[Set[int], Set[int], Dict[Tuple[int, int], int]]:
        """Descent over a batched transport.

        Each exchange covers the current frontier *plus*
        ``frontier_lookahead`` speculated levels; the engine consumes the
        speculated evaluations locally and only goes back to the server
        when the frontier outruns the data it already holds.  With an
        :class:`AdaptiveLookahead` controller the depth is re-read before
        every exchange and the controller observes every round's prune
        outcome, so speculation deepens on alive-heavy workloads and backs
        off as soon as speculated children start getting pruned.
        """
        lookahead = self.frontier_lookahead
        if lookahead == "adaptive":
            lookahead = self.frontier_lookahead = AdaptiveLookahead()
        controller = (lookahead if isinstance(lookahead, AdaptiveLookahead)
                      else None)
        frontier: List[int] = (list(start_nodes) if start_nodes is not None
                               else [self.server.root_id()])
        zero_nodes: Set[int] = set()
        pruned: Set[int] = set()
        evaluations: Dict[Tuple[int, int], int] = {}
        touched: Set[int] = set()
        pending_dead: List[int] = []
        # Server data received so far: per-point evaluations and child lists.
        server_values: Dict[int, Dict[int, int]] = {point: {} for point in points}
        known_children: Dict[int, List[int]] = {}

        while frontier:
            touched.update(frontier)
            if any(node_id not in server_values[point]
                   for point in points for node_id in frontier):
                result = self.server.frontier_round(
                    frontier, points, prune=pending_dead,
                    lookahead=int(lookahead))
                pending_dead = []
                stats.round_trips += result.round_trips
                for point in points:
                    received = result.evaluations[point]
                    server_values[point].update(received)
                    stats.evaluations += len(received)
                known_children.update(result.children)
                self._children_cache.update(result.children)
            # A node stays alive only if its summed evaluation is zero at
            # *all* points (its subtree contains every queried tag).
            zero_at_all: Dict[int, bool] = {node_id: True for node_id in frontier}
            for point in points:
                client_values = self.client_shares.evaluate_many(frontier, point)
                modulus = self.ring.evaluation_modulus(point)
                received = server_values[point]
                for node_id in frontier:
                    total = client_values[node_id] + received[node_id]
                    if modulus is not None:
                        total %= modulus
                    evaluations[(node_id, point)] = total
                    if not self.ring.evaluation_is_zero(total, point):
                        zero_at_all[node_id] = False
            alive = [node_id for node_id in frontier if zero_at_all[node_id]]
            dead = [node_id for node_id in frontier if not zero_at_all[node_id]]
            pending_dead.extend(dead)
            pruned.update(dead)
            stats.nodes_pruned += len(dead)
            if controller is not None:
                controller.observe(len(frontier), len(dead))
            zero_nodes.update(alive)
            frontier = [child for node_id in alive
                        for child in known_children.get(node_id, [])]
        if pending_dead:
            self.server.prune(pending_dead)
        stats.nodes_evaluated += len(touched)
        return zero_nodes, pruned, evaluations

    def _descend_lazy(self, points: Sequence[int], stats: QueryStats,
                      start_nodes: Optional[Sequence[int]] = None
                      ) -> Tuple[Set[int], Set[int], Dict[Tuple[int, int], int]]:
        """Descent over a chatty transport: lazy per-point evaluation.

        Nodes dead at an earlier point are never evaluated at later points
        and only the live part of the frontier has its children fetched —
        minimal server work and bytes, at one exchange per request kind.
        """
        frontier: List[int] = (list(start_nodes) if start_nodes is not None
                               else [self.server.root_id()])
        zero_nodes: Set[int] = set()
        pruned: Set[int] = set()
        evaluations: Dict[Tuple[int, int], int] = {}
        touched: Set[int] = set()

        while frontier:
            touched.update(frontier)
            alive: List[int] = list(frontier)
            for point in points:
                if not alive:
                    break
                sums = self._sum_evaluations(alive, point, stats)
                still_alive = []
                for node_id in alive:
                    evaluations[(node_id, point)] = sums[node_id]
                    if self.ring.evaluation_is_zero(sums[node_id], point):
                        still_alive.append(node_id)
                alive = still_alive
            dead = [node_id for node_id in frontier if node_id not in alive]
            if dead:
                self.server.prune(dead)
                pruned.update(dead)
                stats.nodes_pruned += len(dead)
            zero_nodes.update(alive)
            if not alive:
                break
            children_map = self._children(alive, stats)
            frontier = [child for node_id in alive for child in children_map[node_id]]
        stats.nodes_evaluated += len(touched)
        return zero_nodes, pruned, evaluations

    # -- candidate classification & verification -----------------------------------------------
    def _classify_candidates(self, outcome: LookupOutcome, point: int,
                             evaluations: Dict[Tuple[int, int], int],
                             stats: QueryStats) -> None:
        zero_set = set(outcome.zero_nodes)
        children_map = self._children(sorted(zero_set), stats) if zero_set else {}

        definite: List[int] = []
        ambiguous: List[int] = []
        exact_evaluation = isinstance(self.ring, FpQuotientRing)
        for node_id in sorted(zero_set):
            child_zero = any(child in zero_set for child in children_map.get(node_id, []))
            if not child_zero and exact_evaluation:
                # Deepest zero node in F_p: the zero cannot come from below, so
                # the node itself carries the tag (paper: "a definite answer").
                definite.append(node_id)
            else:
                ambiguous.append(node_id)

        if self.verification is VerificationMode.NONE:
            outcome.matches = definite
            outcome.unverified_candidates = ambiguous
            return

        if self.verification is VerificationMode.FULL:
            confirmed, rejected = self._verify_full(ambiguous + (
                [] if exact_evaluation else definite), point, stats)
            if exact_evaluation:
                outcome.matches = sorted(set(definite) | set(confirmed))
            else:
                outcome.matches = sorted(confirmed)
            outcome.unverified_candidates = []
            return

        # CONSTANT_ONLY: cheap check; inconclusive nodes stay candidates.
        confirmed, inconclusive = self._verify_constant_only(ambiguous, point, stats)
        outcome.matches = sorted(set(definite) | set(confirmed))
        outcome.unverified_candidates = sorted(inconclusive)

    def _reconstruct_polynomials(self, node_ids: Sequence[int],
                                 stats: QueryStats) -> Dict[int, Polynomial]:
        """Fetch server shares and add the client shares (full polynomials)."""
        if not node_ids:
            return {}
        server_shares = self.server.fetch_polynomials(node_ids)
        stats.round_trips += 1
        stats.polynomials_fetched += len(node_ids)
        full: Dict[int, Polynomial] = {}
        for node_id in node_ids:
            full[node_id] = self.ring.add(
                self.client_shares.share_for(node_id), server_shares[node_id])
        return full

    def _verification_children(self, candidates: Sequence[int], stats: QueryStats,
                               constants_only: bool
                               ) -> Tuple[Dict[int, List[int]], Optional[Dict[int, object]]]:
        """Child lists of ``candidates`` plus, on a cache miss, their share data.

        When every candidate's children are already cached (the common case
        after a descent) only the cached structure is returned and the
        caller fetches share data separately.  Otherwise one
        :meth:`ServerInterface.verification_bundle` exchange answers both —
        batched transports collapse it into a single round trip.
        """
        if all(node_id in self._children_cache for node_id in candidates):
            return self._children(list(candidates), stats), None
        children_map, data, round_trips = self.server.verification_bundle(
            list(candidates), constants_only=constants_only)
        self._children_cache.update(children_map)
        stats.round_trips += round_trips
        if constants_only:
            stats.constants_fetched += len(data)
        else:
            stats.polynomials_fetched += len(data)
        return children_map, data

    def _verify_full(self, candidates: Sequence[int], point: int,
                     stats: QueryStats) -> Tuple[List[int], List[int]]:
        """Exact verification: recover each candidate's tag value (eq. (1)–(3))."""
        confirmed: List[int] = []
        rejected: List[int] = []
        if not candidates:
            return confirmed, rejected
        children_map, server_shares = self._verification_children(
            candidates, stats, constants_only=False)
        needed = sorted(set(candidates) | {
            child for node_id in candidates for child in children_map[node_id]})
        if server_shares is None:
            polynomials = self._reconstruct_polynomials(needed, stats)
        else:
            polynomials = {
                node_id: self.ring.add(self.client_shares.share_for(node_id),
                                       server_shares[node_id])
                for node_id in needed}
        for node_id in candidates:
            stats.candidates_verified += 1
            node_poly = polynomials[node_id]
            child_polys = [polynomials[c] for c in children_map[node_id]]
            try:
                value = self.ring.recover_tag(node_poly, child_polys)
            except TagRecoveryError as exc:
                raise VerificationError(
                    f"node {node_id}: the server's polynomials are inconsistent "
                    "with the encoding invariant") from exc
            (confirmed if value == point else rejected).append(node_id)
        return confirmed, rejected

    def _verify_constant_only(self, candidates: Sequence[int], point: int,
                              stats: QueryStats) -> Tuple[List[int], List[int]]:
        """Cheap check using only constant coefficients (trusted-server mode).

        The constant-coefficient equation ``f_0 = (-t)·∏ (q_i)_0`` holds
        exactly whenever the product ``(x-t)·∏ q_i`` does not wrap around the
        ring modulus (small subtrees).  When it fails the node is reported as
        an *unverified candidate* — the trusted server is believed, but the
        reduced assurance is made visible to the caller.
        """
        confirmed: List[int] = []
        inconclusive: List[int] = []
        if not candidates:
            return confirmed, inconclusive
        children_map, bundled = self._verification_children(
            candidates, stats, constants_only=True)
        if bundled is None:
            needed = sorted(set(candidates) | {
                child for node_id in candidates for child in children_map[node_id]})
            server_constants = self.server.fetch_constants(needed)
            stats.round_trips += 1
            stats.constants_fetched += len(needed)
        else:
            server_constants = bundled
        ring = self.ring.coefficient_ring
        for node_id in candidates:
            stats.candidates_verified += 1
            node_constant = ring.add(
                self.client_shares.share_for(node_id).constant_term,
                server_constants[node_id])
            product = ring.one
            for child in children_map[node_id]:
                child_constant = ring.add(
                    self.client_shares.share_for(child).constant_term,
                    server_constants[child])
                product = ring.mul(product, child_constant)
            expected = ring.mul(ring.neg(ring.coerce(point)), product)
            if ring.eq(node_constant, expected):
                confirmed.append(node_id)
            else:
                inconclusive.append(node_id)
        return confirmed, inconclusive
