"""Dynamic updates to an outsourced document.

The paper describes a static outsourcing step; a practical deployment also
needs to *modify* the data without re-uploading everything.  Because every
ancestor polynomial is the product of its own linear factor with its
children's polynomials (§4.1), an insertion, deletion or rename below a
node only changes the polynomials on the root-to-node path:

* **insert** a new subtree under parent ``P``: every ancestor polynomial is
  multiplied by the new subtree's polynomial;
* **delete** a subtree / **rename** a node: the affected ancestors are
  recomputed bottom-up as ``(x − map(tag)) · ∏ children`` — their own tag
  value is recovered first via Theorem 1/2, so nothing about the document
  needs to be stored on the client.

Division is deliberately avoided: the ``F_p[x]/(x^{p−1}−1)`` quotient ring
has zero divisors, so "dividing out" a removed factor from a *reduced*
polynomial is not well defined; recomputing a node from its children is
always exact and costs one ring product per affected node.

The client can do all of this from the public structure plus the server's
shares (it owns the seed, so it can reconstruct any polynomial it needs),
then pushes fresh server shares for exactly the affected nodes.  An update
therefore touches ``O(depth · fanout + |new subtree|)`` nodes.

**Atomicity.**  Every public operation computes all of its new polynomials
first (reads see the pre-update state throughout) and then pushes the
whole mutation set as *one* :meth:`repro.net.store.ShareStore.transaction`
batch.  On the durable SQLite backend that batch travels through a
write-ahead update log, so a crash mid-update can never leave a torn tree
whose ancestors no longer equal ``(x − tag) · ∏ children``; on the
in-memory backend the batch is simply applied in one go.  Passing a
``lock`` (e.g. a :class:`~repro.net.engine.HostedDocument`'s document
lock) additionally serialises each whole operation against concurrent
query traffic on the same store.

**Remote editing.**  Nothing in the planner assumes the store is local:
``server_tree`` only needs the read surface of a
:class:`~repro.net.store.ShareStore` plus a ``transaction()``.
:class:`~repro.net.client.RemoteUpdatableTree` exploits exactly that — it
substitutes a client-side mirror of a *hosted* document, and the batch
each operation records here travels to the server as one v3
:class:`~repro.net.messages.UpdateRequest` instead of being applied
in-process.  The arithmetic is identical either way, which is what makes
the remote and in-process paths bit-identical by construction.
"""

from __future__ import annotations

import contextlib
from typing import ContextManager, Dict, List, Optional

from ..algebra.poly import Polynomial
from ..algebra.quotient import EncodingRing
from ..errors import QueryError
from ..xmltree import XmlElement
from .mapping import TagMapping
from .share_tree import ClientShareGenerator, ServerShareTree

__all__ = ["UpdateReport", "UpdatableTree"]


class UpdateReport:
    """What an update touched (for cost accounting and tests)."""

    __slots__ = ("operation", "affected_ancestors", "new_node_ids",
                 "removed_node_ids", "shares_rewritten")

    def __init__(self, operation: str) -> None:
        self.operation = operation
        self.affected_ancestors: List[int] = []
        self.new_node_ids: List[int] = []
        self.removed_node_ids: List[int] = []
        self.shares_rewritten = 0

    def as_dict(self) -> Dict[str, object]:
        """Dictionary form for tabular reporting."""
        return {
            "operation": self.operation,
            "affected_ancestors": len(self.affected_ancestors),
            "new_nodes": len(self.new_node_ids),
            "removed_nodes": len(self.removed_node_ids),
            "shares_rewritten": self.shares_rewritten,
        }

    def __repr__(self) -> str:
        return (f"UpdateReport({self.operation!r}, ancestors={self.affected_ancestors}, "
                f"new={self.new_node_ids}, removed={self.removed_node_ids})")


class UpdatableTree:
    """Client-side editor for an outsourced share tree.

    The editor needs the client's secret state (mapping + share generator)
    and access to the server share tree it mutates.  In a deployment the
    mutations would travel as explicit update messages; the cost model
    (which nodes receive new shares) is identical, and that is what the
    report captures.

    All mutations of one operation are pushed as a single
    :meth:`~repro.net.store.ShareStore.transaction` batch, so
    ``server_tree`` may equally be any :class:`repro.net.store.ShareStore`
    backend — updates against the durable store persist atomically (the
    batch is write-ahead logged and replayed or rolled back after a
    crash).  ``lock``, when given, is held across each whole operation
    (reads included); hand it a hosted document's lock so a coalesced
    serving tick never interleaves with a half-computed update.
    """

    def __init__(self, ring: EncodingRing, mapping: TagMapping,
                 client_shares: ClientShareGenerator,
                 server_tree: ServerShareTree,
                 lock: Optional[ContextManager] = None) -> None:
        self.ring = ring
        self.mapping = mapping
        self.client_shares = client_shares
        self.server_tree = server_tree
        self.lock = lock

    # -- share plumbing -------------------------------------------------------------
    def _guard(self) -> ContextManager:
        """The operation-wide lock (a null context when none was given)."""
        return self.lock if self.lock is not None else contextlib.nullcontext()

    def _transaction(self):
        """One buffered mutation batch against the server tree/store."""
        # Imported lazily: repro.core must not depend on repro.net at import
        # time (net's transports import core).
        from ..net.store import as_share_store

        return as_share_store(self.server_tree).transaction()

    def _node_polynomial(self, node_id: int) -> Polynomial:
        """Reconstruct the true polynomial of a node (client + server share)."""
        return self.ring.add(self.client_shares.share_for(node_id),
                             self.server_tree.share_of(node_id))

    def _write_polynomial(self, txn, node_id: int, polynomial: Polynomial,
                          report: UpdateReport) -> None:
        """Buffer a new value for a node by rewriting its *server* share."""
        client_share = self.client_shares.share_for(node_id)
        txn.replace_share(node_id, self.ring.sub(polynomial, client_share))
        report.shares_rewritten += 1

    def _ancestor_path(self, node_id: int) -> List[int]:
        """Ancestors of ``node_id`` from its parent up to the root."""
        path: List[int] = []
        current = self.server_tree.parent_id(node_id)
        while current is not None:
            path.append(current)
            current = self.server_tree.parent_id(current)
        return path

    def _own_tag_value(self, node_id: int) -> int:
        """Recover a node's mapped tag value from the shares (Theorem 1/2)."""
        children = [self._node_polynomial(child)
                    for child in self.server_tree.child_ids(node_id)]
        return self.ring.recover_tag(self._node_polynomial(node_id), children)

    def _subtree_polynomials(self, element: XmlElement) -> Dict[int, Polynomial]:
        """Encode a plaintext subtree bottom-up in **one** pass.

        Returns the §4.1 polynomial of every node, keyed by ``id(node)``.
        Each node's product is computed exactly once and reused by its
        parent — the per-node recursion this replaces recomputed the whole
        descendant product for every node, making insertion O(n²) in the
        subtree size.
        """
        polynomials: Dict[int, Polynomial] = {}
        for node in element.iter_postorder():
            polynomial = self.ring.from_tag_value(self.mapping.value(node.tag))
            for child in node.children:
                polynomial = self.ring.mul(polynomial, polynomials[id(child)])
            polynomials[id(node)] = polynomial
        return polynomials

    def _recompute_path(self, txn, ordered_nodes: List[int],
                        own_values: Dict[int, int], skip_children: set,
                        report: UpdateReport) -> None:
        """Recompute ``(x − value) · ∏ children`` bottom-up along a path.

        ``ordered_nodes`` runs child-to-root, so each node's freshly
        computed polynomial is available (via the overrides map) when its
        parent multiplies it in — nothing is re-read from the store after
        the first pass, keeping every read at the pre-update state.
        """
        overrides: Dict[int, Polynomial] = {}
        for node_id in ordered_nodes:
            polynomial = self.ring.from_tag_value(own_values[node_id])
            for child in self.server_tree.child_ids(node_id):
                if child in skip_children:
                    continue
                child_polynomial = overrides.get(child)
                if child_polynomial is None:
                    child_polynomial = self._node_polynomial(child)
                polynomial = self.ring.mul(polynomial, child_polynomial)
            overrides[node_id] = polynomial
            self._write_polynomial(txn, node_id, polynomial, report)

    # -- public operations ------------------------------------------------------------
    def insert_subtree(self, parent_id: int, element: XmlElement) -> UpdateReport:
        """Insert a plaintext subtree as a new child of ``parent_id``."""
        if parent_id not in self.server_tree:
            raise QueryError(f"unknown parent node {parent_id}")
        self.mapping.extend(node.tag for node in element.iter())
        report = UpdateReport("insert")

        with self._guard():
            # 1. Encode the new nodes bottom-up (one ring product per node)
            #    and allocate fresh identifiers from one store query.
            polynomials = self._subtree_polynomials(element)
            subtree_polynomial = polynomials[id(element)]
            next_id = (self.server_tree.max_node_id() or 0) + 1

            # 2. Compute the updated ancestor polynomials (reads only).
            ancestors = [parent_id] + self._ancestor_path(parent_id)
            updated = {ancestor: self.ring.mul(self._node_polynomial(ancestor),
                                               subtree_polynomial)
                       for ancestor in ancestors}

            # 3. Push everything — new nodes plus every ancestor rewrite —
            #    as one atomic batch.
            with self._transaction() as txn:
                stack = [(element, parent_id)]
                while stack:
                    node, node_parent = stack.pop()
                    node_id = next_id
                    next_id += 1
                    client_share = self.client_shares.share_for(node_id)
                    txn.add_node(node_id, node_parent,
                                 self.ring.sub(polynomials[id(node)],
                                               client_share))
                    report.new_node_ids.append(node_id)
                    report.shares_rewritten += 1
                    stack.extend((child, node_id)
                                 for child in reversed(node.children))
                for ancestor in ancestors:
                    self._write_polynomial(txn, ancestor, updated[ancestor],
                                           report)
        report.affected_ancestors = ancestors
        return report

    def delete_subtree(self, node_id: int) -> UpdateReport:
        """Delete the subtree rooted at ``node_id`` (the root cannot be deleted)."""
        if node_id not in self.server_tree:
            raise QueryError(f"unknown node {node_id}")
        parent_id = self.server_tree.parent_id(node_id)
        if parent_id is None:
            raise QueryError("the document root cannot be deleted")
        report = UpdateReport("delete")

        with self._guard():
            # 1. Recover the tag value of every affected ancestor before
            #    planning anything (the values are invariant, the
            #    polynomials are not).
            ancestors = [parent_id] + self._ancestor_path(parent_id)
            own_values = {ancestor: self._own_tag_value(ancestor)
                          for ancestor in ancestors}

            # 2. One batch: the subtree removal plus the bottom-up path
            #    recomputation (the removed child is skipped from its
            #    parent's product; deeper ancestors multiply the freshly
            #    recomputed override of the ancestor below them).
            with self._transaction() as txn:
                report.removed_node_ids = txn.remove_subtree(node_id)
                self._recompute_path(txn, ancestors, own_values, {node_id},
                                     report)
        report.affected_ancestors = ancestors
        return report

    def rename_node(self, node_id: int, new_tag: str) -> UpdateReport:
        """Change the tag of a single node (structure unchanged)."""
        if node_id not in self.server_tree:
            raise QueryError(f"unknown node {node_id}")
        self.mapping.extend([new_tag])
        report = UpdateReport("rename")

        with self._guard():
            affected = [node_id] + self._ancestor_path(node_id)
            own_values = {node: self._own_tag_value(node) for node in affected}
            own_values[node_id] = self.mapping.value(new_tag)

            with self._transaction() as txn:
                self._recompute_path(txn, affected, own_values, set(), report)
        report.affected_ancestors = affected
        return report

    def refresh_shares(self, new_generator: ClientShareGenerator) -> UpdateReport:
        """Proactively re-randomise every share under a new client seed.

        The data does not change: for every node the server share becomes
        ``polynomial − new_client_share``.  After the refresh the old seed is
        useless, which limits the damage of a leaked seed — and because the
        whole re-randomisation is one batch, a crash can never strand the
        tree half on the old seed and half on the new one.
        """
        report = UpdateReport("refresh")
        with self._guard():
            with self._transaction() as txn:
                for node_id in self.server_tree.node_ids():
                    polynomial = self._node_polynomial(node_id)
                    txn.replace_share(
                        node_id,
                        self.ring.sub(polynomial,
                                      new_generator.share_for(node_id)))
                    report.shares_rewritten += 1
        self.client_shares = new_generator
        return report
