"""Dynamic updates to an outsourced document.

The paper describes a static outsourcing step; a practical deployment also
needs to *modify* the data without re-uploading everything.  Because every
ancestor polynomial is the product of its own linear factor with its
children's polynomials (§4.1), an insertion, deletion or rename below a
node only changes the polynomials on the root-to-node path:

* **insert** a new subtree under parent ``P``: every ancestor polynomial is
  multiplied by the new subtree's polynomial;
* **delete** a subtree / **rename** a node: the affected ancestors are
  recomputed bottom-up as ``(x − map(tag)) · ∏ children`` — their own tag
  value is recovered first via Theorem 1/2, so nothing about the document
  needs to be stored on the client.

Division is deliberately avoided: the ``F_p[x]/(x^{p−1}−1)`` quotient ring
has zero divisors, so "dividing out" a removed factor from a *reduced*
polynomial is not well defined; recomputing a node from its children is
always exact and costs one ring product per affected node.

The client can do all of this from the public structure plus the server's
shares (it owns the seed, so it can reconstruct any polynomial it needs),
then pushes fresh server shares for exactly the affected nodes.  An update
therefore touches ``O(depth · fanout + |new subtree|)`` nodes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..algebra.poly import Polynomial
from ..algebra.quotient import EncodingRing
from ..errors import QueryError
from ..xmltree import XmlElement
from .mapping import TagMapping
from .share_tree import ClientShareGenerator, ServerShareTree

__all__ = ["UpdateReport", "UpdatableTree"]


class UpdateReport:
    """What an update touched (for cost accounting and tests)."""

    __slots__ = ("operation", "affected_ancestors", "new_node_ids",
                 "removed_node_ids", "shares_rewritten")

    def __init__(self, operation: str) -> None:
        self.operation = operation
        self.affected_ancestors: List[int] = []
        self.new_node_ids: List[int] = []
        self.removed_node_ids: List[int] = []
        self.shares_rewritten = 0

    def as_dict(self) -> Dict[str, object]:
        """Dictionary form for tabular reporting."""
        return {
            "operation": self.operation,
            "affected_ancestors": len(self.affected_ancestors),
            "new_nodes": len(self.new_node_ids),
            "removed_nodes": len(self.removed_node_ids),
            "shares_rewritten": self.shares_rewritten,
        }

    def __repr__(self) -> str:
        return (f"UpdateReport({self.operation!r}, ancestors={self.affected_ancestors}, "
                f"new={self.new_node_ids}, removed={self.removed_node_ids})")


class UpdatableTree:
    """Client-side editor for an outsourced share tree.

    The editor needs the client's secret state (mapping + share generator)
    and access to the server share tree it mutates.  In a deployment the
    mutations would travel as explicit update messages; the cost model
    (which nodes receive new shares) is identical, and that is what the
    report captures.

    All mutations go through the tree's own API (``add_node``,
    ``replace_share``, ``remove_subtree``), so ``server_tree`` may equally
    be any :class:`repro.net.store.ShareStore` backend — updates against a
    durable store persist without further plumbing.
    """

    def __init__(self, ring: EncodingRing, mapping: TagMapping,
                 client_shares: ClientShareGenerator,
                 server_tree: ServerShareTree) -> None:
        self.ring = ring
        self.mapping = mapping
        self.client_shares = client_shares
        self.server_tree = server_tree

    # -- share plumbing -------------------------------------------------------------
    def _node_polynomial(self, node_id: int) -> Polynomial:
        """Reconstruct the true polynomial of a node (client + server share)."""
        return self.ring.add(self.client_shares.share_for(node_id),
                             self.server_tree.share_of(node_id))

    def _write_polynomial(self, node_id: int, polynomial: Polynomial,
                          report: UpdateReport) -> None:
        """Store a new value for a node by rewriting its *server* share."""
        client_share = self.client_shares.share_for(node_id)
        self.server_tree.replace_share(node_id, self.ring.sub(polynomial, client_share))
        report.shares_rewritten += 1

    def _ancestor_path(self, node_id: int) -> List[int]:
        """Ancestors of ``node_id`` from its parent up to the root."""
        path: List[int] = []
        current = self.server_tree.parent_id(node_id)
        while current is not None:
            path.append(current)
            current = self.server_tree.parent_id(current)
        return path

    def _own_tag_value(self, node_id: int) -> int:
        """Recover a node's mapped tag value from the shares (Theorem 1/2)."""
        children = [self._node_polynomial(child)
                    for child in self.server_tree.child_ids(node_id)]
        return self.ring.recover_tag(self._node_polynomial(node_id), children)

    def _recompute_from_children(self, node_id: int, own_value: int,
                                 report: UpdateReport) -> None:
        """Set ``node_id`` to ``(x − own_value) · ∏ current children``."""
        polynomial = self.ring.from_tag_value(own_value)
        for child in self.server_tree.child_ids(node_id):
            polynomial = self.ring.mul(polynomial, self._node_polynomial(child))
        self._write_polynomial(node_id, polynomial, report)

    def _next_node_id(self) -> int:
        return max(self.server_tree.node_ids()) + 1

    def _subtree_polynomial(self, element: XmlElement) -> Polynomial:
        """Encode a plaintext subtree bottom-up (used for insertions)."""
        polynomial = self.ring.from_tag_value(self.mapping.value(element.tag))
        for child in element.children:
            polynomial = self.ring.mul(polynomial, self._subtree_polynomial(child))
        return polynomial

    # -- public operations ------------------------------------------------------------
    def insert_subtree(self, parent_id: int, element: XmlElement) -> UpdateReport:
        """Insert a plaintext subtree as a new child of ``parent_id``."""
        if parent_id not in self.server_tree:
            raise QueryError(f"unknown parent node {parent_id}")
        self.mapping.extend(node.tag for node in element.iter())
        report = UpdateReport("insert")

        # 1. Encode and store the new nodes under fresh identifiers.
        subtree_polynomial = self._subtree_polynomial(element)

        def _store(node: XmlElement, parent: int) -> None:
            node_id = self._next_node_id()
            polynomial = self._subtree_polynomial(node)
            client_share = self.client_shares.share_for(node_id)
            self.server_tree.add_node(node_id, parent,
                                      self.ring.sub(polynomial, client_share))
            report.new_node_ids.append(node_id)
            report.shares_rewritten += 1
            for child in node.children:
                _store(child, node_id)

        _store(element, parent_id)

        # 2. Multiply every ancestor polynomial (parent included) by the new
        #    subtree polynomial and push fresh server shares.
        ancestors = [parent_id] + self._ancestor_path(parent_id)
        for ancestor in ancestors:
            updated = self.ring.mul(self._node_polynomial(ancestor), subtree_polynomial)
            self._write_polynomial(ancestor, updated, report)
        report.affected_ancestors = ancestors
        return report

    def delete_subtree(self, node_id: int) -> UpdateReport:
        """Delete the subtree rooted at ``node_id`` (the root cannot be deleted)."""
        if node_id not in self.server_tree:
            raise QueryError(f"unknown node {node_id}")
        parent_id = self.server_tree.parent_id(node_id)
        if parent_id is None:
            raise QueryError("the document root cannot be deleted")
        report = UpdateReport("delete")

        # 1. Recover the tag value of every affected ancestor before touching
        #    anything (the values are invariant, the polynomials are not).
        ancestors = [parent_id] + self._ancestor_path(parent_id)
        own_values = {ancestor: self._own_tag_value(ancestor) for ancestor in ancestors}

        # 2. Remove the subtree nodes from the server structure.
        report.removed_node_ids = self.server_tree.remove_subtree(node_id)

        # 3. Recompute the path bottom-up from the (already consistent) children.
        for ancestor in ancestors:
            self._recompute_from_children(ancestor, own_values[ancestor], report)
        report.affected_ancestors = ancestors
        return report

    def rename_node(self, node_id: int, new_tag: str) -> UpdateReport:
        """Change the tag of a single node (structure unchanged)."""
        if node_id not in self.server_tree:
            raise QueryError(f"unknown node {node_id}")
        self.mapping.extend([new_tag])
        report = UpdateReport("rename")

        affected = [node_id] + self._ancestor_path(node_id)
        own_values = {node: self._own_tag_value(node) for node in affected}
        own_values[node_id] = self.mapping.value(new_tag)

        for node in affected:
            self._recompute_from_children(node, own_values[node], report)
        report.affected_ancestors = affected
        return report

    def refresh_shares(self, new_generator: ClientShareGenerator) -> UpdateReport:
        """Proactively re-randomise every share under a new client seed.

        The data does not change: for every node the server share becomes
        ``polynomial − new_client_share``.  After the refresh the old seed is
        useless, which limits the damage of a leaked seed.
        """
        report = UpdateReport("refresh")
        for node_id in self.server_tree.node_ids():
            polynomial = self._node_polynomial(node_id)
            self.server_tree.replace_share(
                node_id, self.ring.sub(polynomial, new_generator.share_for(node_id)))
            report.shares_rewritten += 1
        self.client_shares = new_generator
        return report
