"""Splitting the polynomial tree into client and server shares (§4.2).

The client builds a tree with the same structure as the encoded document
but with *random* polynomials, and hands the server the difference tree:
``server_share = polynomial - client_share`` per node, so the two shares
sum to the original polynomial (figures 3 and 4).

Because the client polynomials come from a seeded deterministic PRG
(:class:`repro.prg.DeterministicPRG`), the client does not need to store
its tree at all — it keeps the seed and regenerates the share of any node
on demand ("only the seed has to be stored on the client").
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..algebra.poly import Polynomial
from ..algebra.quotient import EncodingRing
from ..errors import SharingError
from ..prg import DeterministicPRG
from ..sharing.additive import combine_additive
from .encoder import PolynomialTree

__all__ = ["ClientShareGenerator", "ServerShareTree", "share_tree", "reconstruct_tree"]

_SHARE_LABEL = "node-share"


class ClientShareGenerator:
    """Regenerates the client's random share for any node from the seed.

    Shares are deterministic in ``(seed, node_id)``, so an LRU cache makes
    repeated queries (which re-derive the same PRG share polynomials on
    every descent and verification) cost one derivation per node instead of
    one per use.  ``cache_size=0`` disables the cache.
    """

    def __init__(self, ring: EncodingRing, prg: DeterministicPRG,
                 cache_size: int = 1024) -> None:
        self.ring = ring
        self.prg = prg
        self.cache_size = cache_size
        self._cache: "OrderedDict[int, Polynomial]" = OrderedDict()
        # Shares are deterministic, so concurrent sessions may safely share
        # one generator; the lock only protects the LRU bookkeeping.
        self._cache_lock = threading.Lock()
        # Domain-separated root stream for shares: per-node streams are
        # cheap forks of it (no per-node seed derivation or key schedule).
        self._share_root = prg.stream(_SHARE_LABEL)

    def share_for(self, node_id: int) -> Polynomial:
        """The client's share polynomial for ``node_id`` (deterministic)."""
        cache = self._cache
        with self._cache_lock:
            share = cache.get(node_id)
            if share is not None:
                cache.move_to_end(node_id)
                return share
        share = self.ring.random_element_from_stream(self._share_root.fork(node_id))
        if self.cache_size > 0:
            with self._cache_lock:
                cache[node_id] = share
                if len(cache) > self.cache_size:
                    cache.popitem(last=False)
        return share

    def evaluate(self, node_id: int, point: int) -> int:
        """Evaluate the client's share of ``node_id`` at a query point."""
        return self.ring.evaluate(self.share_for(node_id), point)

    def evaluate_many(self, node_ids: Sequence[int], point: int) -> Dict[int, int]:
        """Evaluate the client's shares of many nodes at one point."""
        shares = [self.share_for(node_id) for node_id in node_ids]
        return dict(zip(node_ids, self.ring.evaluate_many(shares, point)))

    def shares_for(self, node_ids: Iterable[int]) -> Dict[int, Polynomial]:
        """Client shares for several nodes at once."""
        return {node_id: self.share_for(node_id) for node_id in node_ids}


class ServerShareTree:
    """The server's half of the shared data: public structure + share polynomials.

    This is everything the untrusted server stores.  It intentionally has no
    reference to the tag mapping, the client seed or the original document.
    """

    def __init__(self, ring: EncodingRing) -> None:
        self.ring = ring
        self.shares: Dict[int, Polynomial] = {}
        self.parents: Dict[int, Optional[int]] = {}
        self.children: Dict[int, List[int]] = {}
        self.root_id: Optional[int] = None

    # -- construction -----------------------------------------------------------
    def add_node(self, node_id: int, parent_id: Optional[int],
                 share: Polynomial) -> None:
        """Insert one node's share; parents must precede children."""
        if node_id in self.shares:
            raise SharingError(f"duplicate node id {node_id}")
        if parent_id is None:
            if self.root_id is not None:
                raise SharingError("the share tree already has a root")
            self.root_id = node_id
        elif parent_id not in self.shares:
            raise SharingError(f"parent {parent_id} of node {node_id} is unknown")
        # Shares produced by ring operations are already canonical; only
        # reduce foreign polynomials (e.g. deserialized or hand-built ones).
        self.shares[node_id] = (share if self.ring.is_canonical(share)
                                else self.ring.reduce(share))
        self.parents[node_id] = parent_id
        self.children.setdefault(node_id, [])
        if parent_id is not None:
            self.children[parent_id].append(node_id)

    def replace_share(self, node_id: int, share: Polynomial) -> None:
        """Overwrite the share of an existing node (dynamic updates)."""
        if node_id not in self.shares:
            raise SharingError(f"unknown node id {node_id}")
        self.shares[node_id] = (share if self.ring.is_canonical(share)
                                else self.ring.reduce(share))

    def remove_subtree(self, node_id: int) -> List[int]:
        """Remove ``node_id`` and every descendant; returns the removed ids.

        The root cannot be removed (the tree would lose its anchor).
        """
        if node_id not in self.shares:
            raise SharingError(f"unknown node id {node_id}")
        parent_id = self.parents[node_id]
        if parent_id is None:
            raise SharingError("the root node cannot be removed")
        removed: List[int] = []
        stack = [node_id]
        while stack:
            current = stack.pop()
            removed.append(current)
            stack.extend(self.children.get(current, ()))
        for current in removed:
            del self.shares[current]
            del self.parents[current]
            self.children.pop(current, None)
        self.children[parent_id].remove(node_id)
        return removed

    # -- queries the server can answer --------------------------------------------
    def share_of(self, node_id: int) -> Polynomial:
        """The stored share polynomial of a node."""
        try:
            return self.shares[node_id]
        except KeyError:
            raise SharingError(f"unknown node id {node_id}") from None

    def evaluate(self, node_id: int, point: int) -> int:
        """Evaluate the server's share of a node at a query point (§4.3)."""
        return self.ring.evaluate(self.share_of(node_id), point)

    def evaluate_many(self, node_ids: Sequence[int], point: int) -> Dict[int, int]:
        """Evaluate many node shares at one point (one batched pass)."""
        shares = [self.share_of(node_id) for node_id in node_ids]
        return dict(zip(node_ids, self.ring.evaluate_many(shares, point)))

    def child_ids(self, node_id: int) -> List[int]:
        """Public child list of a node."""
        if node_id not in self.children:
            raise SharingError(f"unknown node id {node_id}")
        return list(self.children[node_id])

    def parent_id(self, node_id: int) -> Optional[int]:
        """Public parent of a node."""
        if node_id not in self.parents:
            raise SharingError(f"unknown node id {node_id}")
        return self.parents[node_id]

    def node_ids(self) -> List[int]:
        """All node identifiers."""
        return sorted(self.shares)

    def max_node_id(self) -> Optional[int]:
        """Largest stored node id (``None`` for an empty tree).

        One pass over the id set; update batches call this once and then
        count locally instead of rescanning per inserted node.
        """
        return max(self.shares) if self.shares else None

    def node_count(self) -> int:
        """Number of nodes stored."""
        return len(self.shares)

    def depth_of(self, node_id: int) -> int:
        """Depth computed from the public structure."""
        depth = 0
        current = self.parents.get(node_id)
        while current is not None:
            depth += 1
            current = self.parents.get(current)
        return depth

    def storage_bits(self) -> int:
        """Measured storage of all share polynomials (the server-side cost, §5)."""
        return sum(self.ring.element_storage_bits(share)
                   for share in self.shares.values())

    def __len__(self) -> int:
        return len(self.shares)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self.shares

    def __repr__(self) -> str:
        return f"<ServerShareTree ring={self.ring.name} nodes={len(self.shares)}>"


def share_tree(tree: PolynomialTree, prg: DeterministicPRG,
               generator: Optional[ClientShareGenerator] = None,
               ) -> Tuple[ClientShareGenerator, ServerShareTree]:
    """Split an encoded tree into the client generator and the server tree.

    Passing an existing ``generator`` (e.g. the one owned by a
    :class:`~repro.core.scheme.ClientContext`) leaves its share cache warm
    for the queries that follow outsourcing.
    """
    generator = generator or ClientShareGenerator(tree.ring, prg)
    server = ServerShareTree(tree.ring)
    for node in tree.iter_preorder():
        client_share = generator.share_for(node.node_id)
        server_share = tree.ring.sub(node.polynomial, client_share)
        server.add_node(node.node_id, node.parent_id, server_share)
    return generator, server


def reconstruct_tree(client: ClientShareGenerator,
                     server: ServerShareTree) -> PolynomialTree:
    """Recombine both halves into the original polynomial tree.

    Only the client can do this (it owns the seed); used in tests and by the
    verification path of the query protocol.
    """
    if client.ring != server.ring and client.ring.name != server.ring.name:
        raise SharingError("client and server use different rings")
    tree = PolynomialTree(server.ring)
    for node_id in server.node_ids():
        combined = combine_additive(
            server.ring, [client.share_for(node_id), server.share_of(node_id)])
        tree.add_node(node_id, server.parent_id(node_id), combined,
                      server.depth_of(node_id))
    return tree
