#!/usr/bin/env python3
"""What does the untrusted server actually see?

The paper claims the server learns nothing about the data or the query.
This example makes the server's view concrete:

* the stored share polynomials are one-time-padded by the client's random
  shares — their value distribution is independent of the document;
* during queries the server sees opaque *points*, evaluation requests and
  prune notices — the access pattern, but never tag names or plaintext;
* repeated queries for the same tag reuse the same point, which is the
  query-pattern leakage later work on searchable encryption formalised.

Run with::

    python examples/security_audit.py
"""

from collections import Counter

from repro.analysis import audit_server_view, format_table, share_value_histogram
from repro.core import outsource_document
from repro.net import connect_in_process
from repro.workloads import CatalogConfig, generate_catalog_document


def main() -> None:
    document = generate_catalog_document(CatalogConfig(customers=8))
    client, server_tree, _ = outsource_document(document, seed=b"audit-seed")
    print(f"Outsourced {document.size()} elements in ring {client.ring.name}\n")

    # -- static view: the stored shares look random ---------------------------------------
    histogram = share_value_histogram(server_tree, coefficient_index=0)
    print(format_table(
        ["constant coefficient value", "occurrences"],
        sorted(histogram.items())[:10],
        title="Distribution of the first coefficient across server shares "
              "(flat ≈ independent of the data; first 10 values shown)"))
    print()

    # -- dynamic view: run some queries and audit the observations -----------------------------
    adapter, server, channel = connect_in_process(server_tree)
    for query_tag in ["customer", "order", "customer", "balance", "customer"]:
        client.lookup(adapter, query_tag)
    report = audit_server_view(server)
    print(format_table(
        ["observation", "value"],
        [[key, value] for key, value in report.as_dict().items()],
        title="Server view after 5 lookups (3 of them for the same tag)"))
    print()
    point_counts = Counter(server.observations.points_seen)
    print("Query points seen by the server (point -> times queried):",
          dict(point_counts))
    print("The server sees that one point recurred 3 times (query-pattern "
          "leakage) but never learns which tag name any point stands for.")
    print(f"\nTotal traffic for the 5 lookups: {channel.stats.total_bytes} bytes "
          f"in {channel.stats.round_trips} round trips.")


if __name__ == "__main__":
    main()
