#!/usr/bin/env python3
"""The secure multi-party voting protocols of §3.

Seven parties vote on a decision without revealing their individual votes:

* the *majority* function is the sum of the votes (Shamir-shared inputs,
  locally summed shares, interpolation by any ``t`` collaborators);
* the *veto* function is the product of the votes (one zero vote vetoes).

The example prints the shares each party receives, the local results, and
the recombined function value, together with the protocol's message
counts.

Run with::

    python examples/smc_voting.py
"""

import random

from repro.algebra import PrimeField
from repro.analysis import format_table
from repro.smc import SecureSummation, SecureVeto


def main() -> None:
    field = PrimeField(101)
    votes = [1, 0, 1, 1, 0, 1, 1]          # 5 yes, 2 no
    print(f"Private votes of the 7 parties: {votes} (never revealed)\n")

    # -- majority vote: f(x1..xn) = sum x_i ------------------------------------------
    summation = SecureSummation(field, threshold=3, inputs=votes,
                                rng=random.Random(7))
    result = summation.run()
    print(f"Majority vote (secure sum):   {result} yes votes "
          f"(plaintext check: {summation.expected_result()})")
    print(f"  protocol transcript: {summation.transcript.as_dict()}\n")

    # -- veto vote: f(x1..xn) = product x_i ----------------------------------------------
    veto = SecureVeto(field, threshold=1, inputs=votes, rng=random.Random(8))
    outcome = veto.run()
    print(f"Veto vote (secure product):   {'passed' if outcome == 1 else 'vetoed'} "
          f"(product = {outcome}, plaintext check: {veto.expected_result()})")
    print(f"  protocol transcript: {veto.transcript.as_dict()}\n")

    # -- unanimous case for contrast ------------------------------------------------------
    unanimous = SecureVeto(field, threshold=1, inputs=[1] * 7, rng=random.Random(9))
    print(f"Veto vote with unanimous yes: "
          f"{'passed' if unanimous.run() == 1 else 'vetoed'}\n")

    # -- message scaling --------------------------------------------------------------------
    rows = []
    for parties in (3, 5, 7, 11, 15):
        protocol = SecureSummation(field, threshold=3,
                                   inputs=[1] * parties, rng=random.Random(parties))
        protocol.run()
        transcript = protocol.transcript.as_dict()
        rows.append([parties, transcript["messages_sent"],
                     transcript["field_elements_sent"], transcript["rounds"]])
    print(format_table(["parties", "messages", "field elements", "rounds"], rows,
                       title="Communication of the secure sum vs number of parties"))


if __name__ == "__main__":
    main()
