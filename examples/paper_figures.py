#!/usr/bin/env python3
"""Reproduce the paper's worked example (figures 1 through 6).

Prints, for the figure-1 document and mapping:

* figure 1(c): the non-reduced polynomial tree over ``Z[x]``;
* figure 2(a)/(b): the same tree reduced in ``F_5[x]/(x^4−1)`` and
  ``Z[x]/(x²+1)`` — the exact polynomials printed in the paper;
* figures 3/4: a client/server sharing whose per-node sums equal figure 2;
* figures 5/6: the query ``//client`` (x = 2) with the per-node sum trees.

Run with::

    python examples/paper_figures.py
"""

from repro.algebra import Polynomial, ZZ
from repro.core import (
    LocalServerAdapter,
    encode_document,
    outsource_document,
)
from repro.prg import DeterministicPRG
from repro.workloads import (
    figure1_document,
    figure1_fp_ring,
    figure1_int_ring,
    figure1_mapping,
)


def _tag_path(document, index):
    elements = document.elements()
    return elements[index].tag_path()


def figure_1c(document, mapping) -> None:
    print("=== Figure 1(c): non-reduced polynomials over Z[x] ===")

    def encode_plain(element):
        poly = Polynomial.linear_root(mapping.value(element.tag), ZZ)
        for child in element.children:
            poly = poly * encode_plain(child)
        return poly

    for element in document.iter():
        print(f"  {element.tag_path():30s} {encode_plain(element)}")
    print()


def figure_2(document, mapping) -> None:
    for label, ring in (("2(a)", figure1_fp_ring()), ("2(b)", figure1_int_ring())):
        print(f"=== Figure {label}: reduced in {ring.name} ===")
        tree = encode_document(document, mapping, ring)
        for node in tree.iter_preorder():
            print(f"  node {node.node_id} ({_tag_path(document, node.node_id):25s}) "
                  f"{node.polynomial}")
        print()


def figures_3_to_6(document, mapping) -> None:
    for fig_share, fig_query, ring in (("3", "5", figure1_fp_ring()),
                                       ("4", "6", figure1_int_ring())):
        print(f"=== Figures {fig_share}/{fig_query}: sharing and query //client "
              f"in {ring.name} ===")
        client, server_tree, tree = outsource_document(
            document, ring=ring, mapping=figure1_mapping(),
            seed=b"paper-figures", strict=False)
        generator = client.share_generator
        point = mapping.value("client")
        print(f"  query point x = map('client') = {point}")
        print(f"  {'node':>4s} {'client share':>28s} {'server share':>28s} "
              f"{'sum = original':>28s}  {'sum@x':>5s}")
        for node in tree.iter_preorder():
            client_share = generator.share_for(node.node_id)
            server_share = server_tree.share_of(node.node_id)
            total = ring.add(client_share, server_share)
            assert total == node.polynomial
            value = ring.evaluation_add(
                ring.evaluate(client_share, point),
                ring.evaluate(server_share, point), point)
            print(f"  {node.node_id:>4d} {str(client_share):>28s} "
                  f"{str(server_share):>28s} {str(total):>28s}  {value:>5d}")
        adapter = LocalServerAdapter(server_tree)
        outcome = client.lookup(adapter, "client")
        print(f"  zero nodes (subtree contains 'client'): {outcome.zero_nodes}")
        print(f"  dead branches reported to the server:   {outcome.pruned_nodes}")
        print(f"  confirmed matches:                      {outcome.matches}")
        print()


def main() -> None:
    document = figure1_document()
    mapping = figure1_mapping()
    figure_1c(document, mapping)
    figure_2(document, mapping)
    figures_3_to_6(document, mapping)


if __name__ == "__main__":
    main()
