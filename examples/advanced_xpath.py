#!/usr/bin/env python3
"""Advanced querying (§4.3): single-pass vs left-to-right evaluation.

The paper argues that a multi-step query like ``//a/b//c/d/e`` should not
be evaluated step by step; instead, because every node polynomial contains
the roots of *all* its descendants, one descent can prune on the entire
remaining tag multiset, filtering branches "in a very early stage".

This example runs the same XPath queries on an XMark-like auction document
with both strategies and compares how much of the tree each one touches.

Run with::

    python examples/advanced_xpath.py
"""

from repro.analysis import format_ratio, format_table
from repro.baselines import PlaintextSearchIndex
from repro.core import AdvancedStrategy, outsource_document
from repro.workloads import XMARK_QUERIES, XMarkConfig, generate_xmark_document


def main() -> None:
    document = generate_xmark_document(XMarkConfig(items_per_region=4, people=15,
                                                   open_auctions=10))
    print(f"XMark-like document: {document.size()} elements, "
          f"{len(document.distinct_tags())} distinct tags\n")

    client, server_tree, _ = outsource_document(document, seed=b"advanced-xpath")
    plaintext = PlaintextSearchIndex(document)

    rows = []
    for query in XMARK_QUERIES:
        truth = plaintext.query(query).matches
        single = client.xpath(server_tree, query,
                              strategy=AdvancedStrategy.SINGLE_PASS)
        naive = client.xpath(server_tree, query,
                             strategy=AdvancedStrategy.LEFT_TO_RIGHT)
        assert single.matches == truth and naive.matches == truth
        rows.append([
            query,
            len(truth),
            single.stats.evaluations,
            naive.stats.evaluations,
            format_ratio(naive.stats.evaluations, single.stats.evaluations),
        ])
    print(format_table(
        ["query", "matches", "evaluations (single-pass)",
         "evaluations (left-to-right)", "left-to-right / single-pass"],
        rows,
        title="Share evaluations needed per strategy (answers identical and "
              "verified against plaintext)"))


if __name__ == "__main__":
    main()
