#!/usr/bin/env python3
"""Multi-server sharing: the k-out-of-n extension sketched in §4.2.

Instead of one server holding ``data - data_client``, every node polynomial
is Shamir-shared across ``n`` servers so that the client together with any
``k`` of them can reconstruct it — and, because polynomial evaluation is
linear, any ``k`` per-server evaluations recombine into the true value at a
query point.  The example shows:

* sharing the figure-1 tree across 4 servers with threshold 3;
* answering ``//client`` with only servers {1, 3, 4} online;
* that any 2 servers alone reconstruct nothing but a random-looking value.

Run with::

    python examples/multi_server.py
"""

import random

from repro.analysis import format_table
from repro.core import encode_document
from repro.sharing import ThresholdPolynomialSharing
from repro.workloads import figure1_document, figure1_fp_ring, figure1_mapping


def main() -> None:
    document = figure1_document()
    mapping = figure1_mapping()
    ring = figure1_fp_ring()
    tree = encode_document(document, mapping, ring)

    servers, threshold = 4, 3
    sharing = ThresholdPolynomialSharing(ring, threshold=threshold, servers=servers)
    rng = random.Random(2004)

    # Share every node polynomial across the servers.
    per_server = {index: {} for index in range(1, servers + 1)}
    for node in tree.iter_preorder():
        shares = sharing.share(node.polynomial, rng)
        for index, share in shares.items():
            per_server[index][node.node_id] = share
    print(f"Shared {len(tree)} node polynomials over {servers} servers "
          f"(threshold {threshold}).\n")

    # Query //client with a subset of servers online.
    online = [1, 3, 4]
    point = mapping.value("client")
    rows = []
    for node in tree.iter_preorder():
        evaluations = {index: per_server[index][node.node_id].evaluate(point)
                       for index in online}
        combined = sharing.combine_evaluations(evaluations)
        truth = ring.evaluate(node.polynomial, point)
        rows.append([node.node_id,
                     {i: evaluations[i] for i in online},
                     combined, truth, "zero" if combined == 0 else "dead"])
        assert combined == truth
    print(format_table(
        ["node", f"evaluations from servers {online}", "combined", "true f(x)", "verdict"],
        rows,
        title=f"//client evaluated at x = {point} with servers {online} online"))
    print()

    # Too few servers learn nothing: reconstructing from 2 shares fails.
    node = tree.root()
    two_servers = {1: per_server[1][node.node_id], 2: per_server[2][node.node_id]}
    try:
        sharing.reconstruct(two_servers)
    except Exception as exc:  # ThresholdError
        print(f"Reconstruction from only 2 of {servers} servers fails as expected: {exc}")
    full = sharing.reconstruct({i: per_server[i][node.node_id] for i in online})
    print(f"Reconstruction from servers {online} returns the root polynomial: {full}")
    print(f"Original root polynomial:                                          "
          f"{node.polynomial}")


if __name__ == "__main__":
    main()
