#!/usr/bin/env python3
"""Beyond the paper's static setting: live updates and keyword search.

Two extensions that a practical deployment of the scheme needs and that the
paper leaves as future work:

1. **Dynamic updates** — insert, delete and rename elements of the
   outsourced document by rewriting only the shares on the affected
   root-to-node path (``repro.core.updates``), plus proactive share
   refresh under a new client seed.
2. **Content keyword search** — the §5 sketch: words are hashed (non-
   invertibly) into evaluation points, per-node content polynomials are
   shared like the structure polynomials, and the payloads are stored
   encrypted so confirmed matches can be retrieved
   (``repro.core.text_index``).

Run with::

    python examples/updates_and_keywords.py
"""

from repro.algebra import FpQuotientRing
from repro.analysis import format_table
from repro.core import (
    ClientShareGenerator,
    ContentIndexBuilder,
    ContentSearchClient,
    UpdatableTree,
    choose_fp_ring,
    outsource_document,
)
from repro.prg import DeterministicPRG
from repro.workloads import CatalogConfig, generate_catalog_document
from repro.xmltree import parse_element


def demonstrate_updates() -> None:
    document = generate_catalog_document(CatalogConfig(customers=6, products=5))
    ring = choose_fp_ring(len(document.distinct_tags()) + 4)   # headroom for new tags
    client, server_tree, _ = outsource_document(document, ring=ring, seed=b"updates")
    editor = UpdatableTree(client.ring, client.mapping, client.share_generator,
                           server_tree)
    print(f"Outsourced catalog: {server_tree.node_count()} nodes\n")

    rows = []

    # Insert a new order under the first customer.
    customer = client.lookup(server_tree, "customer").matches[0]
    insert = editor.insert_subtree(customer, parse_element(
        "<order><date>2026-06-14</date><item><product>SKU-0003</product>"
        "<quantity>1</quantity></item></order>"))
    rows.append(["insert order", insert.shares_rewritten,
                 len(insert.new_node_ids), len(insert.affected_ancestors)])

    # Rename one order to archived_order.
    order = client.lookup(server_tree, "order").matches[0]
    rename = editor.rename_node(order, "archived_order")
    rows.append(["rename order", rename.shares_rewritten, 0,
                 len(rename.affected_ancestors)])

    # Delete a whole customer subtree.
    victim = client.lookup(server_tree, "customer").matches[-1]
    delete = editor.delete_subtree(victim)
    rows.append(["delete customer", delete.shares_rewritten,
                 -len(delete.removed_node_ids), len(delete.affected_ancestors)])

    # Proactively refresh every share under a new seed.
    refresh = editor.refresh_shares(
        ClientShareGenerator(client.ring, DeterministicPRG(b"rotated-seed")))
    rows.append(["refresh all shares", refresh.shares_rewritten, 0, 0])

    print(format_table(
        ["operation", "shares rewritten", "nodes added/removed", "ancestors touched"],
        rows,
        title=f"Update costs (document of {server_tree.node_count()} nodes — "
              "updates touch only the affected path)"))

    # Queries reflect all edits (driven by the refreshed generator).
    refreshed_client_shares = editor.client_shares
    from repro.core import QueryEngine, LocalServerAdapter

    engine = QueryEngine(client.ring, client.mapping, refreshed_client_shares,
                         LocalServerAdapter(server_tree))
    print("\nAfter the edits:")
    print("  //archived_order ->", engine.lookup("archived_order").matches)
    print("  //customer count ->", len(engine.lookup("customer").matches))
    print()


def demonstrate_keyword_search() -> None:
    document = generate_catalog_document(CatalogConfig(customers=5, products=4))
    builder = ContentIndexBuilder(FpQuotientRing(257), DeterministicPRG(b"keywords"))
    generator, content_tree, payload_store = builder.build(document)
    search = ContentSearchClient(builder, generator, content_tree, payload_store)

    print(f"Content index: {content_tree.node_count()} content polynomials, "
          f"{len(payload_store)} encrypted payloads "
          f"({payload_store.storage_bits() // 8} bytes at rest)\n")

    rows = []
    for word in ("enschede", "main", "sku", "rotterdam"):
        result = search.search(word)
        rows.append([word, len(result.candidate_nodes), len(result.confirmed_nodes),
                     result.false_positives, result.stats.nodes_evaluated])
    print(format_table(
        ["keyword", "candidates", "confirmed", "hash collisions filtered",
         "nodes evaluated"],
        rows,
        title="Keyword search over encrypted content (§5 extension)"))

    sample = search.search("enschede")
    first = sample.confirmed_nodes[0]
    print(f"\nDecrypted payload of node {first}: {sample.payloads[first]!r}")


def main() -> None:
    demonstrate_updates()
    demonstrate_keyword_search()


if __name__ == "__main__":
    main()
