#!/usr/bin/env python3
"""Quickstart: outsource an XML document and search it without revealing it.

Demonstrates the end-to-end flow of the scheme on a small document:

1. parse an XML document;
2. outsource it — the client keeps only a seed and the private tag
   mapping, the server receives its share tree (random-looking
   polynomials plus the public structure);
3. run an element lookup ``//client`` and an XPath query;
4. show what the query cost and what the server learned.

Run with::

    python examples/quickstart.py
"""

from repro import outsource_document, parse_document
from repro.analysis import audit_server_view, format_table
from repro.core import LocalServerAdapter

DOCUMENT = """
<customers>
  <client><name>Alice</name></client>
  <client><name>Bob</name></client>
  <supplier><name>Carol</name></supplier>
</customers>
"""


def main() -> None:
    document = parse_document(DOCUMENT)
    print(f"Document: {document.size()} elements, tags {document.distinct_tags()}")

    # Outsource: the client keeps (seed, mapping); the server gets the share tree.
    client, server_tree, _ = outsource_document(document, seed=b"quickstart-seed")
    print(f"Encoding ring: {client.ring.name}")
    print(f"Server stores {server_tree.node_count()} share polynomials "
          f"({server_tree.storage_bits()} bits)\n")

    # The server role is played in-process; the adapter records what it sees.
    server = LocalServerAdapter(server_tree)

    # Element lookup //client.
    outcome = client.lookup(server, "client")
    print("//client matches node ids:", outcome.matches)
    for node_id in outcome.matches:
        print("   ", node_id, "->", client.tag_path_of(server, node_id))

    # A two-step XPath query.
    result = client.xpath(server, "//client/name")
    print("//client/name matches node ids:", result.matches)

    # Costs and the server's view.
    print()
    print(format_table(
        ["metric", "value"],
        [["nodes evaluated", outcome.stats.nodes_evaluated],
         ["nodes pruned", outcome.stats.nodes_pruned],
         ["round trips", outcome.stats.round_trips],
         ["candidates verified", outcome.stats.candidates_verified]],
        title="Cost of //client"))
    report = audit_server_view(server)
    print()
    print(format_table(
        ["what the server saw", "count"],
        [[key, value] for key, value in report.as_dict().items()],
        title="Server view (leakage audit)"))


if __name__ == "__main__":
    main()
