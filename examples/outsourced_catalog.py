#!/usr/bin/env python3
"""Outsourcing a realistic customer/order catalog to an untrusted provider.

This is the paper's motivating scenario at a realistic scale: a company
stores its customer database with an external provider, keeps only a seed
and the private tag mapping, and runs XPath queries over the encrypted
index.  The example reports, per query:

* the answer (with tag paths recovered from the shares),
* how much of the tree the search touched (dead-branch pruning, §4.3),
* actual bytes on the wire, compared to downloading everything.

Run with::

    python examples/outsourced_catalog.py
"""

from repro.analysis import (
    format_table,
    measure_download_all_bandwidth,
    measure_lookup_bandwidth,
    storage_report,
)
from repro.baselines import PlaintextSearchIndex
from repro.core import choose_fp_ring, choose_int_ring, outsource_document
from repro.net import connect_in_process
from repro.workloads import CATALOG_QUERIES, CatalogConfig, generate_catalog_document


def main() -> None:
    document = generate_catalog_document(CatalogConfig(customers=12, products=10))
    stats = document.statistics()
    print(f"Catalog document: {stats.element_count} elements, "
          f"{stats.distinct_tag_count} distinct tags, height {stats.height}\n")

    client, server_tree, _ = outsource_document(document, seed=b"catalog-seed")
    plaintext = PlaintextSearchIndex(document)

    # -- storage (the §5 comparison) -------------------------------------------------
    rows = storage_report(document, client.mapping,
                          fp_ring=client.ring,
                          int_ring=choose_int_ring(2))
    print(format_table(
        ["representation", "measured bits", "formula bits", "measured/formula"],
        [[row.representation, int(row.measured_bits), int(row.formula_bits),
          f"{row.overhead_vs_formula:.2f}"] for row in rows],
        title="Storage: plaintext vs encrypted index"))
    print()

    # -- queries ------------------------------------------------------------------------
    query_rows = []
    for query in CATALOG_QUERIES:
        adapter, _, channel = connect_in_process(server_tree)
        result = client.xpath(adapter, query)
        truth = plaintext.query(query).matches
        assert result.matches == truth, f"mismatch for {query}"
        query_rows.append([
            query,
            len(result.matches),
            result.stats.nodes_evaluated,
            document.size(),
            result.stats.nodes_pruned,
            channel.stats.total_bytes,
        ])
    print(format_table(
        ["query", "matches", "nodes evaluated", "tree size", "pruned", "wire bytes"],
        query_rows,
        title="Encrypted XPath queries (answers verified against plaintext)"))
    print()

    # -- show answers of one query with recovered tag paths ---------------------------------
    adapter, _, _ = connect_in_process(server_tree)
    sample = client.xpath(adapter, "//customer/order/item//product")
    print("//customer/order/item//product matches:")
    for node_id in sample.matches[:5]:
        print(f"   node {node_id}: {client.tag_path_of(adapter, node_id)}")
    if len(sample.matches) > 5:
        print(f"   ... and {len(sample.matches) - 5} more\n")

    # -- bandwidth vs downloading everything -------------------------------------------------
    bandwidth = measure_lookup_bandwidth(client, server_tree, "customer")
    bandwidth.append(measure_download_all_bandwidth(document, "customer"))
    print(format_table(
        ["mode", "bytes to server", "bytes to client", "total", "round trips"],
        [[row.mode, row.bytes_to_server, row.bytes_to_client, row.total_bytes,
          row.round_trips] for row in bandwidth],
        title="Bandwidth for the lookup //customer"))


if __name__ == "__main__":
    main()
