"""Property-based tests for the wire protocol and persistence formats."""

from hypothesis import given
from hypothesis import strategies as st

from repro.algebra import FpQuotientRing, IntQuotientRing, default_int_modulus
from repro.core import ServerShareTree
from repro.net import (
    decode_message,
    ring_from_dict,
    ring_to_dict,
    share_tree_from_dict,
    share_tree_to_dict,
)
from repro.net.messages import (
    ChildrenRequest,
    ChildrenResponse,
    EvaluateRequest,
    EvaluateResponse,
    FetchConstantsResponse,
    FetchPolynomialsResponse,
    FrontierRequest,
    FrontierResponse,
    HelloRequest,
    PruneNotice,
    StructureResponse,
)

node_id_lists = st.lists(st.integers(min_value=0, max_value=10 ** 6), max_size=30)
values = st.integers(min_value=-(10 ** 12), max_value=10 ** 12)


class TestMessageRoundTrips:
    @given(node_id_lists, st.integers(min_value=0, max_value=10 ** 6))
    def test_evaluate_request(self, node_ids, point):
        message = EvaluateRequest(node_ids, point)
        decoded = decode_message(message.encode())
        assert decoded.node_ids == list(node_ids)
        assert decoded.point == point

    @given(st.dictionaries(st.integers(min_value=0, max_value=999), values, max_size=20))
    def test_evaluate_response(self, mapping):
        decoded = decode_message(EvaluateResponse(mapping).encode())
        assert decoded.values == {int(k): int(v) for k, v in mapping.items()}

    @given(st.dictionaries(st.integers(min_value=0, max_value=999),
                           st.lists(values, max_size=8), max_size=10))
    def test_polynomials_response(self, mapping):
        decoded = decode_message(FetchPolynomialsResponse(mapping).encode())
        assert decoded.coefficients == {int(k): [int(c) for c in v]
                                        for k, v in mapping.items()}

    @given(st.dictionaries(st.integers(min_value=0, max_value=999), values, max_size=20))
    def test_constants_response(self, mapping):
        decoded = decode_message(FetchConstantsResponse(mapping).encode())
        assert decoded.constants == {int(k): int(v) for k, v in mapping.items()}

    @given(node_id_lists)
    def test_prune_and_children_request(self, node_ids):
        assert decode_message(PruneNotice(node_ids).encode()).node_ids == list(node_ids)
        assert decode_message(
            ChildrenRequest(node_ids).encode()).node_ids == list(node_ids)

    @given(st.dictionaries(st.integers(min_value=0, max_value=99),
                           st.lists(st.integers(min_value=0, max_value=99), max_size=6),
                           max_size=10))
    def test_children_response(self, mapping):
        decoded = decode_message(ChildrenResponse(mapping).encode())
        assert decoded.children == {int(k): list(v) for k, v in mapping.items()}

    @given(st.integers(min_value=0, max_value=10 ** 6),
           st.integers(min_value=1, max_value=10 ** 6))
    def test_structure_response(self, root_id, count):
        decoded = decode_message(StructureResponse(root_id, count).encode())
        assert (decoded.root_id, decoded.node_count) == (root_id, count)

    @given(node_id_lists, st.integers(min_value=0, max_value=100))
    def test_byte_size_is_encoding_length(self, node_ids, point):
        message = EvaluateRequest(node_ids, point)
        assert message.byte_size() == len(message.encode())


class TestRingSerialisation:
    @given(st.sampled_from([5, 7, 11, 13, 101, 257]))
    def test_fp_rings_roundtrip(self, p):
        ring = FpQuotientRing(p)
        assert ring_from_dict(ring_to_dict(ring)) == ring

    @given(st.sampled_from([2, 3, 4]))
    def test_int_rings_roundtrip(self, degree):
        ring = IntQuotientRing(default_int_modulus(degree))
        assert ring_from_dict(ring_to_dict(ring)) == ring


class TestVersion2Messages:
    @given(node_id_lists, st.lists(st.integers(min_value=1, max_value=100),
                                   max_size=4),
           node_id_lists, st.booleans(),
           st.integers(min_value=0, max_value=4),
           st.one_of(st.none(), st.text(min_size=1, max_size=12)))
    def test_frontier_request(self, node_ids, points, prune, children,
                              lookahead, document_id):
        message = FrontierRequest(node_ids, points, prune=prune,
                                  include_children=children,
                                  lookahead=lookahead)
        message.for_document(document_id)
        decoded = decode_message(message.encode())
        assert decoded.node_ids == list(node_ids)
        assert decoded.points == list(points)
        assert decoded.prune == list(prune)
        assert decoded.include_children == children
        assert decoded.lookahead == lookahead
        assert decoded.document_id == document_id

    @given(st.dictionaries(st.integers(min_value=1, max_value=50),
                           st.dictionaries(st.integers(min_value=0, max_value=99),
                                           values, max_size=6),
                           max_size=4),
           st.dictionaries(st.integers(min_value=0, max_value=99),
                           st.lists(st.integers(min_value=0, max_value=99),
                                    max_size=4),
                           max_size=6))
    def test_frontier_response(self, evaluations, children):
        decoded = decode_message(FrontierResponse(evaluations, children).encode())
        assert decoded.evaluations == {
            int(point): {int(k): int(v) for k, v in vals.items()}
            for point, vals in evaluations.items()}
        assert decoded.children == {int(k): list(v) for k, v in children.items()}

    @given(st.lists(st.integers(min_value=1, max_value=99), min_size=1,
                    max_size=4, unique=True))
    def test_hello_roundtrip(self, versions):
        decoded = decode_message(HelloRequest(versions).encode())
        assert decoded.versions == list(versions)

    @given(node_id_lists)
    def test_document_stamp_preserved_on_v1_messages(self, node_ids):
        message = EvaluateRequest(node_ids, 3).for_document("tenant-7")
        decoded = decode_message(message.encode())
        assert decoded.document_id == "tenant-7"
        # Unstamped messages keep the exact v1 wire encoding.
        assert b"document_id" not in EvaluateRequest(node_ids, 3).encode()


def _tree_strategy(ring):
    """Random share trees: random shapes, shares including the constant and
    zero polynomials, leaves with empty child lists."""
    if isinstance(ring, FpQuotientRing):
        coefficient = st.integers(min_value=0, max_value=ring.p - 1)
        max_len = ring.p - 1
    else:
        coefficient = st.integers(min_value=-(2 ** 40), max_value=2 ** 40)
        max_len = ring.modulus.degree
    coefficients = st.lists(coefficient, min_size=0, max_size=max_len)
    return st.lists(coefficients, min_size=1, max_size=12).flatmap(
        lambda shares: st.tuples(
            st.just(shares),
            st.tuples(*[st.integers(min_value=0, max_value=max(index - 1, 0))
                        for index in range(len(shares))])))


def _build_tree(ring, shares, parents):
    tree = ServerShareTree(ring)
    for index, coefficients in enumerate(shares):
        parent = None if index == 0 else parents[index]
        tree.add_node(index, parent, ring.from_coefficients(coefficients))
    return tree


class TestShareTreePersistenceProperties:
    """Satellite: `share_tree_to_dict`/`from_dict` round-trips exactly, for
    both encoding rings, including empty-children and constant-share nodes."""

    @given(_tree_strategy(FpQuotientRing(7)))
    def test_fp_share_tree_roundtrip(self, shape):
        self._assert_roundtrip(FpQuotientRing(7), *shape)

    @given(_tree_strategy(IntQuotientRing(default_int_modulus(2))))
    def test_int_share_tree_roundtrip(self, shape):
        self._assert_roundtrip(IntQuotientRing(default_int_modulus(2)), *shape)

    @staticmethod
    def _assert_roundtrip(ring, shares, parents):
        tree = _build_tree(ring, shares, parents)
        restored = share_tree_from_dict(share_tree_to_dict(tree))
        assert restored.ring == tree.ring
        assert restored.root_id == tree.root_id
        assert restored.node_ids() == tree.node_ids()
        for node_id in tree.node_ids():
            assert restored.share_of(node_id) == tree.share_of(node_id)
            assert restored.parent_id(node_id) == tree.parent_id(node_id)
            # Child *order* is part of the structure and must survive.
            assert restored.child_ids(node_id) == tree.child_ids(node_id)

    def test_edge_nodes_explicitly(self):
        ring = FpQuotientRing(5)
        tree = ServerShareTree(ring)
        tree.add_node(0, None, ring.from_coefficients([3]))      # constant share
        tree.add_node(1, 0, ring.from_coefficients([]))          # zero share
        tree.add_node(2, 0, ring.from_coefficients([0, 1]))      # x
        restored = share_tree_from_dict(share_tree_to_dict(tree))
        assert restored.child_ids(0) == [1, 2]
        assert restored.child_ids(1) == []                       # empty children
        for node_id in (0, 1, 2):
            assert restored.share_of(node_id) == tree.share_of(node_id)
