"""Property-based tests for the wire protocol and persistence formats."""

from hypothesis import given
from hypothesis import strategies as st

from repro.algebra import FpQuotientRing, IntQuotientRing, default_int_modulus
from repro.net import decode_message, ring_from_dict, ring_to_dict
from repro.net.messages import (
    ChildrenRequest,
    ChildrenResponse,
    EvaluateRequest,
    EvaluateResponse,
    FetchConstantsResponse,
    FetchPolynomialsResponse,
    PruneNotice,
    StructureResponse,
)

node_id_lists = st.lists(st.integers(min_value=0, max_value=10 ** 6), max_size=30)
values = st.integers(min_value=-(10 ** 12), max_value=10 ** 12)


class TestMessageRoundTrips:
    @given(node_id_lists, st.integers(min_value=0, max_value=10 ** 6))
    def test_evaluate_request(self, node_ids, point):
        message = EvaluateRequest(node_ids, point)
        decoded = decode_message(message.encode())
        assert decoded.node_ids == list(node_ids)
        assert decoded.point == point

    @given(st.dictionaries(st.integers(min_value=0, max_value=999), values, max_size=20))
    def test_evaluate_response(self, mapping):
        decoded = decode_message(EvaluateResponse(mapping).encode())
        assert decoded.values == {int(k): int(v) for k, v in mapping.items()}

    @given(st.dictionaries(st.integers(min_value=0, max_value=999),
                           st.lists(values, max_size=8), max_size=10))
    def test_polynomials_response(self, mapping):
        decoded = decode_message(FetchPolynomialsResponse(mapping).encode())
        assert decoded.coefficients == {int(k): [int(c) for c in v]
                                        for k, v in mapping.items()}

    @given(st.dictionaries(st.integers(min_value=0, max_value=999), values, max_size=20))
    def test_constants_response(self, mapping):
        decoded = decode_message(FetchConstantsResponse(mapping).encode())
        assert decoded.constants == {int(k): int(v) for k, v in mapping.items()}

    @given(node_id_lists)
    def test_prune_and_children_request(self, node_ids):
        assert decode_message(PruneNotice(node_ids).encode()).node_ids == list(node_ids)
        assert decode_message(
            ChildrenRequest(node_ids).encode()).node_ids == list(node_ids)

    @given(st.dictionaries(st.integers(min_value=0, max_value=99),
                           st.lists(st.integers(min_value=0, max_value=99), max_size=6),
                           max_size=10))
    def test_children_response(self, mapping):
        decoded = decode_message(ChildrenResponse(mapping).encode())
        assert decoded.children == {int(k): list(v) for k, v in mapping.items()}

    @given(st.integers(min_value=0, max_value=10 ** 6),
           st.integers(min_value=1, max_value=10 ** 6))
    def test_structure_response(self, root_id, count):
        decoded = decode_message(StructureResponse(root_id, count).encode())
        assert (decoded.root_id, decoded.node_count) == (root_id, count)

    @given(node_id_lists, st.integers(min_value=0, max_value=100))
    def test_byte_size_is_encoding_length(self, node_ids, point):
        message = EvaluateRequest(node_ids, point)
        assert message.byte_size() == len(message.encode())


class TestRingSerialisation:
    @given(st.sampled_from([5, 7, 11, 13, 101, 257]))
    def test_fp_rings_roundtrip(self, p):
        ring = FpQuotientRing(p)
        assert ring_from_dict(ring_to_dict(ring)) == ring

    @given(st.sampled_from([2, 3, 4]))
    def test_int_rings_roundtrip(self, degree):
        ring = IntQuotientRing(default_int_modulus(degree))
        assert ring_from_dict(ring_to_dict(ring)) == ring
