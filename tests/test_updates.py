"""Tests for dynamic updates to an outsourced document."""

import pytest

from repro.baselines import PlaintextSearchIndex
from repro.core import (
    ClientShareGenerator,
    UpdatableTree,
    choose_fp_ring,
    choose_int_ring,
    decode_tree,
    outsource_document,
    reconstruct_tree,
)
from repro.errors import QueryError
from repro.prg import DeterministicPRG
from repro.workloads import CatalogConfig, generate_catalog_document
from repro.xmltree import XmlElement, parse_element


def _editor(client, server_tree):
    return UpdatableTree(client.ring, client.mapping, client.share_generator,
                         server_tree)


def _decoded_tags(client, server_tree):
    tree = reconstruct_tree(client.share_generator, server_tree)
    return [element.tag for element in decode_tree(tree, client.mapping).iter()]


@pytest.fixture(params=["fp", "int"])
def editable_setup(request, catalog_document, share_backend):
    ring = None if request.param == "fp" else choose_int_ring(2)
    # Leave headroom in the F_p mapping so inserts can introduce new tags.
    if request.param == "fp":
        ring = choose_fp_ring(len(catalog_document.distinct_tags()) + 4)
    client, server_tree, _ = outsource_document(catalog_document, ring=ring,
                                                seed=b"update-seed")
    # ``share_backend`` routes the tree through the REPRO_STORE_BACKEND
    # backend (identity by default, a durable SQLite store in the CI
    # matrix leg), so every update test also runs against the WAL path.
    return catalog_document, client, share_backend(server_tree)


class TestInsert:
    def test_inserted_subtree_becomes_searchable(self, editable_setup):
        document, client, server_tree = editable_setup
        editor = _editor(client, server_tree)
        before = client.lookup(server_tree, "order").matches

        new_order = parse_element(
            "<order><date>2026-06-14</date>"
            "<item><product>SKU-0001</product><quantity>2</quantity></item></order>")
        customer_id = client.lookup(server_tree, "customer").matches[0]
        report = editor.insert_subtree(customer_id, new_order)

        after = client.lookup(server_tree, "order")
        assert len(after.matches) == len(before) + 1
        assert set(report.new_node_ids) <= set(after.stats.as_dict() and
                                               server_tree.node_ids())
        # The new order is reachable through its ancestors via a path query.
        path_matches = client.xpath(server_tree, "//customer/order/item/product").matches
        assert set(report.new_node_ids) & set(server_tree.node_ids())
        assert any(node in path_matches for node in report.new_node_ids)

    def test_insert_only_touches_the_ancestor_path(self, editable_setup):
        document, client, server_tree = editable_setup
        editor = _editor(client, server_tree)
        customer_id = client.lookup(server_tree, "customer").matches[-1]
        new_leaf = XmlElement("note")
        report = editor.insert_subtree(customer_id, new_leaf)
        assert report.affected_ancestors[0] == customer_id
        assert report.affected_ancestors[-1] == server_tree.root_id
        assert report.shares_rewritten == len(report.affected_ancestors) + 1

    def test_insert_new_tag_extends_mapping(self, editable_setup):
        document, client, server_tree = editable_setup
        editor = _editor(client, server_tree)
        editor.insert_subtree(server_tree.root_id, XmlElement("annex"))
        assert "annex" in client.mapping
        assert client.lookup(server_tree, "annex").matches

    def test_unknown_parent_rejected(self, editable_setup):
        _, client, server_tree = editable_setup
        with pytest.raises(QueryError):
            _editor(client, server_tree).insert_subtree(10_000, XmlElement("x"))

    def test_document_decodes_correctly_after_insert(self, editable_setup):
        document, client, server_tree = editable_setup
        editor = _editor(client, server_tree)
        editor.insert_subtree(server_tree.root_id, parse_element("<audit><entry/></audit>"))
        tags = _decoded_tags(client, server_tree)
        assert tags.count("audit") == 1 and tags.count("entry") == 1
        assert len(tags) == document.size() + 2


class TestDelete:
    def test_deleted_subtree_disappears_from_queries(self, editable_setup):
        document, client, server_tree = editable_setup
        editor = _editor(client, server_tree)
        victims = client.lookup(server_tree, "order").matches
        target = victims[0]
        size_before = server_tree.node_count()

        report = editor.delete_subtree(target)
        assert target in report.removed_node_ids
        assert server_tree.node_count() == size_before - len(report.removed_node_ids)
        remaining = client.lookup(server_tree, "order").matches
        assert target not in remaining
        assert len(remaining) == len(victims) - 1

    def test_sibling_subtrees_unaffected(self, editable_setup):
        document, client, server_tree = editable_setup
        editor = _editor(client, server_tree)
        customers = client.lookup(server_tree, "customer").matches
        editor.delete_subtree(customers[0])
        assert len(client.lookup(server_tree, "customer").matches) == len(customers) - 1
        # Unrelated parts of the document still answer correctly.
        assert client.lookup(server_tree, "warehouse").matches

    def test_root_cannot_be_deleted(self, editable_setup):
        _, client, server_tree = editable_setup
        with pytest.raises(QueryError):
            _editor(client, server_tree).delete_subtree(server_tree.root_id)

    def test_unknown_node_rejected(self, editable_setup):
        _, client, server_tree = editable_setup
        with pytest.raises(QueryError):
            _editor(client, server_tree).delete_subtree(10_000)

    def test_document_decodes_correctly_after_delete(self, editable_setup):
        document, client, server_tree = editable_setup
        editor = _editor(client, server_tree)
        order = client.lookup(server_tree, "order").matches[0]
        removed = editor.delete_subtree(order)
        tags = _decoded_tags(client, server_tree)
        assert len(tags) == document.size() - len(removed.removed_node_ids)


class TestRename:
    def test_rename_changes_query_results(self, editable_setup):
        document, client, server_tree = editable_setup
        editor = _editor(client, server_tree)
        orders = client.lookup(server_tree, "order").matches
        target = orders[0]
        report = editor.rename_node(target, "archived_order")
        assert report.affected_ancestors[0] == target
        assert target not in client.lookup(server_tree, "order").matches
        assert client.lookup(server_tree, "archived_order").matches == [target]
        # Descendants of the renamed node are untouched.
        assert client.xpath(server_tree, "//archived_order/item").matches

    def test_rename_leaf(self, editable_setup):
        document, client, server_tree = editable_setup
        editor = _editor(client, server_tree)
        leaf = client.lookup(server_tree, "city").matches[0]
        editor.rename_node(leaf, "municipality")
        assert leaf in client.lookup(server_tree, "municipality").matches


class TestRefresh:
    def test_refresh_preserves_data_and_invalidates_old_seed(self, editable_setup):
        document, client, server_tree = editable_setup
        editor = _editor(client, server_tree)
        expected = client.lookup(server_tree, "customer").matches

        new_prg = DeterministicPRG(b"rotated-seed")
        new_generator = ClientShareGenerator(client.ring, new_prg)
        report = editor.refresh_shares(new_generator)
        assert report.shares_rewritten == server_tree.node_count()

        # Queries with the new generator still work and agree with plaintext.
        refreshed = reconstruct_tree(new_generator, server_tree)
        decoded = decode_tree(refreshed, client.mapping)
        assert [e.tag for e in decoded.iter()] == [e.tag for e in document.iter()]

        # The old seed no longer combines with the new server shares.
        stale = reconstruct_tree(client.share_generator, server_tree)
        assert any(stale.polynomial(i) != refreshed.polynomial(i)
                   for i in server_tree.node_ids())
        plaintext = PlaintextSearchIndex(document)
        assert plaintext.lookup("customer").matches == expected
