"""Tests for the prime field F_p."""

import random

import pytest

from repro.algebra import PrimeField


class TestConstruction:
    def test_rejects_composite(self):
        with pytest.raises(ValueError):
            PrimeField(10)

    def test_rejects_too_small(self):
        with pytest.raises(ValueError):
            PrimeField(1)

    def test_skip_check_allows_anything(self):
        field = PrimeField(9, check_prime=False)
        assert field.p == 9


class TestArithmetic:
    def test_field_axioms_exhaustive_small_prime(self):
        field = PrimeField(7)
        for a in field.elements():
            assert field.add(a, field.zero) == a
            assert field.mul(a, field.one) == a
            assert field.add(a, field.neg(a)) == field.zero
            for b in field.elements():
                assert field.add(a, b) == field.add(b, a)
                assert field.mul(a, b) == field.mul(b, a)
                for c in field.elements():
                    assert field.mul(a, field.add(b, c)) == field.add(
                        field.mul(a, b), field.mul(a, c))

    def test_inverse(self):
        field = PrimeField(101)
        for a in range(1, 101):
            assert field.mul(a, field.invert(a)) == 1

    def test_inverse_of_zero_fails(self):
        with pytest.raises(ZeroDivisionError):
            PrimeField(5).invert(0)

    def test_canonicalisation_of_negative_values(self):
        field = PrimeField(5)
        assert field.canonical(-1) == 4
        assert field.sub(1, 3) == 3

    def test_pow(self):
        field = PrimeField(13)
        assert field.pow(2, 12) == 1            # Fermat
        assert field.pow(2, -1) == field.invert(2)

    def test_exact_divide(self):
        field = PrimeField(7)
        assert field.exact_divide(6, 3) == 2
        assert field.exact_divide(1, 0) is None


class TestStructure:
    def test_order_and_elements(self):
        field = PrimeField(11)
        assert field.order() == 11
        assert list(field.elements()) == list(range(11))

    def test_multiplicative_order_divides_group_order(self):
        field = PrimeField(13)
        for a in range(1, 13):
            assert 12 % field.multiplicative_order(a) == 0

    def test_multiplicative_order_of_zero_rejected(self):
        with pytest.raises(ValueError):
            PrimeField(5).multiplicative_order(0)

    def test_primitive_root(self):
        field = PrimeField(13)
        g = field.primitive_root()
        assert field.multiplicative_order(g) == 12

    def test_element_bits(self):
        assert PrimeField(5).element_bits(3) == 3
        assert PrimeField(257).element_bits(0) == 9

    def test_equality_and_hash(self):
        assert PrimeField(5) == PrimeField(5)
        assert PrimeField(5) != PrimeField(7)
        assert hash(PrimeField(5)) == hash(PrimeField(5))

    def test_random_elements_in_range(self):
        field = PrimeField(17)
        rng = random.Random(1)
        values = {field.random_element(rng) for _ in range(200)}
        assert values <= set(range(17))
        nonzero = {field.random_nonzero(rng) for _ in range(200)}
        assert 0 not in nonzero
