"""Tests for advanced (multi-step) querying: both strategies, all workloads."""

import pytest

from repro.baselines import PlaintextSearchIndex
from repro.core import AdvancedStrategy, choose_int_ring, outsource_document
from repro.workloads import (
    CATALOG_QUERIES,
    XMARK_QUERIES,
    XMarkConfig,
    generate_catalog_document,
    generate_xmark_document,
)
from repro.xmltree import parse_document


class TestCorrectness:
    @pytest.mark.parametrize("query", CATALOG_QUERIES)
    def test_catalog_queries_match_plaintext(self, outsourced_catalog,
                                             catalog_document, query):
        client, server_tree, _ = outsourced_catalog
        truth = PlaintextSearchIndex(catalog_document).query(query).matches
        for strategy in AdvancedStrategy:
            assert client.xpath(server_tree, query, strategy=strategy).matches == truth

    @pytest.mark.parametrize("query", XMARK_QUERIES)
    def test_xmark_queries_match_plaintext(self, query):
        document = generate_xmark_document(XMarkConfig(items_per_region=2, people=6,
                                                       open_auctions=4))
        client, server_tree, _ = outsource_document(document, seed=b"xmark")
        truth = PlaintextSearchIndex(document).query(query).matches
        for strategy in AdvancedStrategy:
            assert client.xpath(server_tree, query, strategy=strategy).matches == truth

    def test_int_ring_advanced_query(self):
        document = generate_catalog_document()
        client, server_tree, _ = outsource_document(
            document, ring=choose_int_ring(2), seed=b"adv-int")
        truth = PlaintextSearchIndex(document).query("//customer/order//product").matches
        assert client.xpath(server_tree, "//customer/order//product").matches == truth

    def test_empty_result_queries(self, outsourced_catalog, catalog_document):
        client, server_tree, _ = outsourced_catalog
        # 'location' only occurs under warehouses, never under customers.
        query = "//customer//location"
        assert PlaintextSearchIndex(catalog_document).query(query).matches == []
        result = client.xpath(server_tree, query)
        assert result.matches == []
        # The single-pass strategy notices the dead end after very few steps.
        assert result.per_step_candidates[-1] == 0

    def test_absolute_child_path(self, outsourced_catalog, catalog_document):
        client, server_tree, _ = outsourced_catalog
        truth = PlaintextSearchIndex(catalog_document).query("/company/customers").matches
        assert client.xpath(server_tree, "/company/customers").matches == truth
        assert client.xpath(server_tree, "/customers").matches == []

    def test_wildcard_steps(self, outsourced_catalog, catalog_document):
        client, server_tree, _ = outsourced_catalog
        for query in ("//customer/*", "//*/order", "//order/*/product"):
            truth = PlaintextSearchIndex(catalog_document).query(query).matches
            assert client.xpath(server_tree, query).matches == truth

    def test_repeated_tag_in_path(self):
        document = parse_document("<a><b><a><b/></a></b><b/></a>")
        client, server_tree, _ = outsource_document(document, seed=b"rep")
        truth = PlaintextSearchIndex(document).query("//a/b//a").matches
        assert client.xpath(server_tree, "//a/b//a").matches == truth

    def test_precompiled_plan_accepted(self, outsourced_catalog, catalog_document):
        from repro.xpath import compile_plan

        client, server_tree, _ = outsourced_catalog
        plan = compile_plan("//customer/order")
        truth = PlaintextSearchIndex(catalog_document).query("//customer/order").matches
        assert client.xpath(server_tree, plan).matches == truth


class TestStrategyComparison:
    def test_single_pass_prunes_haystack_branches_early(self):
        """The paper's claim: pruning on the whole remaining tag multiset
        filters branches "in a very early stage".

        The document has a large 'haystack' subtree full of ``a`` elements
        without any ``b`` below them, and one small subtree where ``//a/b``
        actually matches.  The left-to-right strategy explores the haystack
        (it prunes only on ``a``); the single-pass strategy discards it at its
        root because the haystack lacks ``b``.
        """
        from repro.xmltree import XmlDocument, XmlElement

        root = XmlElement("root")
        haystack = root.add("haystack")
        for _ in range(20):
            haystack.add("a").add("c")
        needle = root.add("needle")
        needle.add("a").add("b")
        document = XmlDocument(root)

        client, server_tree, _ = outsource_document(document, seed=b"strategy")
        truth = PlaintextSearchIndex(document).query("//a/b").matches
        single = client.xpath(server_tree, "//a/b",
                              strategy=AdvancedStrategy.SINGLE_PASS)
        naive = client.xpath(server_tree, "//a/b",
                             strategy=AdvancedStrategy.LEFT_TO_RIGHT)
        assert single.matches == naive.matches == truth
        # The naive strategy evaluates every haystack 'a' node; the single-pass
        # strategy stops at the haystack root.
        assert single.stats.evaluations < naive.stats.evaluations / 2

    def test_strategies_agree_on_xmark(self):
        document = generate_xmark_document(XMarkConfig(items_per_region=4, people=12,
                                                       open_auctions=8))
        client, server_tree, _ = outsource_document(document, seed=b"strategy")
        for query in ["//europe/item", "//open_auction/bidder/personref",
                      "//people/person/profile", "//person/profile/education"]:
            single = client.xpath(server_tree, query,
                                  strategy=AdvancedStrategy.SINGLE_PASS)
            naive = client.xpath(server_tree, query,
                                 strategy=AdvancedStrategy.LEFT_TO_RIGHT)
            assert single.matches == naive.matches

    def test_result_metadata(self, outsourced_catalog):
        client, server_tree, _ = outsourced_catalog
        result = client.xpath(server_tree, "//customer/order")
        assert result.strategy is AdvancedStrategy.SINGLE_PASS
        assert len(result.per_step_candidates) == 2
        assert str(result.plan.path) == "//customer/order"
