"""Tests for the deterministic PRG used for client shares."""

import random

import pytest

from repro.prg import DeterministicPRG, SeededStream, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(b"seed", "a", 1) == derive_seed(b"seed", "a", 1)

    def test_label_separation(self):
        assert derive_seed(b"seed", "a") != derive_seed(b"seed", "b")
        assert derive_seed(b"seed", "a", "b") != derive_seed(b"seed", "ab")
        assert derive_seed(b"seed1", "a") != derive_seed(b"seed2", "a")

    def test_accepts_multiple_types(self):
        assert derive_seed("string-seed", 42, b"bytes")
        with pytest.raises(TypeError):
            derive_seed(b"seed", 1.5)


class TestSeededStream:
    def test_reproducible(self):
        assert SeededStream(b"k").read(100) == SeededStream(b"k").read(100)

    def test_chunking_is_transparent(self):
        whole = SeededStream(b"k").read(100)
        stream = SeededStream(b"k")
        assert stream.read(37) + stream.read(63) == whole

    def test_read_int_bounds(self):
        stream = SeededStream(b"k")
        for bits in (1, 8, 13, 64):
            value = stream.read_int(bits)
            assert 0 <= value < 2 ** bits

    def test_randint_below_uniform_support(self):
        stream = SeededStream(b"k")
        values = {stream.randint_below(5) for _ in range(200)}
        assert values == {0, 1, 2, 3, 4}

    def test_randint_inclusive_range(self):
        stream = SeededStream(b"k")
        for _ in range(100):
            assert -3 <= stream.randint(-3, 3) <= 3

    def test_invalid_arguments(self):
        stream = SeededStream(b"k")
        with pytest.raises(ValueError):
            stream.read(-1)
        with pytest.raises(ValueError):
            stream.read_int(0)
        with pytest.raises(ValueError):
            stream.randint_below(0)
        with pytest.raises(ValueError):
            stream.randint(3, 2)


class TestDeterministicPRG:
    def test_streams_are_label_independent(self):
        prg = DeterministicPRG(b"master")
        a = prg.stream("node", 1).read(32)
        b = prg.stream("node", 2).read(32)
        assert a != b
        assert a == DeterministicPRG(b"master").stream("node", 1).read(32)

    def test_python_random_reproducible(self):
        prg = DeterministicPRG(b"master")
        r1 = prg.python_random("x")
        r2 = DeterministicPRG(b"master").python_random("x")
        assert [r1.randrange(100) for _ in range(10)] == [
            r2.randrange(100) for _ in range(10)]

    def test_child_prg_domain_separated(self):
        prg = DeterministicPRG(b"master")
        child = prg.child("sub")
        assert child.stream("n").read(16) != prg.stream("n").read(16)

    def test_generate_uses_entropy_source(self):
        entropy = random.Random(7)
        prg1 = DeterministicPRG.generate(entropy)
        prg2 = DeterministicPRG.generate(random.Random(7))
        assert prg1.seed == prg2.seed

    def test_int_seed_supported(self):
        assert DeterministicPRG(12345).stream("a").read(8)


class TestStreamForksAndResidues:
    def test_fork_is_domain_separated(self):
        root = SeededStream(b"k")
        assert root.fork(1).read(32) != root.fork(2).read(32)
        assert root.fork(1).read(32) == SeededStream(b"k").fork(1).read(32)
        # The parent stream is untouched by forking.
        assert root.read(32) == SeededStream(b"k").read(32)

    def test_unlabelled_fork_is_rejected(self):
        with pytest.raises(ValueError):
            SeededStream(b"k").fork()

    def test_residues_bounds_and_determinism(self):
        for bound in (2, 5, 29, 257, 65537):
            values = SeededStream(b"k").residues(500, bound)
            assert len(values) == 500
            assert all(0 <= v < bound for v in values)
            assert values == SeededStream(b"k").residues(500, bound)
        assert SeededStream(b"k").residues(0, 7) == []
        with pytest.raises(ValueError):
            SeededStream(b"k").residues(3, 0)
