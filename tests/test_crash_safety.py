"""Crash-injection tests for the WAL-journaled durable share store.

Every :class:`~repro.core.updates.UpdatableTree` operation is one
write-ahead-logged batch on :class:`~repro.net.store.SQLiteShareStore`.
These tests kill the store at *every* crash point of every operation —
after the intent record, after each individual mutation, and after the
commit marker — then reopen the file and assert the recovered store is
bit-identical to either the full pre-update state or the full post-update
state (itself verified bit-identical to the same edit on the in-memory
backend).  Torn in-between states must be unobservable.
"""

import shutil

import pytest

from repro.core import (
    ClientShareGenerator,
    UpdatableTree,
    choose_fp_ring,
    outsource_document,
)
from repro.net import SQLiteShareStore
from repro.prg import DeterministicPRG
from repro.workloads import CatalogConfig, generate_catalog_document
from repro.xmltree import parse_element


class SimulatedCrash(Exception):
    """Raised by the fault hook to model the process dying at that point."""


def _snapshot(store):
    """Canonical bit-exact image: structure, child order and coefficients."""
    return {
        node_id: (store.parent_id(node_id),
                  tuple(store.child_ids(node_id)),
                  tuple(int(c) for c in store.share_of(node_id).coeffs))
        for node_id in store.node_ids()
    }


def _editor(client, target):
    return UpdatableTree(client.ring, client.mapping, client.share_generator,
                         target)


OPERATIONS = {
    "insert": lambda client, editor, marks: editor.insert_subtree(
        marks["root"],
        parse_element("<annex><shelf/><shelf><box/></shelf></annex>")),
    "delete": lambda client, editor, marks: editor.delete_subtree(
        marks["victim"]),
    "rename": lambda client, editor, marks: editor.rename_node(
        marks["victim"], "vip"),
    "refresh": lambda client, editor, marks: editor.refresh_shares(
        ClientShareGenerator(client.ring, DeterministicPRG(b"rotated-seed"))),
}


@pytest.fixture(scope="module")
def crash_env(tmp_path_factory):
    """A small outsourced document persisted once as the pristine v2 store."""
    document = generate_catalog_document(
        CatalogConfig(customers=2, products=1, seed=3))
    ring = choose_fp_ring(len(document.distinct_tags()) + 4)
    client, server_tree, _ = outsource_document(document, ring=ring,
                                                seed=b"crash-seed")
    base = tmp_path_factory.mktemp("crash")
    pristine = str(base / "pristine.db")
    store = SQLiteShareStore.from_tree(pristine, server_tree)
    marks = {"root": store.root_id,
             "victim": client.lookup(store, "customer").matches[0]}
    pre = _snapshot(store)
    store.close()
    return {"client": client, "server_tree": server_tree, "pristine": pristine,
            "marks": marks, "pre": pre, "base": base}


def _fresh_copy(env, name):
    path = str(env["base"] / name)
    shutil.copy(env["pristine"], path)
    return path


def _run_without_crash(env, operation, name):
    """The reference run: post-state snapshot plus the crash-point count."""
    path = _fresh_copy(env, name)
    store = SQLiteShareStore(path)
    steps = []
    store.fault_injection_hook = steps.append
    OPERATIONS[operation](env["client"], _editor(env["client"], store), env["marks"])
    post = _snapshot(store)
    store.close()
    return post, len(steps)


@pytest.mark.parametrize("operation", sorted(OPERATIONS))
def test_crash_at_every_mutation_boundary(crash_env, operation):
    env = crash_env
    post, crash_points = _run_without_crash(env, operation,
                                            f"reference-{operation}.db")
    assert post != env["pre"]
    # Each batch hits the hook after the intent (step 0), after every
    # mutation, and after the commit marker — at least intent + one
    # mutation + commit for the smallest operation.
    assert crash_points >= 3

    outcomes = set()
    for crash_at in range(crash_points):
        path = _fresh_copy(env, f"crash-{operation}-{crash_at}.db")
        store = SQLiteShareStore(path)

        def hook(step, store=store, crash_at=crash_at):
            if step == crash_at:
                store._conn.close()     # the process-visible state dies here
                raise SimulatedCrash(f"killed at crash point {step}")

        store.fault_injection_hook = hook
        with pytest.raises(SimulatedCrash):
            OPERATIONS[operation](env["client"],
                                  _editor(env["client"], store), env["marks"])

        reopened = SQLiteShareStore(path)
        assert reopened.last_recovery in ("replayed", "rolled-back")
        recovered = _snapshot(reopened)
        reopened.close()
        assert recovered in (env["pre"], post), (
            f"{operation} crash at point {crash_at} left a torn store")
        outcomes.add("post" if recovered == post else "pre")
        # A crash after the intent alone must roll back; a crash after the
        # commit marker must replay.
        if crash_at == 0:
            assert recovered == env["pre"]
        if crash_at == crash_points - 1:
            assert recovered == post
    assert outcomes == {"pre", "post"}


@pytest.mark.parametrize("operation", sorted(OPERATIONS))
def test_post_state_bit_identical_to_in_memory_backend(crash_env, operation):
    env = crash_env
    post, _ = _run_without_crash(env, operation, f"bitident-{operation}.db")

    import copy

    memory_tree = copy.deepcopy(env["server_tree"])
    OPERATIONS[operation](env["client"], _editor(env["client"], memory_tree),
                          env["marks"])
    assert post == _snapshot(memory_tree)


def test_surviving_process_recovers_in_place(crash_env):
    """A batch that fails *without* killing the connection self-heals."""
    env = crash_env
    path = _fresh_copy(env, "inplace.db")
    store = SQLiteShareStore(path)

    def hook(step):
        if step == 2:
            raise RuntimeError("transient I/O error")

    store.fault_injection_hook = hook
    with pytest.raises(RuntimeError):
        OPERATIONS["insert"](env["client"], _editor(env["client"], store),
                             env["marks"])
    store.fault_injection_hook = None
    # The same still-open store rolled itself back and stays usable.
    assert store.last_recovery == "rolled-back"
    assert _snapshot(store) == env["pre"]
    report = OPERATIONS["insert"](env["client"], _editor(env["client"], store),
                                  env["marks"])
    assert report.new_node_ids
    store.close()


def test_recovery_is_itself_idempotent(crash_env):
    """Recovery re-runs cleanly if the process dies during recovery."""
    env = crash_env
    path = _fresh_copy(env, "rerecover.db")
    store = SQLiteShareStore(path)

    def hook(step, store=store):
        if step == 1:
            store._conn.close()
            raise SimulatedCrash()

    store.fault_injection_hook = hook
    with pytest.raises(SimulatedCrash):
        OPERATIONS["refresh"](env["client"], _editor(env["client"], store),
                              env["marks"])
    # Open/recover twice in a row: same pre-state both times.
    for _ in range(2):
        reopened = SQLiteShareStore(path)
        assert _snapshot(reopened) == env["pre"]
        reopened.close()


def test_log_truncated_mid_record_rolls_back_cleanly(crash_env):
    """A WAL truncated mid-record (torn intent) recovers without raising.

    A crash inside ``write_intent`` — or an external tool truncating the
    log — leaves records missing the images their undo would need.  Such
    an intent never committed, so the apply loop never ran: recovery must
    roll back to the pre-batch state and must NOT crash on the partial
    records.
    """
    import sqlite3

    env = crash_env
    path = _fresh_copy(env, "torn-intent.db")
    existing = max(env["pre"])
    conn = sqlite3.connect(path)
    conn.execute("INSERT INTO wal (op) VALUES ('begin')")
    # A complete record (an 'add' of a node that was never applied) ...
    conn.execute(
        "INSERT INTO wal (op, node_id, parent, ord, after) "
        "VALUES ('add', ?, ?, 0, X'00')", (existing + 1, env["marks"]["root"]))
    # ... followed by torn ones: a 'replace' missing its before-image, a
    # 'remove' missing image and order, and a record with no node at all.
    conn.execute(
        "INSERT INTO wal (op, node_id) VALUES ('replace', ?)", (existing,))
    conn.execute("INSERT INTO wal (op, node_id) VALUES ('remove', ?)",
                 (existing,))
    conn.execute("INSERT INTO wal (op) VALUES ('add')")
    # No commit marker: the batch never became durable.
    conn.commit()
    conn.close()

    reopened = SQLiteShareStore(path)
    assert reopened.last_recovery == "rolled-back"
    assert _snapshot(reopened) == env["pre"]
    # The log is checkpointed; a second open is clean.
    reopened.close()
    again = SQLiteShareStore(path)
    assert again.last_recovery == "clean"
    assert _snapshot(again) == env["pre"]
    again.close()


def test_committed_log_missing_redo_image_is_loud(crash_env):
    """A commit marker proves the intent was complete — a missing redo
    image there is real corruption and must raise, not be skipped."""
    import sqlite3

    from repro.errors import ProtocolError

    env = crash_env
    path = _fresh_copy(env, "corrupt-committed.db")
    existing = max(env["pre"])
    conn = sqlite3.connect(path)
    conn.execute("INSERT INTO wal (op) VALUES ('begin')")
    conn.execute("INSERT INTO wal (op, node_id) VALUES ('add', ?)",
                 (existing + 1,))
    conn.execute("INSERT INTO wal (op) VALUES ('commit')")
    conn.commit()
    conn.close()

    with pytest.raises(ProtocolError) as excinfo:
        SQLiteShareStore(path)
    assert "redo image" in str(excinfo.value)
