"""Tests for the workload generators."""

import pytest

from repro.workloads import (
    CATALOG_QUERIES,
    CatalogConfig,
    RandomXmlConfig,
    XMARK_QUERIES,
    XMarkConfig,
    figure1_document,
    generate_catalog_document,
    generate_random_document,
    generate_xmark_document,
    tag_vocabulary,
)
from repro.xpath import evaluate_xpath, parse_xpath


class TestFigure1Workload:
    def test_scalable_client_count(self):
        assert figure1_document(clients=5).size() == 1 + 5 * 2
        assert figure1_document(clients=0).size() == 1


class TestRandomXml:
    def test_exact_element_count(self):
        for n in (1, 2, 10, 77, 200):
            config = RandomXmlConfig(element_count=n, tag_vocabulary_size=5, seed=1)
            assert generate_random_document(config).size() == n

    def test_deterministic_for_same_seed(self):
        a = generate_random_document(RandomXmlConfig(element_count=50, seed=9))
        b = generate_random_document(RandomXmlConfig(element_count=50, seed=9))
        assert a.structurally_equal(b)
        c = generate_random_document(RandomXmlConfig(element_count=50, seed=10))
        assert not a.structurally_equal(c)

    def test_respects_fanout_and_depth_bounds(self):
        config = RandomXmlConfig(element_count=120, max_fanout=3, max_depth=5, seed=2)
        document = generate_random_document(config)
        assert document.height() < 5
        assert all(len(element.children) <= 3 for element in document.iter())

    def test_vocabulary_bound(self):
        config = RandomXmlConfig(element_count=80, tag_vocabulary_size=4, seed=3)
        document = generate_random_document(config)
        assert len(document.distinct_tags()) <= 4 + 1          # plus the root tag

    def test_skew_changes_tag_distribution(self):
        flat = generate_random_document(
            RandomXmlConfig(element_count=300, tag_vocabulary_size=10, seed=4))
        skewed = generate_random_document(
            RandomXmlConfig(element_count=300, tag_vocabulary_size=10, seed=4,
                            tag_skew=1.5))
        most_common = max(skewed.tag_counts().values())
        assert most_common > max(flat.tag_counts().values())

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            RandomXmlConfig(element_count=0)
        with pytest.raises(ValueError):
            RandomXmlConfig(tag_vocabulary_size=0)
        with pytest.raises(ValueError):
            RandomXmlConfig(max_fanout=0)
        with pytest.raises(ValueError):
            RandomXmlConfig(max_depth=0)
        with pytest.raises(ValueError):
            RandomXmlConfig(tag_skew=-1)
        with pytest.raises(ValueError):
            tag_vocabulary(0)

    def test_vocabulary_names(self):
        assert tag_vocabulary(3) == ["tag0", "tag1", "tag2"]
        assert len(set(tag_vocabulary(25))) == 25


class TestCatalog:
    def test_structure(self):
        document = generate_catalog_document(CatalogConfig(customers=5, products=4))
        assert document.root.tag == "company"
        assert len(evaluate_xpath(document, "//customer")) == 5
        assert len(evaluate_xpath(document, "//catalog/product")) == 4

    def test_deterministic(self):
        assert generate_catalog_document().structurally_equal(generate_catalog_document())

    def test_bundled_queries_are_valid_and_nonempty_by_default(self):
        document = generate_catalog_document()
        for query in CATALOG_QUERIES:
            parse_xpath(query)
            evaluate_xpath(document, query)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            CatalogConfig(customers=0)


class TestXMark:
    def test_structure(self):
        document = generate_xmark_document(XMarkConfig(items_per_region=2, people=5,
                                                       open_auctions=3))
        assert document.root.tag == "site"
        assert len(evaluate_xpath(document, "//item")) == 2 * 6
        assert len(evaluate_xpath(document, "//person")) >= 5

    def test_deterministic(self):
        assert generate_xmark_document().structurally_equal(generate_xmark_document())

    def test_bundled_queries_valid(self):
        document = generate_xmark_document()
        for query in XMARK_QUERIES:
            parse_xpath(query)
            evaluate_xpath(document, query)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            XMarkConfig(people=0)
